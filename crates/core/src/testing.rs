//! Statistical-testing arguments: how failure-free evidence moves claims.
//!
//! Two routes are provided, which the bench harness compares as an
//! ablation:
//!
//! - the **conjugate** route — Beta priors updated in closed form;
//! - the **worst-case** route — the paper's two-point conservative prior
//!   updated by Bayes (only the likelihood ratio between the two atoms
//!   matters), plus the demands-needed solvers used for ACARP planning.

use crate::error::{ConfidenceError, Result};
use depcase_distributions::{Beta, Distribution};

/// Number of failure-free demands needed so that, starting from a uniform
/// prior on the pfd, `P(pfd < bound) ≥ confidence`.
///
/// Closed form from `P(pfd < y | n) = 1 − (1−y)^{n+1}`:
/// `n ≥ ln(1 − confidence)/ln(1 − y) − 1`.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] unless `bound ∈ (0, 1)` and
/// `confidence ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use depcase_core::testing::demands_needed_uniform_prior;
///
/// // The folklore number: ~4,600 failure-free demands for 99% confidence
/// // in pfd < 1e-3.
/// let n = demands_needed_uniform_prior(1e-3, 0.99)?;
/// assert!((4590..=4610).contains(&n));
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn demands_needed_uniform_prior(bound: f64, confidence: f64) -> Result<u64> {
    if !(0.0 < bound && bound < 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "bound must lie in (0, 1), got {bound}"
        )));
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "confidence must lie in (0, 1), got {confidence}"
        )));
    }
    let n = (1.0 - confidence).ln() / (-bound).ln_1p() - 1.0;
    Ok(n.max(0.0).ceil() as u64)
}

/// Number of failure-free demands needed so that a given Beta prior
/// reaches `P(pfd < bound) ≥ confidence`.
///
/// Solved by doubling + binary search over the conjugate posterior.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] for out-of-range bound/confidence;
/// [`ConfidenceError::Infeasible`] if even `2⁶³` demands would not reach
/// the target (pathological priors).
pub fn demands_needed(prior: &Beta, bound: f64, confidence: f64) -> Result<u64> {
    if !(0.0 < bound && bound < 1.0 && 0.0 < confidence && confidence < 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "bound and confidence must lie in (0, 1); got bound = {bound}, confidence = {confidence}"
        )));
    }
    let reaches = |n: u64| prior.update_failure_free(n).cdf(bound) >= confidence;
    if reaches(0) {
        return Ok(0);
    }
    let mut hi = 1u64;
    while !reaches(hi) {
        hi = hi.checked_mul(2).ok_or_else(|| {
            ConfidenceError::Infeasible(format!(
                "no demand count reaches P(pfd < {bound}) = {confidence} from this prior"
            ))
        })?;
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if reaches(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Posterior doubt of the paper's conservative two-point prior after `n`
/// failure-free demands.
///
/// With prior mass `1 − x` at pfd `y` and mass `x` at the worst case `w`,
/// Bayes gives
///
/// ```text
/// x_n = x (1−w)ⁿ / [ x (1−w)ⁿ + (1−x)(1−y)ⁿ ]
/// ```
///
/// With the paper's `w = 1` a single failure-free demand annihilates the
/// doubt atom (certain failure would have failed); the bounded-factor
/// worst case `w = min(k·y, 1)` decays gracefully instead.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] unless `x`, `y`, `w` are
/// probabilities and `y < w`.
///
/// # Examples
///
/// ```
/// use depcase_core::testing::worst_case_doubt_after_demands;
///
/// // 0.1% doubt, claim 1e-4, "wrong by at most a factor 100" worst case:
/// let x1000 = worst_case_doubt_after_demands(0.001, 1e-4, 1e-2, 1000)?;
/// assert!(x1000 < 0.001); // testing eats the doubt...
/// let x10000 = worst_case_doubt_after_demands(0.001, 1e-4, 1e-2, 10_000)?;
/// assert!(x10000 < x1000 / 100.0); // ...exponentially
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn worst_case_doubt_after_demands(
    doubt: f64,
    claim_bound: f64,
    worst: f64,
    demands: u64,
) -> Result<f64> {
    for (name, v) in [("doubt", doubt), ("claim bound", claim_bound), ("worst", worst)] {
        if !(0.0..=1.0).contains(&v) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "{name} must be a probability, got {v}"
            )));
        }
    }
    if !(claim_bound < worst) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "worst-case pfd ({worst}) must exceed the claim bound ({claim_bound})"
        )));
    }
    let n = demands as f64;
    // Work in log space: the powers underflow long before the ratio does.
    let log_bad = doubt.ln() + n * (-worst).ln_1p();
    let log_good = (1.0 - doubt).ln() + n * (-claim_bound).ln_1p();
    if log_bad == f64::NEG_INFINITY {
        return Ok(0.0);
    }
    let log_ratio = log_bad - log_good;
    // x_n = 1 / (1 + e^{−log_ratio})
    Ok(1.0 / (1.0 + (-log_ratio).exp()))
}

/// A conservative analogue of the Bishop–Bloomfield long-term bound,
/// flagged by the paper as a question for future work ("it may well be
/// that there is an equivalent to the conservative bound on mtbf for
/// confidence"): *whatever* the prior belief `f(p)`, the probability
/// that the system survives `n` demands and then fails on the
/// `(n+1)`-th — the marginal probability of first failure at demand
/// `n+1` — satisfies
///
/// ```text
/// P(survive n, fail next) = E[p(1−p)ⁿ] ≤ max_q q(1−q)ⁿ
///                         = (1/(n+1))·(1 − 1/(n+1))ⁿ ≤ 1/(e·n)
/// ```
///
/// for `n ≥ 1`. (No prior-free bound exists for the *conditional*
/// predictive probability: a point prior at `q` survives conditioning
/// unchanged, so the conditional can be anything.)
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] for `n = 0` (no evidence, no
/// bound).
///
/// # Examples
///
/// ```
/// use depcase_core::testing::conservative_predictive_bound;
///
/// let b = conservative_predictive_bound(1000)?;
/// assert!(b < 3.7e-4 && b > 3.6e-4);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn conservative_predictive_bound(demands: u64) -> Result<f64> {
    if demands == 0 {
        return Err(ConfidenceError::InvalidArgument(
            "the conservative predictive bound needs at least one survived demand".into(),
        ));
    }
    Ok(1.0 / (std::f64::consts::E * demands as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prior_demands_closed_form() {
        // n such that 1 − (1−y)^{n+1} >= c.
        let n = demands_needed_uniform_prior(1e-3, 0.99).unwrap();
        let post = Beta::uniform_prior().update_failure_free(n);
        assert!(post.cdf(1e-3) >= 0.99);
        let fewer = Beta::uniform_prior().update_failure_free(n - 1);
        assert!(fewer.cdf(1e-3) < 0.99, "n is minimal");
    }

    #[test]
    fn uniform_prior_demands_validation() {
        assert!(demands_needed_uniform_prior(0.0, 0.9).is_err());
        assert!(demands_needed_uniform_prior(1.0, 0.9).is_err());
        assert!(demands_needed_uniform_prior(1e-3, 0.0).is_err());
        assert!(demands_needed_uniform_prior(1e-3, 1.0).is_err());
    }

    #[test]
    fn demands_needed_agrees_with_closed_form_for_uniform() {
        let via_search = demands_needed(&Beta::uniform_prior(), 1e-3, 0.99).unwrap();
        let via_formula = demands_needed_uniform_prior(1e-3, 0.99).unwrap();
        assert!(
            via_search.abs_diff(via_formula) <= 1,
            "search {via_search} vs formula {via_formula}"
        );
    }

    #[test]
    fn demands_needed_zero_when_prior_suffices() {
        let confident_prior = Beta::new(1.0, 100_000.0).unwrap();
        assert_eq!(demands_needed(&confident_prior, 1e-3, 0.99).unwrap(), 0);
    }

    #[test]
    fn demands_needed_monotone_in_confidence() {
        let prior = Beta::uniform_prior();
        let n90 = demands_needed(&prior, 1e-3, 0.90).unwrap();
        let n99 = demands_needed(&prior, 1e-3, 0.99).unwrap();
        let n999 = demands_needed(&prior, 1e-3, 0.999).unwrap();
        assert!(n90 < n99 && n99 < n999);
    }

    #[test]
    fn demands_scale_inversely_with_bound() {
        // An order of magnitude stronger claim needs an order of
        // magnitude more testing — the crux of the paper's Example 3
        // escalation.
        let n3 = demands_needed_uniform_prior(1e-3, 0.99).unwrap();
        let n4 = demands_needed_uniform_prior(1e-4, 0.99).unwrap();
        let ratio = n4 as f64 / n3 as f64;
        assert!((ratio - 10.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn paper_w_equals_one_doubt_dies_instantly() {
        // With the paper's worst case w = 1, certain failure cannot
        // survive even one demand.
        let x1 = worst_case_doubt_after_demands(0.01, 1e-4, 1.0, 1).unwrap();
        assert_eq!(x1, 0.0);
    }

    #[test]
    fn bounded_factor_doubt_decays_exponentially() {
        let x0 = 0.001;
        let mut prev = x0;
        for n in [100, 1000, 10_000] {
            let xn = worst_case_doubt_after_demands(x0, 1e-4, 1e-2, n).unwrap();
            assert!(xn < prev, "n = {n}");
            prev = xn;
        }
        // Rate check: log-ratio decays like n·ln[(1−w)/(1−y)].
        let x_a = worst_case_doubt_after_demands(x0, 1e-4, 1e-2, 500).unwrap();
        let x_b = worst_case_doubt_after_demands(x0, 1e-4, 1e-2, 1000).unwrap();
        let decay = (x_b / x_a).ln() / 500.0;
        let want = (1.0 - 1e-2_f64).ln() - (1.0 - 1e-4_f64).ln();
        assert!((decay - want).abs() < 1e-4, "decay {decay} vs {want}");
    }

    #[test]
    fn doubt_update_no_demands_is_identity() {
        let x = worst_case_doubt_after_demands(0.25, 1e-3, 0.5, 0).unwrap();
        assert!((x - 0.25).abs() < 1e-12);
    }

    #[test]
    fn doubt_update_validation() {
        assert!(worst_case_doubt_after_demands(1.5, 0.1, 0.5, 10).is_err());
        assert!(worst_case_doubt_after_demands(0.1, 0.5, 0.1, 10).is_err()); // y >= w
        assert!(worst_case_doubt_after_demands(0.1, 0.5, 0.5, 10).is_err());
    }

    #[test]
    fn doubt_update_underflow_safe() {
        // Enormous demand counts must not produce NaN.
        let x = worst_case_doubt_after_demands(0.001, 1e-6, 1e-2, 10_000_000).unwrap();
        assert!((0.0..=1.0).contains(&x));
        assert!(x < 1e-300 || x == 0.0);
    }

    #[test]
    fn conservative_bound_dominates_joint_first_failure_probability() {
        for n in [1u64, 10, 100, 10_000] {
            let bound = conservative_predictive_bound(n).unwrap();
            // Uniform prior: E[p(1−p)ⁿ] = 1/((n+1)(n+2)).
            let nf = n as f64;
            let exact_uniform = 1.0 / ((nf + 1.0) * (nf + 2.0));
            assert!(bound >= exact_uniform, "n = {n}: {bound} < {exact_uniform}");
            // The extremal point prior at q = 1/(n+1) gets within ~10%
            // of the bound, so the bound is tight up to constants.
            let q = 1.0 / (nf + 1.0);
            let extremal = q * (1.0 - q).powf(nf);
            assert!(bound >= extremal, "n = {n}");
            // Tight up to constants; the slack shrinks as n grows.
            let floor = if n >= 10 { 0.85 } else { 0.6 };
            assert!(extremal >= floor * bound, "n = {n}: bound is loose: {extremal} vs {bound}");
        }
        assert!(conservative_predictive_bound(0).is_err());
    }

    #[test]
    fn conservative_bound_value() {
        let b = conservative_predictive_bound(100).unwrap();
        assert!((b - 1.0 / (std::f64::consts::E * 100.0)).abs() < 1e-15);
    }
}
