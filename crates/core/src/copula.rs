//! Gaussian-copula dependence between argument legs.
//!
//! Section 4.2 of the paper leaves the dependence between legs as an
//! interval ([`crate::multileg`] computes the Fréchet–Hoeffding bounds).
//! This module fills the interval in: model the soundness of each leg as
//! driven by a latent standard-normal factor, correlate the factors with
//! `ρ`, and the probability that *both* legs are unsound becomes the
//! bivariate normal orthant probability
//!
//! ```text
//! P(A unsound ∧ B unsound) = Φ₂(Φ⁻¹(x_A), Φ⁻¹(x_B); ρ)
//! ```
//!
//! `ρ = 0` recovers independence; `ρ → ±1` recovers the Fréchet bounds.
//! The sweep over `ρ` is the paper's "subtle interplay" made visible —
//! and the `multileg_copula` experiment in `depcase-bench` plots it.

use crate::error::{ConfidenceError, Result};
use crate::multileg::{combine_two_legs, Leg};
use depcase_numerics::special::{bivariate_norm_cdf, norm_quantile};

/// Combined doubt of two legs whose unsoundness events are coupled by a
/// Gaussian copula with correlation `rho`.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] if `rho ∉ [−1, 1]`; numerical
/// errors from the bivariate CDF.
///
/// # Examples
///
/// ```
/// use depcase_core::copula::combined_doubt_gaussian;
/// use depcase_core::multileg::Leg;
///
/// let a = Leg::with_confidence(0.95)?;
/// let b = Leg::with_confidence(0.90)?;
/// // Independence recovered at rho = 0:
/// let d0 = combined_doubt_gaussian(a, b, 0.0)?;
/// assert!((d0 - 0.05 * 0.10).abs() < 1e-12);
/// // Positive dependence erodes the benefit of the second leg:
/// let d08 = combined_doubt_gaussian(a, b, 0.8)?;
/// assert!(d08 > d0);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn combined_doubt_gaussian(a: Leg, b: Leg, rho: f64) -> Result<f64> {
    if !(-1.0..=1.0).contains(&rho) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "copula correlation must lie in [-1, 1], got {rho}"
        )));
    }
    let (xa, xb) = (a.doubt(), b.doubt());
    if xa == 0.0 || xb == 0.0 {
        return Ok(0.0);
    }
    if xa == 1.0 {
        return Ok(xb);
    }
    if xb == 1.0 {
        return Ok(xa);
    }
    // "Leg A unsound" ⇔ latent Z_A ≤ Φ⁻¹(x_A).
    let ha = norm_quantile(xa);
    let hb = norm_quantile(xb);
    Ok(bivariate_norm_cdf(ha, hb, rho)?.clamp(0.0, 1.0))
}

/// One row of a dependence sweep: correlation, combined doubt, and the
/// effective gain over the better single leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopulaPoint {
    /// Latent-factor correlation.
    pub rho: f64,
    /// Combined doubt `P(A ∧ B unsound)` at this correlation.
    pub combined_doubt: f64,
    /// Ratio of the better single leg's doubt to the combined doubt —
    /// "how many times better than the best leg alone" (1 = no gain).
    pub gain_over_single: f64,
}

/// Sweeps the combined doubt of two legs across correlations.
///
/// # Errors
///
/// Propagates [`combined_doubt_gaussian`] failures.
///
/// # Examples
///
/// ```
/// use depcase_core::copula::sweep;
/// use depcase_core::multileg::Leg;
///
/// let pts = sweep(
///     Leg::with_confidence(0.95)?,
///     Leg::with_confidence(0.95)?,
///     &[-0.5, 0.0, 0.5, 0.9],
/// )?;
/// // Gain shrinks monotonically as dependence grows:
/// assert!(pts[0].gain_over_single > pts[3].gain_over_single);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn sweep(a: Leg, b: Leg, rhos: &[f64]) -> Result<Vec<CopulaPoint>> {
    let single = a.doubt().min(b.doubt());
    rhos.iter()
        .map(|&rho| {
            let combined = combined_doubt_gaussian(a, b, rho)?;
            let gain = if combined > 0.0 { single / combined } else { f64::INFINITY };
            Ok(CopulaPoint { rho, combined_doubt: combined, gain_over_single: gain })
        })
        .collect()
}

/// The correlation at which the combined doubt reaches `target` — "how
/// much dependence can the case tolerate before the second leg stops
/// paying for itself?". Solved by bisection over `ρ ∈ [0, 1]`
/// (combined doubt is non-decreasing in `ρ`).
///
/// # Errors
///
/// [`ConfidenceError::Infeasible`] if the target is outside the
/// achievable range `[independent, worst-case]`.
pub fn tolerable_correlation(a: Leg, b: Leg, target: f64) -> Result<f64> {
    let ind = combined_doubt_gaussian(a, b, 0.0)?;
    let worst = combine_two_legs(a, b).worst_case;
    if target < ind - 1e-15 || target > worst + 1e-15 {
        return Err(ConfidenceError::Infeasible(format!(
            "target combined doubt {target} outside the achievable range [{ind}, {worst}]"
        )));
    }
    let mut lo = 0.0;
    let mut hi = 1.0;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if combined_doubt_gaussian(a, b, mid)? < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multileg::combine_two_legs;

    fn legs() -> (Leg, Leg) {
        (Leg::with_confidence(0.95).unwrap(), Leg::with_confidence(0.90).unwrap())
    }

    #[test]
    fn independence_recovered_at_rho_zero() {
        let (a, b) = legs();
        let d = combined_doubt_gaussian(a, b, 0.0).unwrap();
        assert!((d - 0.005).abs() < 1e-12);
    }

    #[test]
    fn frechet_bounds_recovered_at_extremes() {
        let (a, b) = legs();
        let c = combine_two_legs(a, b);
        let worst = combined_doubt_gaussian(a, b, 1.0).unwrap();
        assert!((worst - c.worst_case).abs() < 1e-10, "{worst} vs {}", c.worst_case);
        let best = combined_doubt_gaussian(a, b, -1.0).unwrap();
        assert!((best - c.best_case).abs() < 1e-10);
    }

    #[test]
    fn monotone_in_rho() {
        let (a, b) = legs();
        let mut prev = -1.0;
        for i in 0..=20 {
            let rho = -1.0 + 2.0 * i as f64 / 20.0;
            let d = combined_doubt_gaussian(a, b, rho).unwrap();
            assert!(d >= prev - 1e-12, "rho = {rho}");
            prev = d;
        }
    }

    #[test]
    fn interval_always_bracketed() {
        for &(ca, cb) in &[(0.99, 0.9), (0.7, 0.7), (0.999, 0.95)] {
            let a = Leg::with_confidence(ca).unwrap();
            let b = Leg::with_confidence(cb).unwrap();
            let c = combine_two_legs(a, b);
            for rho in [-0.9, -0.3, 0.0, 0.4, 0.8] {
                let d = combined_doubt_gaussian(a, b, rho).unwrap();
                assert!(
                    d >= c.best_case - 1e-10 && d <= c.worst_case + 1e-10,
                    "ca={ca}, cb={cb}, rho={rho}: {d} vs [{}, {}]",
                    c.best_case,
                    c.worst_case
                );
            }
        }
    }

    #[test]
    fn degenerate_legs() {
        let perfect = Leg::with_doubt(0.0).unwrap();
        let vacuous = Leg::with_doubt(1.0).unwrap();
        let mid = Leg::with_doubt(0.3).unwrap();
        assert_eq!(combined_doubt_gaussian(perfect, mid, 0.5).unwrap(), 0.0);
        assert!((combined_doubt_gaussian(vacuous, mid, 0.5).unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn sweep_gain_decreases() {
        let (a, b) = legs();
        let pts = sweep(a, b, &[-0.8, -0.4, 0.0, 0.4, 0.8]).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].gain_over_single <= w[0].gain_over_single + 1e-9);
        }
        // At rho = 0 the gain over the single 0.05 leg is 10x (0.05/0.005).
        assert!((pts[2].gain_over_single - 10.0).abs() < 1e-6);
    }

    #[test]
    fn tolerable_correlation_round_trip() {
        let (a, b) = legs();
        let target = 0.02;
        let rho = tolerable_correlation(a, b, target).unwrap();
        let d = combined_doubt_gaussian(a, b, rho).unwrap();
        assert!((d - target).abs() < 1e-6, "rho = {rho}, d = {d}");
    }

    #[test]
    fn tolerable_correlation_infeasible() {
        let (a, b) = legs();
        assert!(tolerable_correlation(a, b, 0.001).is_err()); // below independent
        assert!(tolerable_correlation(a, b, 0.2).is_err()); // above worst case
    }

    #[test]
    fn invalid_rho_rejected() {
        let (a, b) = legs();
        assert!(combined_doubt_gaussian(a, b, 1.5).is_err());
        assert!(combined_doubt_gaussian(a, b, -1.01).is_err());
    }
}
