//! Multi-legged arguments (paper Section 4.2, after Littlewood & Wright,
//! IEEE TSE 2007).
//!
//! A claim supported by one argument leg carries the leg's doubt. Adding
//! a second, *different* leg — "argument fault tolerance" — can reduce
//! the doubt, but by how much depends on the dependence between the
//! events "leg A is unsound" and "leg B is unsound". With doubts
//! `x_A`, `x_B`:
//!
//! - **independence**: combined doubt `x_A·x_B`;
//! - **Fréchet–Hoeffding bounds** (no dependence assumption at all):
//!   `max(0, x_A + x_B − 1) ≤ combined ≤ min(x_A, x_B)`;
//! - **shared assumptions**: a doubt mass `s` common to both legs cannot
//!   be diversified away: combined `≥ s` whatever the legs.

use crate::error::{ConfidenceError, Result};
use serde::{Deserialize, Serialize};

/// One argument leg supporting a claim, carrying its doubt
/// `x = P(leg unsound)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Leg {
    doubt: f64,
}

impl Leg {
    /// Creates a leg with the given doubt.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] outside `[0, 1]`.
    pub fn with_doubt(doubt: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&doubt) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "leg doubt must be a probability, got {doubt}"
            )));
        }
        Ok(Self { doubt })
    }

    /// Creates a leg from its confidence `1 − x`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] outside `[0, 1]`.
    pub fn with_confidence(confidence: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&confidence) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "leg confidence must be a probability, got {confidence}"
            )));
        }
        Ok(Self { doubt: 1.0 - confidence })
    }

    /// The leg's doubt `P(leg unsound)`.
    #[must_use]
    pub fn doubt(&self) -> f64 {
        self.doubt
    }

    /// The leg's confidence `1 − doubt`.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        1.0 - self.doubt
    }
}

/// The combined doubt of a two-legged argument under the three dependence
/// regimes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CombinedDoubt {
    /// Combined doubt assuming the legs fail independently.
    pub independent: f64,
    /// Best case (maximal negative dependence): `max(0, x_A + x_B − 1)`.
    pub best_case: f64,
    /// Worst case (maximal positive dependence): `min(x_A, x_B)` — adding
    /// a second leg might buy *nothing* beyond the better single leg.
    pub worst_case: f64,
}

impl CombinedDoubt {
    /// Confidence view of the independent combination.
    #[must_use]
    pub fn independent_confidence(&self) -> f64 {
        1.0 - self.independent
    }

    /// The width of the dependence interval — how much the unknown
    /// dependence matters. The paper: "these issues of interplay between
    /// adding assurance legs and confidence are subtle".
    #[must_use]
    pub fn dependence_spread(&self) -> f64 {
        self.worst_case - self.best_case
    }
}

/// Combines two legs supporting the *same* claim.
///
/// The claim is doubted only if **both** legs are unsound, so the
/// combined doubt is `P(A unsound ∧ B unsound)`, bracketed by the
/// Fréchet–Hoeffding bounds and pinned at `x_A·x_B` under independence.
///
/// # Examples
///
/// ```
/// use depcase_core::multileg::{combine_two_legs, Leg};
///
/// let a = Leg::with_confidence(0.99)?; // testing leg
/// let b = Leg::with_confidence(0.95)?; // static-analysis leg
/// let c = combine_two_legs(a, b);
/// assert!((c.independent - 0.01 * 0.05).abs() < 1e-12);
/// assert_eq!(c.best_case, 0.0);
/// assert!((c.worst_case - 0.01).abs() < 1e-12);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
#[must_use]
pub fn combine_two_legs(a: Leg, b: Leg) -> CombinedDoubt {
    let (xa, xb) = (a.doubt, b.doubt);
    CombinedDoubt {
        independent: xa * xb,
        best_case: (xa + xb - 1.0).max(0.0),
        worst_case: xa.min(xb),
    }
}

/// Combines two legs that share a common assumption carrying doubt
/// `shared`: with probability `shared` both legs are unsound together;
/// the remaining leg-specific doubts combine per regime on the residual
/// probability.
///
/// Each leg's total doubt must be at least `shared`.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] if `shared` is not a probability
/// or exceeds either leg's doubt.
///
/// # Examples
///
/// ```
/// use depcase_core::multileg::{combine_with_shared_assumption, Leg};
///
/// let a = Leg::with_doubt(0.05)?;
/// let b = Leg::with_doubt(0.03)?;
/// // 2% of the doubt is a common assumption (e.g. both legs trust the
/// // same requirements document):
/// let c = combine_with_shared_assumption(a, b, 0.02)?;
/// // The shared doubt is a floor no second leg can remove:
/// assert!(c.independent >= 0.02);
/// assert!(c.best_case >= 0.02);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn combine_with_shared_assumption(a: Leg, b: Leg, shared: f64) -> Result<CombinedDoubt> {
    if !(0.0..=1.0).contains(&shared) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "shared doubt must be a probability, got {shared}"
        )));
    }
    if shared > a.doubt || shared > b.doubt {
        return Err(ConfidenceError::InvalidArgument(format!(
            "shared doubt {shared} exceeds a leg's total doubt ({}, {})",
            a.doubt, b.doubt
        )));
    }
    if shared >= 1.0 {
        return Ok(CombinedDoubt { independent: 1.0, best_case: 1.0, worst_case: 1.0 });
    }
    // Condition on the shared assumption holding (prob 1 − s); the
    // residual leg doubts are (x − s)/(1 − s).
    let s = shared;
    let ra = (a.doubt - s) / (1.0 - s);
    let rb = (b.doubt - s) / (1.0 - s);
    let residual = combine_two_legs(Leg { doubt: ra }, Leg { doubt: rb });
    Ok(CombinedDoubt {
        independent: s + (1.0 - s) * residual.independent,
        best_case: s + (1.0 - s) * residual.best_case,
        worst_case: s + (1.0 - s) * residual.worst_case,
    })
}

/// The doubt a single extra leg must have so that, combined independently
/// with an existing leg of doubt `existing`, the pair reaches a combined
/// doubt of `target` — the paper's "reducing the required confidence by
/// additional argument legs" made quantitative.
///
/// # Errors
///
/// [`ConfidenceError::Infeasible`] when `existing` is zero (nothing to
/// reduce) or `target >= existing` (the extra leg cannot *add* doubt) —
/// except the trivial `target == existing`, which returns doubt 1
/// (a vacuous leg).
pub fn required_second_leg(existing: f64, target: f64) -> Result<Leg> {
    if !(0.0..=1.0).contains(&existing) || !(0.0..=1.0).contains(&target) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "doubts must be probabilities; got existing = {existing}, target = {target}"
        )));
    }
    if target > existing {
        return Err(ConfidenceError::Infeasible(format!(
            "an independent second leg cannot raise doubt from {existing} to {target}"
        )));
    }
    if existing == 0.0 {
        return Ok(Leg { doubt: 1.0 });
    }
    Ok(Leg { doubt: (target / existing).min(1.0) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leg_construction() {
        assert!((Leg::with_confidence(0.99).unwrap().doubt() - 0.01).abs() < 1e-12);
        assert!((Leg::with_doubt(0.01).unwrap().confidence() - 0.99).abs() < 1e-12);
        assert!(Leg::with_doubt(1.5).is_err());
        assert!(Leg::with_confidence(-0.1).is_err());
    }

    #[test]
    fn frechet_bounds_order() {
        let c = combine_two_legs(Leg::with_doubt(0.3).unwrap(), Leg::with_doubt(0.4).unwrap());
        assert!(c.best_case <= c.independent);
        assert!(c.independent <= c.worst_case);
        assert!((c.independent - 0.12).abs() < 1e-12);
        assert!((c.worst_case - 0.3).abs() < 1e-12);
        assert_eq!(c.best_case, 0.0);
    }

    #[test]
    fn frechet_lower_bound_activates_for_large_doubts() {
        let c = combine_two_legs(Leg::with_doubt(0.8).unwrap(), Leg::with_doubt(0.7).unwrap());
        assert!((c.best_case - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_leg_removes_all_doubt() {
        let c = combine_two_legs(Leg::with_doubt(0.0).unwrap(), Leg::with_doubt(0.9).unwrap());
        assert_eq!(c.independent, 0.0);
        assert_eq!(c.worst_case, 0.0);
    }

    #[test]
    fn vacuous_leg_changes_nothing() {
        let c = combine_two_legs(Leg::with_doubt(1.0).unwrap(), Leg::with_doubt(0.3).unwrap());
        assert!((c.independent - 0.3).abs() < 1e-12);
        assert!((c.worst_case - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dependence_spread_quantifies_subtlety() {
        let c = combine_two_legs(Leg::with_doubt(0.05).unwrap(), Leg::with_doubt(0.05).unwrap());
        // Independent says 0.0025; worst case says 0.05 — a 20× swing.
        assert!((c.dependence_spread() - 0.05).abs() < 1e-12);
        assert!(c.worst_case / c.independent > 19.0);
    }

    #[test]
    fn shared_assumption_is_a_floor() {
        let a = Leg::with_doubt(0.05).unwrap();
        let b = Leg::with_doubt(0.05).unwrap();
        let c = combine_with_shared_assumption(a, b, 0.03).unwrap();
        assert!(c.independent >= 0.03);
        assert!(c.best_case >= 0.03);
        // And strictly better than no diversification at all:
        assert!(c.independent < 0.05);
    }

    #[test]
    fn shared_zero_reduces_to_plain_combination() {
        let a = Leg::with_doubt(0.2).unwrap();
        let b = Leg::with_doubt(0.1).unwrap();
        let with = combine_with_shared_assumption(a, b, 0.0).unwrap();
        let plain = combine_two_legs(a, b);
        assert!((with.independent - plain.independent).abs() < 1e-12);
        assert!((with.worst_case - plain.worst_case).abs() < 1e-12);
    }

    #[test]
    fn shared_equal_to_both_doubts_means_fully_common() {
        let a = Leg::with_doubt(0.04).unwrap();
        let b = Leg::with_doubt(0.04).unwrap();
        let c = combine_with_shared_assumption(a, b, 0.04).unwrap();
        assert!((c.independent - 0.04).abs() < 1e-12);
        assert!((c.worst_case - 0.04).abs() < 1e-12);
    }

    #[test]
    fn shared_validation() {
        let a = Leg::with_doubt(0.05).unwrap();
        let b = Leg::with_doubt(0.03).unwrap();
        assert!(combine_with_shared_assumption(a, b, 0.04).is_err()); // > b's doubt
        assert!(combine_with_shared_assumption(a, b, -0.1).is_err());
    }

    #[test]
    fn required_second_leg_computation() {
        // Existing leg: 95% confidence; target combined doubt 0.001.
        let leg = required_second_leg(0.05, 0.001).unwrap();
        assert!((leg.doubt() - 0.02).abs() < 1e-12);
        let c = combine_two_legs(Leg::with_doubt(0.05).unwrap(), leg);
        assert!((c.independent - 0.001).abs() < 1e-12);
    }

    #[test]
    fn required_second_leg_edge_cases() {
        assert!(required_second_leg(0.05, 0.1).is_err());
        assert_eq!(required_second_leg(0.0, 0.0).unwrap().doubt(), 1.0);
        assert_eq!(required_second_leg(0.05, 0.05).unwrap().doubt(), 1.0);
        assert!(required_second_leg(1.5, 0.1).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = combine_two_legs(Leg::with_doubt(0.1).unwrap(), Leg::with_doubt(0.2).unwrap());
        let json = serde_json::to_string(&c).unwrap();
        let back: CombinedDoubt = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
