//! Multi-attribute dependability claims.
//!
//! The paper flags "the multi-dimensional, multi-attribute nature of
//! dependability claims" as an obstacle, and notes that "while SIL
//! applies to one important attribute of a safety critical system there
//! are others such as robustness, security and maintainability that
//! should be addressed in a full safety case". This module carries a
//! claim per attribute, each with its own confidence, and aggregates
//! them: overall dependability holds only if every attribute's claim
//! does, so doubts combine conjunctively, with the Fréchet interval
//! tracking unknown dependence between the attribute arguments.

use crate::claim::ConfidenceStatement;
use crate::error::{ConfidenceError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dependability attribute, after the paper's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Attribute {
    /// Safety: freedom from unacceptable harm (the SIL attribute).
    Safety,
    /// Reliability: continuity of correct service.
    Reliability,
    /// Availability: readiness for correct service.
    Availability,
    /// Robustness to abnormal inputs and environments.
    Robustness,
    /// Security: resistance to intentional attack.
    Security,
    /// Maintainability: ability to undergo modification safely.
    Maintainability,
}

impl Attribute {
    /// All attributes, in the display order used by reports.
    pub const ALL: [Attribute; 6] = [
        Attribute::Safety,
        Attribute::Reliability,
        Attribute::Availability,
        Attribute::Robustness,
        Attribute::Security,
        Attribute::Maintainability,
    ];
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Attribute::Safety => "safety",
            Attribute::Reliability => "reliability",
            Attribute::Availability => "availability",
            Attribute::Robustness => "robustness",
            Attribute::Security => "security",
            Attribute::Maintainability => "maintainability",
        };
        f.write_str(s)
    }
}

/// One attribute's claim with its supporting confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeClaim {
    /// Which attribute the claim addresses.
    pub attribute: Attribute,
    /// The quantitative statement (bound + confidence).
    pub statement: ConfidenceStatement,
}

/// Aggregated view of a multi-attribute dependability position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverallConfidence {
    /// Confidence all attribute claims hold, if their arguments fail
    /// independently.
    pub independent: f64,
    /// Worst case over dependence (Fréchet lower bound on the
    /// conjunction).
    pub worst_case: f64,
    /// Best case over dependence.
    pub best_case: f64,
}

/// A set of per-attribute claims making up a full dependability position.
///
/// # Examples
///
/// ```
/// use depcase_core::attributes::{Attribute, MultiAttributeClaims};
/// use depcase_core::ConfidenceStatement;
///
/// let mut claims = MultiAttributeClaims::new();
/// claims.set(Attribute::Safety, ConfidenceStatement::new(1e-3, 0.99)?)?;
/// claims.set(Attribute::Security, ConfidenceStatement::new(1e-2, 0.90)?)?;
/// let overall = claims.overall()?;
/// assert!((overall.independent - 0.99 * 0.90).abs() < 1e-12);
/// // The weakest attribute is where the next effort goes:
/// assert_eq!(claims.weakest().unwrap().attribute, Attribute::Security);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultiAttributeClaims {
    claims: Vec<AttributeClaim>,
}

impl MultiAttributeClaims {
    /// Creates an empty claim set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) the claim for an attribute.
    ///
    /// # Errors
    ///
    /// Never fails today; fallible for future validation (kept `Result`
    /// so callers already handle it).
    pub fn set(&mut self, attribute: Attribute, statement: ConfidenceStatement) -> Result<()> {
        if let Some(existing) = self.claims.iter_mut().find(|c| c.attribute == attribute) {
            existing.statement = statement;
        } else {
            self.claims.push(AttributeClaim { attribute, statement });
        }
        Ok(())
    }

    /// The claim for an attribute, if one is set.
    #[must_use]
    pub fn get(&self, attribute: Attribute) -> Option<&AttributeClaim> {
        self.claims.iter().find(|c| c.attribute == attribute)
    }

    /// All claims, in insertion order.
    #[must_use]
    pub fn claims(&self) -> &[AttributeClaim] {
        &self.claims
    }

    /// Number of attributes claimed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether no claims are set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// The attribute with the lowest confidence — the weakest link.
    #[must_use]
    pub fn weakest(&self) -> Option<&AttributeClaim> {
        self.claims.iter().min_by(|a, b| {
            a.statement
                .confidence()
                .partial_cmp(&b.statement.confidence())
                .expect("confidences are finite")
        })
    }

    /// Aggregates the per-attribute confidences into an overall position:
    /// the conjunction of all claims, with the Fréchet dependence
    /// interval.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] when no claims are set.
    pub fn overall(&self) -> Result<OverallConfidence> {
        if self.claims.is_empty() {
            return Err(ConfidenceError::InvalidArgument(
                "no attribute claims to aggregate".into(),
            ));
        }
        let doubts: Vec<f64> = self.claims.iter().map(|c| 1.0 - c.statement.confidence()).collect();
        let independent = doubts.iter().map(|x| 1.0 - x).product::<f64>();
        let worst = 1.0 - doubts.iter().sum::<f64>().min(1.0);
        let best = 1.0 - doubts.iter().copied().fold(0.0, f64::max);
        Ok(OverallConfidence { independent, worst_case: worst, best_case: best })
    }
}

impl FromIterator<AttributeClaim> for MultiAttributeClaims {
    fn from_iter<T: IntoIterator<Item = AttributeClaim>>(iter: T) -> Self {
        let mut set = Self::new();
        for c in iter {
            set.set(c.attribute, c.statement).expect("set is infallible");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(bound: f64, conf: f64) -> ConfidenceStatement {
        ConfidenceStatement::new(bound, conf).unwrap()
    }

    #[test]
    fn set_and_replace() {
        let mut c = MultiAttributeClaims::new();
        c.set(Attribute::Safety, stmt(1e-3, 0.9)).unwrap();
        c.set(Attribute::Safety, stmt(1e-3, 0.95)).unwrap();
        assert_eq!(c.len(), 1);
        assert!((c.get(Attribute::Safety).unwrap().statement.confidence() - 0.95).abs() < 1e-12);
        assert!(c.get(Attribute::Security).is_none());
    }

    #[test]
    fn overall_conjunction_and_interval() {
        let mut c = MultiAttributeClaims::new();
        c.set(Attribute::Safety, stmt(1e-3, 0.99)).unwrap();
        c.set(Attribute::Security, stmt(1e-2, 0.90)).unwrap();
        c.set(Attribute::Availability, stmt(1e-1, 0.95)).unwrap();
        let o = c.overall().unwrap();
        assert!((o.independent - 0.99 * 0.90 * 0.95).abs() < 1e-12);
        assert!((o.worst_case - (1.0 - (0.01 + 0.10 + 0.05))).abs() < 1e-12);
        assert!((o.best_case - 0.90).abs() < 1e-12);
        assert!(o.worst_case <= o.independent && o.independent <= o.best_case);
    }

    #[test]
    fn worst_case_floors_at_zero() {
        let mut c = MultiAttributeClaims::new();
        c.set(Attribute::Safety, stmt(1e-3, 0.5)).unwrap();
        c.set(Attribute::Security, stmt(1e-2, 0.4)).unwrap();
        c.set(Attribute::Robustness, stmt(1e-1, 0.3)).unwrap();
        let o = c.overall().unwrap();
        assert_eq!(o.worst_case, 0.0);
    }

    #[test]
    fn weakest_link() {
        let mut c = MultiAttributeClaims::new();
        c.set(Attribute::Safety, stmt(1e-3, 0.999)).unwrap();
        c.set(Attribute::Maintainability, stmt(1e-1, 0.7)).unwrap();
        c.set(Attribute::Reliability, stmt(1e-2, 0.9)).unwrap();
        assert_eq!(c.weakest().unwrap().attribute, Attribute::Maintainability);
    }

    #[test]
    fn empty_aggregation_rejected() {
        assert!(MultiAttributeClaims::new().overall().is_err());
        assert!(MultiAttributeClaims::new().weakest().is_none());
        assert!(MultiAttributeClaims::new().is_empty());
    }

    #[test]
    fn from_iterator_dedups_by_attribute() {
        let set: MultiAttributeClaims = [
            AttributeClaim { attribute: Attribute::Safety, statement: stmt(1e-3, 0.9) },
            AttributeClaim { attribute: Attribute::Safety, statement: stmt(1e-3, 0.95) },
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(Attribute::Security.to_string(), "security");
        assert_eq!(Attribute::ALL.len(), 6);
        assert!(Attribute::Safety < Attribute::Security);
    }

    #[test]
    fn serde_round_trip() {
        let mut c = MultiAttributeClaims::new();
        c.set(Attribute::Safety, stmt(1e-3, 0.99)).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: MultiAttributeClaims = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
