//! Confidence calculus for dependability claims — the primary
//! contribution of *Bloomfield, Littlewood & Wright, DSN 2007*.
//!
//! A dependability case supports a claim ("the pfd is below 10⁻³") at
//! some confidence. This crate makes that confidence a first-class,
//! quantitative object:
//!
//! - [`claim`] — the `Claim`/`ConfidenceStatement` vocabulary types;
//! - [`worst_case`] — the paper's Section 3.4 conservative calculus:
//!   from a single elicited statement `P(pfd < y*) = 1 − x*`, the
//!   probability of failure on a randomly selected demand is at most
//!   `x* + y* − x*y*`, with perfection-probability and bounded-factor
//!   refinements and the inverse "required confidence" solvers;
//! - [`testing`] — statistical-testing arguments: conjugate Beta
//!   updates, demands-needed solvers, and worst-case doubt updates under
//!   failure-free evidence;
//! - [`acarp`] — As Confident As Reasonably Practicable planning: how
//!   much failure-free evidence buys how much confidence (Section 4.1);
//! - [`multileg`] — multi-legged argument combination with dependence
//!   bounds (Section 4.2);
//! - [`decision`] — risk-assessment helpers connecting belief
//!   distributions to the unconditional failure probability of Eq. (4).
//!
//! # Examples
//!
//! The paper's Example 3 — claiming a decade of margin:
//!
//! ```
//! use depcase_core::worst_case::WorstCaseBound;
//!
//! // System requirement: pfd < 1e-3. Expert claims pfd < 1e-4. How
//! // confident must the expert be for the requirement to follow?
//! let conf = WorstCaseBound::required_confidence(1e-3, 1e-4)?;
//! assert!((conf - 0.9991).abs() < 1e-4); // 99.91%
//! # Ok::<(), depcase_core::ConfidenceError>(())
//! ```

// `!(x > 0.0)`-style checks deliberately treat NaN as invalid input; the
// lint's suggested `x <= 0.0` would let NaN through the validation.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Reference constants are quoted at full printed precision.
#![allow(clippy::excessive_precision)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod acarp;
pub mod allocation;
pub mod attributes;
pub mod claim;
pub mod copula;
pub mod decision;
mod error;
pub mod growth;
pub mod multileg;
pub mod perfection;
pub mod reduction;
pub mod testing;
pub mod worst_case;

pub use claim::{Claim, ConfidenceStatement};
pub use error::ConfidenceError;
pub use worst_case::WorstCaseBound;
