//! Composing and allocating claims across subsystems.
//!
//! The paper's introduction lists "issues of composability of subsystem
//! claims" among the obstacles to quantitative confidence. This module
//! provides the series-system case: a system pfd target is *allocated*
//! as budgets to subsystems, each subsystem's case yields a
//! [`ConfidenceStatement`], and the statements are *composed* back into
//! a conservative system-level bound — making visible how conservatism
//! compounds across the composition (the paper's closing warning).

use crate::claim::ConfidenceStatement;
use crate::error::{ConfidenceError, Result};

/// Splits a system pfd target into per-subsystem budgets proportional to
/// `weights`, using the exact series-system relation
/// `1 − Π(1 − yᵢ) = target` in log space (so the budgets compose back to
/// the target exactly, not just in the rare-event approximation).
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] unless `target ∈ (0, 1)` and all
/// weights are positive finite.
///
/// # Examples
///
/// ```
/// use depcase_core::allocation::allocate_series;
///
/// // A 1e-3 system budget split 2:1:1 across three subsystems.
/// let budgets = allocate_series(1e-3, &[2.0, 1.0, 1.0])?;
/// assert_eq!(budgets.len(), 3);
/// let recompose: f64 = 1.0 - budgets.iter().map(|y| 1.0 - y).product::<f64>();
/// assert!((recompose - 1e-3).abs() < 1e-15);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn allocate_series(target: f64, weights: &[f64]) -> Result<Vec<f64>> {
    if !(0.0 < target && target < 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "series target must lie in (0, 1), got {target}"
        )));
    }
    if weights.is_empty() || weights.iter().any(|w| !(*w > 0.0) || !w.is_finite()) {
        return Err(ConfidenceError::InvalidArgument(
            "allocation weights must be non-empty and positive finite".into(),
        ));
    }
    let total: f64 = weights.iter().sum();
    // Work with survival logs: ln(1 − target) = Σ wᵢ/W · ln(1 − target)
    let log_survival = (-target).ln_1p();
    Ok(weights.iter().map(|w| -((w / total * log_survival).exp_m1())).collect())
}

/// Equal-share convenience form of [`allocate_series`].
///
/// # Errors
///
/// Same conditions; `subsystems` must be at least 1.
pub fn allocate_equal(target: f64, subsystems: usize) -> Result<Vec<f64>> {
    if subsystems == 0 {
        return Err(ConfidenceError::InvalidArgument("need at least one subsystem".into()));
    }
    allocate_series(target, &vec![1.0; subsystems])
}

/// The conservative system-level failure bound composed from subsystem
/// statements: each statement contributes its worst-case bound
/// `xᵢ + yᵢ − xᵢyᵢ` (Eq. 5), and the series system fails if any
/// subsystem does, so the union bound gives
///
/// ```text
/// P(system fails on a random demand) ≤ Σᵢ (xᵢ + yᵢ − xᵢyᵢ)
/// ```
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] for an empty slice.
///
/// # Examples
///
/// ```
/// use depcase_core::allocation::compose_series_bound;
/// use depcase_core::ConfidenceStatement;
///
/// let subs = vec![
///     ConfidenceStatement::new(2e-4, 0.9995)?,
///     ConfidenceStatement::new(2e-4, 0.9995)?,
/// ];
/// let bound = compose_series_bound(&subs)?;
/// assert!(bound < 1.5e-3);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn compose_series_bound(statements: &[ConfidenceStatement]) -> Result<f64> {
    if statements.is_empty() {
        return Err(ConfidenceError::InvalidArgument(
            "composition needs at least one subsystem statement".into(),
        ));
    }
    Ok(statements
        .iter()
        .map(ConfidenceStatement::worst_case_failure_probability)
        .sum::<f64>()
        .min(1.0))
}

/// The per-subsystem confidence each case must deliver so that the
/// composed bound meets the system target, given per-subsystem claim
/// bounds: solves `Σ (xᵢ + yᵢ − xᵢyᵢ) = target` with the doubt budget
/// split equally across subsystems.
///
/// Returns one required confidence per claim bound.
///
/// # Errors
///
/// [`ConfidenceError::Infeasible`] when the claim bounds already exhaust
/// the target (`Σ yᵢ ≥ target`) — the paper's coupling, compounded.
///
/// # Examples
///
/// ```
/// use depcase_core::allocation::required_subsystem_confidences;
///
/// // Two subsystems, each claiming 1e-4, composing to a 1e-3 target:
/// let confs = required_subsystem_confidences(1e-3, &[1e-4, 1e-4])?;
/// // Each needs ~99.96% — stiffer than the single-system 99.91%.
/// assert!(confs.iter().all(|c| *c > 0.9995));
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn required_subsystem_confidences(target: f64, claim_bounds: &[f64]) -> Result<Vec<f64>> {
    if !(0.0 < target && target < 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "system target must lie in (0, 1), got {target}"
        )));
    }
    if claim_bounds.is_empty() || claim_bounds.iter().any(|y| !(0.0..1.0).contains(y)) {
        return Err(ConfidenceError::InvalidArgument(
            "claim bounds must be non-empty probabilities below 1".into(),
        ));
    }
    let claimed: f64 = claim_bounds.iter().sum();
    if claimed >= target {
        return Err(ConfidenceError::Infeasible(format!(
            "subsystem claim bounds sum to {claimed}, already at or above the target {target}"
        )));
    }
    let k = claim_bounds.len() as f64;
    let doubt_budget = (target - claimed) / k;
    claim_bounds
        .iter()
        .map(|&y| {
            // x + y − xy contributes doubt x(1−y) beyond y.
            let x = doubt_budget / (1.0 - y);
            if !(0.0..=1.0).contains(&x) {
                return Err(ConfidenceError::Infeasible(format!(
                    "per-subsystem doubt budget {doubt_budget} is not a probability at claim {y}"
                )));
            }
            Ok(1.0 - x)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocation_recomposes_exactly() {
        for k in [1usize, 2, 4, 10] {
            let budgets = allocate_equal(1e-3, k).unwrap();
            assert_eq!(budgets.len(), k);
            let recompose: f64 = 1.0 - budgets.iter().map(|y| 1.0 - y).product::<f64>();
            assert!((recompose - 1e-3).abs() < 1e-15, "k = {k}");
            // All budgets equal.
            for w in budgets.windows(2) {
                assert!((w[0] - w[1]).abs() < 1e-18);
            }
        }
    }

    #[test]
    fn weighted_allocation_orders_budgets() {
        let budgets = allocate_series(1e-2, &[3.0, 1.0]).unwrap();
        assert!(budgets[0] > budgets[1]);
        let recompose: f64 = 1.0 - budgets.iter().map(|y| 1.0 - y).product::<f64>();
        assert!((recompose - 1e-2).abs() < 1e-15);
    }

    #[test]
    fn allocation_validation() {
        assert!(allocate_series(0.0, &[1.0]).is_err());
        assert!(allocate_series(1.0, &[1.0]).is_err());
        assert!(allocate_series(1e-3, &[]).is_err());
        assert!(allocate_series(1e-3, &[0.0]).is_err());
        assert!(allocate_equal(1e-3, 0).is_err());
    }

    #[test]
    fn composition_is_the_sum_of_eq5_bounds() {
        let subs = vec![
            ConfidenceStatement::new(1e-4, 0.999).unwrap(),
            ConfidenceStatement::new(2e-4, 0.9995).unwrap(),
        ];
        let want: f64 = subs.iter().map(|s| s.worst_case_failure_probability()).sum();
        assert!((compose_series_bound(&subs).unwrap() - want).abs() < 1e-15);
        assert!(compose_series_bound(&[]).is_err());
    }

    #[test]
    fn composition_saturates_at_one() {
        let subs = vec![ConfidenceStatement::new(0.9, 0.5).unwrap(); 5];
        assert_eq!(compose_series_bound(&subs).unwrap(), 1.0);
    }

    #[test]
    fn required_confidences_compose_back_to_target() {
        let bounds = [1e-4, 1e-4, 2e-4];
        let confs = required_subsystem_confidences(1e-3, &bounds).unwrap();
        let statements: Vec<ConfidenceStatement> = bounds
            .iter()
            .zip(&confs)
            .map(|(&y, &c)| ConfidenceStatement::new(y, c).unwrap())
            .collect();
        let composed = compose_series_bound(&statements).unwrap();
        assert!((composed - 1e-3).abs() < 1e-12, "composed = {composed}");
    }

    #[test]
    fn composition_is_stiffer_than_single_system() {
        // Splitting a 1e-3 target across two 1e-4 claims demands more
        // confidence per subsystem than one system claiming 1e-4 against
        // the whole target — conservatism compounds.
        let single = crate::worst_case::WorstCaseBound::required_confidence(1e-3, 1e-4).unwrap();
        let split = required_subsystem_confidences(1e-3, &[1e-4, 1e-4]).unwrap();
        for c in split {
            assert!(c > single, "{c} <= {single}");
        }
    }

    #[test]
    fn required_confidences_infeasible_cases() {
        assert!(required_subsystem_confidences(1e-3, &[5e-4, 6e-4]).is_err());
        assert!(required_subsystem_confidences(1e-3, &[]).is_err());
        assert!(required_subsystem_confidences(0.0, &[1e-4]).is_err());
        assert!(required_subsystem_confidences(1e-3, &[1.0]).is_err());
    }
}
