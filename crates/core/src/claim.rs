//! Vocabulary types: dependability claims and confidence statements.

use crate::error::{ConfidenceError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dependability claim: "the probability of failure on demand is below
/// `bound`".
///
/// The claim itself carries no confidence; pairing it with one produces a
/// [`ConfidenceStatement`].
///
/// # Examples
///
/// ```
/// use depcase_core::Claim;
///
/// let claim = Claim::pfd_below(1e-3)?;
/// let stmt = claim.with_confidence(0.99)?;
/// assert_eq!(stmt.doubt(), 0.010000000000000009);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Claim {
    bound: f64,
}

impl Claim {
    /// A claim that the pfd is below `bound ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] outside `(0, 1]`.
    pub fn pfd_below(bound: f64) -> Result<Self> {
        if !(bound > 0.0 && bound <= 1.0) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "a pfd claim bound must lie in (0, 1], got {bound}"
            )));
        }
        Ok(Self { bound })
    }

    /// The claimed upper bound on the pfd.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Pairs the claim with a confidence level, producing a full
    /// statement.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] unless
    /// `confidence ∈ [0, 1]`.
    pub fn with_confidence(self, confidence: f64) -> Result<ConfidenceStatement> {
        ConfidenceStatement::new(self.bound, confidence)
    }
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfd < {:e}", self.bound)
    }
}

/// An elicited belief of the paper's single-point form:
/// `P(pfd < bound) = confidence` — the `(x*, y*)` pair of Section 3.4
/// with `x = 1 − confidence` (the *doubt*) and `y = bound`.
///
/// # Examples
///
/// ```
/// use depcase_core::ConfidenceStatement;
///
/// // "99.91% confident the pfd is below 1e-4"
/// let s = ConfidenceStatement::new(1e-4, 0.9991)?;
/// // Worst case, the failure probability on a random demand is x + y − xy:
/// assert!(s.worst_case_failure_probability() < 1e-3);
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceStatement {
    bound: f64,
    confidence: f64,
}

impl ConfidenceStatement {
    /// Creates the statement `P(pfd < bound) = confidence`.
    ///
    /// `bound = 0` is allowed: it is the paper's Example 2, confidence in
    /// *perfection*.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] unless `bound ∈ [0, 1]` and
    /// `confidence ∈ [0, 1]`.
    pub fn new(bound: f64, confidence: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&bound) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "bound must lie in [0, 1], got {bound}"
            )));
        }
        if !(0.0..=1.0).contains(&confidence) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "confidence must lie in [0, 1], got {confidence}"
            )));
        }
        Ok(Self { bound, confidence })
    }

    /// The claimed bound `y`.
    #[must_use]
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// The confidence `1 − x`.
    #[must_use]
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The doubt `x = 1 − confidence`.
    #[must_use]
    pub fn doubt(&self) -> f64 {
        1.0 - self.confidence
    }

    /// The paper's Eq. (5): the worst-case probability of failure on a
    /// randomly selected demand consistent with this statement,
    /// `x + y − xy`.
    #[must_use]
    pub fn worst_case_failure_probability(&self) -> f64 {
        let x = self.doubt();
        let y = self.bound;
        x + y - x * y
    }

    /// Whether this statement suffices (in the worst case) to support a
    /// system claim of `pfd < target` on a randomly selected demand.
    #[must_use]
    pub fn supports_system_claim(&self, target: f64) -> bool {
        self.worst_case_failure_probability() < target
    }
}

impl fmt::Display for ConfidenceStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P(pfd < {:e}) = {:.4}", self.bound, self.confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_validation() {
        assert!(Claim::pfd_below(0.0).is_err());
        assert!(Claim::pfd_below(-1.0).is_err());
        assert!(Claim::pfd_below(1.5).is_err());
        assert!(Claim::pfd_below(1.0).is_ok());
        assert!(Claim::pfd_below(f64::NAN).is_err());
    }

    #[test]
    fn statement_validation() {
        assert!(ConfidenceStatement::new(0.0, 0.999).is_ok()); // perfection claim
        assert!(ConfidenceStatement::new(1e-3, 1.5).is_err());
        assert!(ConfidenceStatement::new(-0.1, 0.5).is_err());
        assert!(ConfidenceStatement::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn doubt_complements_confidence() {
        let s = ConfidenceStatement::new(1e-3, 0.97).unwrap();
        assert!((s.doubt() - 0.03).abs() < 1e-12);
        assert_eq!(s.bound(), 1e-3);
    }

    #[test]
    fn worst_case_formula() {
        let s = ConfidenceStatement::new(1e-4, 0.9991).unwrap();
        let x = 0.0009;
        let y = 1e-4;
        assert!((s.worst_case_failure_probability() - (x + y - x * y)).abs() < 1e-12);
    }

    #[test]
    fn perfection_claim_example2() {
        // Paper Example 2: 99.9% confident in pfd = 0 → worst case 1e-3.
        let s = ConfidenceStatement::new(0.0, 0.999).unwrap();
        assert!((s.worst_case_failure_probability() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn certainty_claim_example1() {
        // Paper Example 1: certain that pfd < 1e-3 → worst case 1e-3.
        let s = ConfidenceStatement::new(1e-3, 1.0).unwrap();
        assert!((s.worst_case_failure_probability() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn supports_system_claim() {
        let good = ConfidenceStatement::new(1e-4, 0.99915).unwrap();
        assert!(good.supports_system_claim(1e-3));
        let weak = ConfidenceStatement::new(1e-4, 0.99).unwrap();
        assert!(!weak.supports_system_claim(1e-3));
    }

    #[test]
    fn displays() {
        assert_eq!(Claim::pfd_below(1e-3).unwrap().to_string(), "pfd < 1e-3");
        let s = ConfidenceStatement::new(1e-4, 0.9991).unwrap().to_string();
        assert!(s.contains("1e-4") && s.contains("0.9991"), "{s}");
    }

    #[test]
    fn claim_to_statement() {
        let s = Claim::pfd_below(1e-2).unwrap().with_confidence(0.7).unwrap();
        assert_eq!(s.bound(), 1e-2);
        assert_eq!(s.confidence(), 0.7);
        assert!(Claim::pfd_below(1e-2).unwrap().with_confidence(1.2).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let s = ConfidenceStatement::new(1e-4, 0.9991).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: ConfidenceStatement = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
