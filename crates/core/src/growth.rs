//! Reliability-growth modelling — the paper's third route to a SIL
//! judgement ("using a best fit reliability growth model, assessing the
//! accuracy of predictions, adding a margin for subjective assessment of
//! assumption violation", Section 3) and the Section 4.1 suggestion to
//! "analyse the growth in dangerous failure rate with failures".
//!
//! The model is the power-law NHPP (Crow–AMSAA): cumulative failures
//! `E[N(t)] = α t^β` with intensity `λ(t) = αβ t^{β−1}`; `β < 1` is
//! reliability growth. Fitting is by maximum likelihood from
//! time-truncated failure data; prediction accuracy is assessed with a
//! Kolmogorov–Smirnov u-plot statistic, which then drives the paper's
//! subjective margin and the spread of the resulting belief
//! distribution.

use crate::error::{ConfidenceError, Result};
use depcase_distributions::{DistError, LogNormal};
use rand::RngCore;

/// A fitted power-law NHPP (Crow–AMSAA) reliability-growth model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawGrowth {
    alpha: f64,
    beta: f64,
    total_time: f64,
    n_failures: usize,
    ks_distance: f64,
}

impl PowerLawGrowth {
    /// Fits the model to failure times observed over `(0, total_time]`
    /// (time-truncated sampling).
    ///
    /// MLEs: `β̂ = n / Σ ln(T/tᵢ)`, `α̂ = n / T^β̂`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] unless there are at least
    /// three failures, all times lie strictly inside `(0, total_time]`,
    /// and times are non-decreasing.
    pub fn fit(failure_times: &[f64], total_time: f64) -> Result<Self> {
        if failure_times.len() < 3 {
            return Err(ConfidenceError::InvalidArgument(format!(
                "growth fitting needs at least 3 failures, got {}",
                failure_times.len()
            )));
        }
        if !(total_time > 0.0) || !total_time.is_finite() {
            return Err(ConfidenceError::InvalidArgument(format!(
                "total observation time must be positive finite, got {total_time}"
            )));
        }
        if failure_times.iter().any(|&t| !(t > 0.0) || t > total_time) {
            return Err(ConfidenceError::InvalidArgument(
                "failure times must lie in (0, total_time]".into(),
            ));
        }
        if failure_times.windows(2).any(|w| w[0] > w[1]) {
            return Err(ConfidenceError::InvalidArgument(
                "failure times must be non-decreasing".into(),
            ));
        }
        let n = failure_times.len();
        let log_sum: f64 = failure_times.iter().map(|&t| (total_time / t).ln()).sum();
        if !(log_sum > 0.0) {
            return Err(ConfidenceError::InvalidArgument(
                "degenerate failure times (all at the truncation time)".into(),
            ));
        }
        let beta = n as f64 / log_sum;
        let alpha = n as f64 / total_time.powf(beta);

        // u-plot: under the fitted model, conditional on n, the values
        // uᵢ = (tᵢ/T)^β̂ are distributed like uniform order statistics.
        let mut us: Vec<f64> = failure_times.iter().map(|&t| (t / total_time).powf(beta)).collect();
        us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut ks: f64 = 0.0;
        for (i, &u) in us.iter().enumerate() {
            let lo = i as f64 / n as f64;
            let hi = (i as f64 + 1.0) / n as f64;
            ks = ks.max((u - lo).abs()).max((u - hi).abs());
        }

        Ok(Self { alpha, beta, total_time, n_failures: n, ks_distance: ks })
    }

    /// Scale parameter α̂.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β̂ (`< 1` means the failure rate is falling).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Whether the data show reliability growth (β̂ < 1).
    #[must_use]
    pub fn is_growing(&self) -> bool {
        self.beta < 1.0
    }

    /// Number of failures the model was fitted to.
    #[must_use]
    pub fn n_failures(&self) -> usize {
        self.n_failures
    }

    /// The u-plot Kolmogorov distance — the "accuracy of predictions"
    /// statistic. Small (≲ 1/√n) means the model tracks the data.
    #[must_use]
    pub fn ks_distance(&self) -> f64 {
        self.ks_distance
    }

    /// Fitted intensity `λ(t) = αβ t^{β−1}` at time `t`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] for non-positive `t`.
    pub fn intensity(&self, t: f64) -> Result<f64> {
        if !(t > 0.0) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "intensity needs t > 0, got {t}"
            )));
        }
        Ok(self.alpha * self.beta * t.powf(self.beta - 1.0))
    }

    /// Current (end-of-observation) fitted intensity.
    #[must_use]
    pub fn current_intensity(&self) -> f64 {
        self.alpha * self.beta * self.total_time.powf(self.beta - 1.0)
    }

    /// Expected further failures in `(total_time, total_time + dt]`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] for negative `dt`.
    pub fn expected_failures_next(&self, dt: f64) -> Result<f64> {
        if !(dt >= 0.0) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "prediction window must be non-negative, got {dt}"
            )));
        }
        let t1 = self.total_time + dt;
        Ok(self.alpha * (t1.powf(self.beta) - self.total_time.powf(self.beta)))
    }

    /// The paper's "add a margin" step: inflate the current intensity by
    /// a factor reflecting how badly the model fits. A perfect u-plot
    /// (KS 0) gets factor 1; each 0.1 of KS distance costs ~×1.6
    /// (`factor = 10^{2·ks}`), so a model failing the usual 5% KS test
    /// at n = 30 (KS ≈ 0.24) is penalized by roughly a factor 3.
    #[must_use]
    pub fn margin_adjusted_intensity(&self) -> f64 {
        self.current_intensity() * 10f64.powf(2.0 * self.ks_distance)
    }

    /// Casts the fitted model into a belief distribution over the
    /// current failure rate: mode at the margin-adjusted intensity, with
    /// spread growing with both the fit badness and the scarcity of data
    /// — ready for the SIL machinery.
    ///
    /// # Errors
    ///
    /// Propagates distribution construction failures.
    pub fn belief(&self) -> std::result::Result<LogNormal, DistError> {
        // Statistical spread ~ 1/sqrt(n) in log space plus fit penalty.
        let sigma = (1.0 / (self.n_failures as f64).sqrt() + 2.0 * self.ks_distance).max(0.1);
        LogNormal::from_mode_sigma(self.margin_adjusted_intensity(), sigma)
    }
}

/// Simulates failure times of a power-law NHPP on `(0, total_time]` —
/// the synthetic workload for growth experiments.
///
/// Uses the standard time-transform: if `N` is Poisson with mean
/// `α T^β` and `Uᵢ` are uniform, then `T·Uᵢ^{1/β}` are the (unordered)
/// failure times.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] for non-positive parameters.
///
/// # Examples
///
/// ```
/// use depcase_core::growth::{simulate_power_law, PowerLawGrowth};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let times = simulate_power_law(&mut rng, 3.0, 0.6, 1000.0)?;
/// let fit = PowerLawGrowth::fit(&times, 1000.0)?;
/// assert!(fit.is_growing());
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn simulate_power_law(
    rng: &mut dyn RngCore,
    alpha: f64,
    beta: f64,
    total_time: f64,
) -> Result<Vec<f64>> {
    if !(alpha > 0.0) || !(beta > 0.0) || !(total_time > 0.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "simulate_power_law requires positive parameters; got alpha = {alpha}, beta = {beta}, T = {total_time}"
        )));
    }
    let mean = alpha * total_time.powf(beta);
    // Poisson draw by inversion over the unit-exponential race (fine for
    // the moderate means used in experiments).
    let mut n = 0usize;
    let mut acc = 0.0;
    while acc < mean {
        acc += depcase_distributions::sampler::standard_exponential(rng);
        if acc < mean {
            n += 1;
        }
        if n > 10_000_000 {
            return Err(ConfidenceError::InvalidArgument(
                "simulated failure count exploded; check parameters".into(),
            ));
        }
    }
    let mut times: Vec<f64> = (0..n)
        .map(|_| {
            let u = depcase_distributions::sampler::open_unit(rng);
            total_time * u.powf(1.0 / beta)
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulated(beta: f64, seed: u64) -> (Vec<f64>, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = 2000.0;
        (simulate_power_law(&mut rng, 2.0, beta, t).unwrap(), t)
    }

    #[test]
    fn fit_validation() {
        assert!(PowerLawGrowth::fit(&[1.0, 2.0], 10.0).is_err());
        assert!(PowerLawGrowth::fit(&[1.0, 2.0, 3.0], 0.0).is_err());
        assert!(PowerLawGrowth::fit(&[1.0, 2.0, 30.0], 10.0).is_err());
        assert!(PowerLawGrowth::fit(&[2.0, 1.0, 3.0], 10.0).is_err());
        assert!(PowerLawGrowth::fit(&[-1.0, 1.0, 3.0], 10.0).is_err());
    }

    #[test]
    fn mle_recovers_beta_on_simulated_data() {
        let (times, t) = simulated(0.6, 42);
        assert!(times.len() > 50, "need a decent sample, got {}", times.len());
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        assert!((fit.beta() - 0.6).abs() < 0.15, "beta = {}", fit.beta());
        assert!(fit.is_growing());
        assert_eq!(fit.n_failures(), times.len());
    }

    #[test]
    fn mle_detects_deterioration() {
        let (times, t) = simulated(1.4, 43);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        assert!(fit.beta() > 1.0, "beta = {}", fit.beta());
        assert!(!fit.is_growing());
    }

    #[test]
    fn intensity_decreases_under_growth() {
        let (times, t) = simulated(0.5, 44);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        let early = fit.intensity(t / 10.0).unwrap();
        let late = fit.intensity(t).unwrap();
        assert!(late < early);
        assert!((fit.current_intensity() - late).abs() < 1e-12);
        assert!(fit.intensity(0.0).is_err());
    }

    #[test]
    fn expected_failures_consistent_with_mean_function() {
        let (times, t) = simulated(0.7, 45);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        let e = fit.expected_failures_next(t).unwrap();
        let direct = fit.alpha() * ((2.0 * t).powf(fit.beta()) - t.powf(fit.beta()));
        assert!((e - direct).abs() < 1e-10);
        assert_eq!(fit.expected_failures_next(0.0).unwrap(), 0.0);
        assert!(fit.expected_failures_next(-1.0).is_err());
    }

    #[test]
    fn well_specified_model_has_small_ks() {
        let (times, t) = simulated(0.6, 46);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        let n = fit.n_failures() as f64;
        // The 1% KS critical value is ~1.63/sqrt(n); a well-specified
        // model should be comfortably under it.
        assert!(fit.ks_distance() < 1.63 / n.sqrt() * 1.5, "ks = {}", fit.ks_distance());
    }

    #[test]
    fn misspecified_model_has_larger_ks() {
        // Failures clustered in two bursts — nothing like a power law.
        let mut times = Vec::new();
        for i in 0..25 {
            times.push(100.0 + i as f64 * 0.1);
        }
        for i in 0..25 {
            times.push(1900.0 + i as f64 * 0.1);
        }
        let fit = PowerLawGrowth::fit(&times, 2000.0).unwrap();
        let (ok_times, t) = simulated(0.6, 47);
        let good = PowerLawGrowth::fit(&ok_times, t).unwrap();
        assert!(
            fit.ks_distance() > good.ks_distance(),
            "{} vs {}",
            fit.ks_distance(),
            good.ks_distance()
        );
    }

    #[test]
    fn margin_penalizes_bad_fit() {
        let (times, t) = simulated(0.6, 48);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        assert!(fit.margin_adjusted_intensity() >= fit.current_intensity());
        // KS = 0 would give no penalty; the factor is 10^{2·ks}.
        let factor = fit.margin_adjusted_intensity() / fit.current_intensity();
        assert!((factor - 10f64.powf(2.0 * fit.ks_distance())).abs() < 1e-12);
    }

    #[test]
    fn belief_is_usable_by_sil_machinery() {
        use depcase_distributions::Distribution;
        let (times, t) = simulated(0.6, 49);
        let fit = PowerLawGrowth::fit(&times, t).unwrap();
        let belief = fit.belief().unwrap();
        assert!((belief.mode().unwrap() - fit.margin_adjusted_intensity()).abs() < 1e-12);
        assert!(belief.sigma() >= 0.1);
        // More data or better fit would shrink the spread; verify the
        // formula's direction with a handcrafted comparison.
        let few = PowerLawGrowth::fit(&times[..5], t).unwrap();
        let few_belief = few.belief().unwrap();
        assert!(few_belief.sigma() > belief.sigma());
    }

    #[test]
    fn simulate_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(simulate_power_law(&mut rng, 0.0, 0.5, 10.0).is_err());
        assert!(simulate_power_law(&mut rng, 1.0, -0.5, 10.0).is_err());
        assert!(simulate_power_law(&mut rng, 1.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn simulation_is_deterministic_and_sorted() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ta = simulate_power_law(&mut a, 2.0, 0.7, 500.0).unwrap();
        let tb = simulate_power_law(&mut b, 2.0, 0.7, 500.0).unwrap();
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
        assert!(ta.iter().all(|&t| t > 0.0 && t <= 500.0));
    }
}
