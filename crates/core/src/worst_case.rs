//! The conservative worst-case calculus of the paper's Section 3.4.
//!
//! Given only the single-point elicited belief `P(pfd < y) = 1 − x`, the
//! most conservative belief distribution concentrates mass `1 − x` at `y`
//! and mass `x` at 1, so
//!
//! ```text
//! P(system fails on a randomly selected demand) ≤ (1 − x)·y + x
//!                                               = x + y − xy        (5)
//! ```
//!
//! The functions here implement that bound, its perfection-probability
//! and bounded-factor refinements, and the inverse problems ("what
//! confidence do I need?") that give the paper's Examples 1–3 their
//! numbers.

use crate::claim::ConfidenceStatement;
use crate::error::{ConfidenceError, Result};
use depcase_distributions::{Distribution, TwoPoint};

/// Namespace for the worst-case bound calculus.
///
/// All members are associated functions: the calculus is stateless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstCaseBound;

impl WorstCaseBound {
    /// The paper's Eq. (5): `x + y − xy`, the worst-case probability of
    /// failure on a randomly selected demand given
    /// `P(pfd < y) = 1 − x`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] unless both `x` (doubt) and
    /// `y` (claim bound) are probabilities.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_core::WorstCaseBound;
    ///
    /// let b = WorstCaseBound::bound(0.0009, 1e-4)?;
    /// assert!((b - 0.00099991).abs() < 1e-10);
    /// # Ok::<(), depcase_core::ConfidenceError>(())
    /// ```
    pub fn bound(doubt: f64, claim_bound: f64) -> Result<f64> {
        check_prob("doubt", doubt)?;
        check_prob("claim bound", claim_bound)?;
        Ok(doubt + claim_bound - doubt * claim_bound)
    }

    /// Evaluates [`WorstCaseBound::bound`] over the full `(x, y)` grid —
    /// the batched entry point parameter sweeps drive. Row `i` of the
    /// result holds the bounds for `doubts[i]` against every claim
    /// bound, so `out[i][j] = bound(doubts[i], claim_bounds[j])`.
    ///
    /// Inputs are validated once per axis value rather than once per
    /// grid cell.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] when any axis value is not a
    /// probability.
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_core::WorstCaseBound;
    ///
    /// let grid = WorstCaseBound::bound_grid(&[0.0, 0.0009], &[1e-3, 1e-4])?;
    /// assert_eq!(grid.len(), 2);
    /// assert!((grid[0][0] - 1e-3).abs() < 1e-15); // zero doubt: bound = y
    /// assert!((grid[1][1] - 0.00099991).abs() < 1e-10);
    /// # Ok::<(), depcase_core::ConfidenceError>(())
    /// ```
    pub fn bound_grid(doubts: &[f64], claim_bounds: &[f64]) -> Result<Vec<Vec<f64>>> {
        for &x in doubts {
            check_prob("doubt", x)?;
        }
        for &y in claim_bounds {
            check_prob("claim bound", y)?;
        }
        Ok(doubts.iter().map(|&x| claim_bounds.iter().map(|&y| x + y - x * y).collect()).collect())
    }

    /// The perfection-probability refinement (the paper's footnote to
    /// Section 3.4): if the expert additionally holds probability `p0`
    /// that the system is *perfect* (pfd = 0), the bound tightens to
    /// `x + y − (x + p0)·y`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] if any argument is not a
    /// probability or `p0 > 1 − x` (the perfection mass cannot exceed the
    /// mass consistent with the claim).
    pub fn bound_with_perfection(doubt: f64, claim_bound: f64, p0: f64) -> Result<f64> {
        check_prob("doubt", doubt)?;
        check_prob("claim bound", claim_bound)?;
        check_prob("perfection probability", p0)?;
        if p0 > 1.0 - doubt {
            return Err(ConfidenceError::InvalidArgument(format!(
                "perfection probability {p0} exceeds the non-doubt mass {}",
                1.0 - doubt
            )));
        }
        Ok(doubt + claim_bound - (doubt + p0) * claim_bound)
    }

    /// The bounded-factor refinement (the paper's closing remark of
    /// Section 3.4): if we can defend that, when wrong, the pfd is at
    /// worst `factor · y` rather than 1, the bound becomes
    /// `(1 − x)·y + x·min(factor·y, 1)`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] unless `x`, `y` are
    /// probabilities and `factor >= 1`.
    pub fn bound_with_factor(doubt: f64, claim_bound: f64, factor: f64) -> Result<f64> {
        check_prob("doubt", doubt)?;
        check_prob("claim bound", claim_bound)?;
        if !(factor >= 1.0) {
            return Err(ConfidenceError::InvalidArgument(format!(
                "worst-case factor must be >= 1, got {factor}"
            )));
        }
        let worst = (factor * claim_bound).min(1.0);
        Ok((1.0 - doubt) * claim_bound + doubt * worst)
    }

    /// Inverse problem: the confidence `1 − x*` required so that claiming
    /// `pfd < claim_bound` supports the system requirement
    /// `x* + y* − x*y* = target`.
    ///
    /// This is the computation behind the paper's Example 3: with
    /// `target = 10⁻³` and `claim_bound = 10⁻⁴`, the required confidence
    /// is 99.91 %.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::Infeasible`] when `claim_bound >= target` (the
    /// coupling between claim and doubt makes the requirement
    /// unreachable: both must be below the target).
    ///
    /// # Examples
    ///
    /// ```
    /// use depcase_core::WorstCaseBound;
    ///
    /// let c = WorstCaseBound::required_confidence(1e-3, 1e-4)?;
    /// assert!((c - 0.9991).abs() < 1e-4);
    /// // The stringent case in the paper: a 1e-5 requirement needs
    /// // confidence beyond 99.999% — "it seems unlikely that real experts
    /// // would ever express confidence of this magnitude".
    /// let c = WorstCaseBound::required_confidence(1e-5, 1e-6)?;
    /// assert!(c > 0.99999);
    /// # Ok::<(), depcase_core::ConfidenceError>(())
    /// ```
    pub fn required_confidence(target: f64, claim_bound: f64) -> Result<f64> {
        check_prob("target", target)?;
        check_prob("claim bound", claim_bound)?;
        if !(claim_bound < target) {
            return Err(ConfidenceError::Infeasible(format!(
                "the claimed bound ({claim_bound}) must be strictly below the target ({target}): \
                 both doubt and claim are coupled below the requirement"
            )));
        }
        // x + y − xy = t  ⇒  x = (t − y) / (1 − y)
        let x = (target - claim_bound) / (1.0 - claim_bound);
        Ok(1.0 - x)
    }

    /// Inverse problem: the claim bound `y*` to aim for when the expert
    /// can muster at most the given confidence, so that
    /// `x* + y* − x*y* = target`.
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::Infeasible`] when the doubt `1 − confidence`
    /// already exceeds the target (no claim bound, however strong, can
    /// compensate).
    pub fn required_claim_bound(target: f64, confidence: f64) -> Result<f64> {
        check_prob("target", target)?;
        check_prob("confidence", confidence)?;
        let x = 1.0 - confidence;
        if x >= target {
            return Err(ConfidenceError::Infeasible(format!(
                "doubt {x} alone reaches the target {target}; no claim bound can help"
            )));
        }
        // x + y − xy = t  ⇒  y = (t − x) / (1 − x)
        Ok((target - x) / (1.0 - x))
    }

    /// The extremal (most conservative) belief distribution realizing the
    /// bound for a statement — the paper's Figure 6b as an actual
    /// [`Distribution`].
    ///
    /// # Errors
    ///
    /// [`ConfidenceError::InvalidArgument`] if the statement's bound is 1
    /// (the two atoms would coincide).
    pub fn extremal_distribution(statement: &ConfidenceStatement) -> Result<TwoPoint> {
        TwoPoint::worst_case(statement.bound(), statement.doubt()).map_err(ConfidenceError::from)
    }

    /// Verifies numerically that the bound dominates the unconditional
    /// failure probability `∫ p f(p) dp` of an arbitrary belief `f`
    /// satisfying `P(pfd < y) ≥ 1 − x` — returns the pair
    /// `(actual, bound)`.
    ///
    /// Used by the property-test suite; exposed because it is also a
    /// useful diagnostic when auditing a case.
    ///
    /// # Errors
    ///
    /// Propagates distribution/quadrature failures.
    pub fn check_dominates<D: Distribution + ?Sized>(
        belief: &D,
        claim_bound: f64,
    ) -> Result<(f64, f64)> {
        let doubt = 1.0 - belief.cdf(claim_bound);
        let actual = depcase_distributions::moments::numeric_mean(belief, 1e-10)?;
        let bound = Self::bound(doubt, claim_bound)?;
        Ok((actual, bound))
    }
}

fn check_prob(name: &str, v: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&v) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "{name} must be a probability in [0, 1], got {v}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::Beta;

    #[test]
    fn bound_grid_matches_pointwise_bound() {
        let xs = [0.0, 1e-4, 0.05, 0.5, 1.0];
        let ys = [0.0, 1e-5, 1e-3, 0.1, 1.0];
        let grid = WorstCaseBound::bound_grid(&xs, &ys).unwrap();
        assert_eq!(grid.len(), xs.len());
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(grid[i].len(), ys.len());
            for (j, &y) in ys.iter().enumerate() {
                let direct = WorstCaseBound::bound(x, y).unwrap();
                assert_eq!(grid[i][j].to_bits(), direct.to_bits(), "({x}, {y})");
            }
        }
        // Axis validation still applies.
        assert!(WorstCaseBound::bound_grid(&[1.5], &[0.1]).is_err());
        assert!(WorstCaseBound::bound_grid(&[0.1], &[-0.2]).is_err());
    }

    #[test]
    fn eq5_examples_from_paper() {
        // Example 1: x* = 0, y* = 1e-3 → bound 1e-3.
        assert!((WorstCaseBound::bound(0.0, 1e-3).unwrap() - 1e-3).abs() < 1e-18);
        // Example 2: x* = 1e-3, y* = 0 → bound 1e-3.
        assert!((WorstCaseBound::bound(1e-3, 0.0).unwrap() - 1e-3).abs() < 1e-18);
        // Example 3: x* = 0.0009, y* = 1e-4 → bound ≈ 1e-3.
        let b = WorstCaseBound::bound(0.0009, 1e-4).unwrap();
        assert!((b - 1e-3).abs() < 1e-7, "bound = {b}");
    }

    #[test]
    fn example3_required_confidence_is_9991() {
        let c = WorstCaseBound::required_confidence(1e-3, 1e-4).unwrap();
        // x* = (1e-3 − 1e-4)/(1 − 1e-4) ≈ 0.00090009 → confidence 99.90999…%
        assert!((c - 0.99909991).abs() < 1e-6, "c = {c}");
    }

    #[test]
    fn required_confidence_round_trips_through_bound() {
        for &(t, y) in &[(1e-3, 1e-4), (1e-2, 1e-3), (1e-5, 1e-7), (0.5, 0.1)] {
            let c = WorstCaseBound::required_confidence(t, y).unwrap();
            let b = WorstCaseBound::bound(1.0 - c, y).unwrap();
            assert!((b - t).abs() < 1e-12, "t = {t}, y = {y}: bound = {b}");
        }
    }

    #[test]
    fn required_confidence_infeasible_when_claim_not_below_target() {
        assert!(WorstCaseBound::required_confidence(1e-3, 1e-3).is_err());
        assert!(WorstCaseBound::required_confidence(1e-3, 1e-2).is_err());
    }

    #[test]
    fn stringent_requirement_needs_extreme_confidence() {
        // The paper: for y = 1e-5 the expert "would need to believe the
        // pfd is smaller than y* with confidence greater than 99.999%".
        let c = WorstCaseBound::required_confidence(1e-5, 1e-6).unwrap();
        assert!(c > 0.99999, "c = {c}");
    }

    #[test]
    fn required_claim_bound_inverse() {
        let y = WorstCaseBound::required_claim_bound(1e-3, 0.9995).unwrap();
        let b = WorstCaseBound::bound(0.0005, y).unwrap();
        assert!((b - 1e-3).abs() < 1e-12);
        // Doubt exceeding the target is hopeless.
        assert!(WorstCaseBound::required_claim_bound(1e-3, 0.99).is_err());
    }

    #[test]
    fn perfection_tightens_bound() {
        let plain = WorstCaseBound::bound(0.001, 1e-3).unwrap();
        let with_p0 = WorstCaseBound::bound_with_perfection(0.001, 1e-3, 0.3).unwrap();
        assert!(with_p0 < plain);
        // Formula: x + y − (x + p0) y
        let want = 0.001 + 1e-3 - (0.001 + 0.3) * 1e-3;
        assert!((with_p0 - want).abs() < 1e-15);
    }

    #[test]
    fn perfection_validation() {
        assert!(WorstCaseBound::bound_with_perfection(0.4, 1e-3, 0.7).is_err());
        assert!(WorstCaseBound::bound_with_perfection(0.1, 1e-3, -0.1).is_err());
    }

    #[test]
    fn factor_interpolates_between_tight_and_full() {
        let y = 1e-4;
        let x = 0.01;
        // factor 1: no penalty beyond the claim bound itself.
        let f1 = WorstCaseBound::bound_with_factor(x, y, 1.0).unwrap();
        assert!((f1 - y).abs() < 1e-18);
        // The paper's "not wrong by more than a factor of 100":
        let f100 = WorstCaseBound::bound_with_factor(x, y, 100.0).unwrap();
        assert!(f100 > f1);
        let full = WorstCaseBound::bound(x, y).unwrap();
        assert!(f100 < full);
        // Enormous factor saturates at the full bound.
        let fbig = WorstCaseBound::bound_with_factor(x, y, 1e9).unwrap();
        assert!((fbig - full).abs() < 1e-12);
    }

    #[test]
    fn factor_validation() {
        assert!(WorstCaseBound::bound_with_factor(0.1, 1e-3, 0.5).is_err());
    }

    #[test]
    fn argument_validation() {
        assert!(WorstCaseBound::bound(-0.1, 0.5).is_err());
        assert!(WorstCaseBound::bound(0.5, 1.5).is_err());
        assert!(WorstCaseBound::bound(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn extremal_distribution_attains_bound() {
        let s = ConfidenceStatement::new(1e-4, 0.9991).unwrap();
        let w = WorstCaseBound::extremal_distribution(&s).unwrap();
        assert!((w.mean() - s.worst_case_failure_probability()).abs() < 1e-15);
    }

    #[test]
    fn bound_dominates_real_distributions() {
        // Any admissible belief has unconditional failure probability
        // below the worst-case bound.
        for belief in [Beta::new(1.0, 500.0).unwrap(), Beta::new(2.0, 2000.0).unwrap()] {
            let (actual, bound) = WorstCaseBound::check_dominates(&belief, 1e-2).unwrap();
            assert!(actual <= bound + 1e-9, "actual {actual} > bound {bound}");
        }
    }
}
