//! Perfection-probability arguments — the paper's fifth SIL-judgement
//! route ("developing an argument of high confidence in zero defects…
//! credible for small highly analysed systems") and its footnote 3
//! distinction: claiming `pfd = 0` with probability `p₀` is a different
//! *kind* of claim from claiming a vanishingly small non-zero pfd, and
//! the two compose as a mixture.

use crate::error::{ConfidenceError, Result};
use crate::worst_case::WorstCaseBound;
use depcase_distributions::{Component, Distribution, Mixture, PointMass};

/// A belief combining probability `p0` of perfection (pfd exactly 0)
/// with a continuous belief about the imperfect case.
///
/// # Errors
///
/// [`ConfidenceError::InvalidArgument`] unless `p0 ∈ [0, 1]`; propagates
/// mixture construction failures.
///
/// # Examples
///
/// ```
/// use depcase_core::perfection::belief_with_perfection;
/// use depcase_distributions::{Distribution, LogNormal};
///
/// let imperfect = LogNormal::from_mode_sigma(1e-4, 1.0)?;
/// let belief = belief_with_perfection(0.3, imperfect)?;
/// // The atom at zero carries 30% of the mass:
/// assert!((belief.cdf(0.0) - 0.3).abs() < 1e-12);
/// // Eq. (4): the mean shrinks by exactly the perfection mass.
/// assert!((belief.mean() - 0.7 * imperfect.mean()).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn belief_with_perfection<D: Distribution + 'static>(
    p0: f64,
    imperfect_body: D,
) -> Result<Mixture> {
    if !(0.0..=1.0).contains(&p0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "perfection probability must lie in [0, 1], got {p0}"
        )));
    }
    let zero = PointMass::new(0.0).map_err(ConfidenceError::from)?;
    Mixture::new(vec![Component::new(p0, zero), Component::new(1.0 - p0, imperfect_body)])
        .map_err(ConfidenceError::from)
}

/// The perfection probability needed so that, combined with a worst-case
/// view of the imperfect side (`P(pfd < y | imperfect) = 1 − x`), the
/// system requirement is met: solves `(1 − p0)(x + y − xy) ≤ target` …
/// conservatively treating *all* imperfect mass via Eq. (5).
///
/// Returns 0 when the imperfect side alone already meets the target.
///
/// # Errors
///
/// [`ConfidenceError::Infeasible`] when even certainty of perfection
/// cannot help (never, since `p0 = 1` zeroes the bound — only argument
/// validation errors remain).
///
/// # Examples
///
/// ```
/// use depcase_core::perfection::required_perfection_probability;
///
/// // Imperfect side: 99% confident pfd < 1e-4, i.e. x = 0.01 and the
/// // worst-case bound is ≈ 1.01e-2 — ten times the 1e-3 target. The
/// // shortfall must come from perfection mass:
/// let p0 = required_perfection_probability(1e-3, 1e-4, 0.99)?;
/// assert!(p0 > 0.9, "p0 = {p0}");
/// # Ok::<(), depcase_core::ConfidenceError>(())
/// ```
pub fn required_perfection_probability(
    target: f64,
    claim_bound: f64,
    imperfect_confidence: f64,
) -> Result<f64> {
    if !(0.0 < target && target <= 1.0) {
        return Err(ConfidenceError::InvalidArgument(format!(
            "target must lie in (0, 1], got {target}"
        )));
    }
    let x = 1.0 - imperfect_confidence;
    let bound = WorstCaseBound::bound(x, claim_bound)?;
    if bound <= target {
        return Ok(0.0);
    }
    // (1 − p0) · bound = target  ⇒  p0 = 1 − target/bound.
    Ok(1.0 - target / bound)
}

/// Classifies which *kind* of reasoning a tiny claimed pfd needs — the
/// paper's footnote: "In the first case, the claim is one of perfection,
/// and this might be supportable by non-probabilistic reasoning. In the
/// second case, it is assumed that the system is imperfect."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimKind {
    /// A perfection claim (`pfd = 0`): support it by exhaustive analysis
    /// or proof, not statistics.
    Perfection,
    /// An imperfection claim (`pfd > 0` but small): support it by
    /// probabilistic evidence.
    VanishinglySmall,
}

/// Heuristic from the footnote: statistical evidence cannot distinguish
/// bounds below what any conceivable testing could confirm (~1e-8 per
/// demand for realistic campaigns); below that, the honest claim is one
/// of perfection.
#[must_use]
pub fn claim_kind(bound: f64) -> ClaimKind {
    if bound <= 0.0 || bound < 1e-8 {
        ClaimKind::Perfection
    } else {
        ClaimKind::VanishinglySmall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase_distributions::LogNormal;

    fn body() -> LogNormal {
        LogNormal::from_mode_sigma(1e-4, 1.0).unwrap()
    }

    #[test]
    fn mixture_shape() {
        let b = belief_with_perfection(0.25, body()).unwrap();
        assert!((b.cdf(0.0) - 0.25).abs() < 1e-12);
        assert!(b.cdf(1e-3) > 0.25);
        assert!(belief_with_perfection(1.5, body()).is_err());
        assert!(belief_with_perfection(-0.1, body()).is_err());
    }

    #[test]
    fn zero_p0_is_just_the_body() {
        let b = belief_with_perfection(0.0, body()).unwrap();
        assert!((b.mean() - body().mean()).abs() < 1e-15);
        assert_eq!(b.cdf(0.0), 0.0);
    }

    #[test]
    fn full_p0_is_certain_perfection() {
        let b = belief_with_perfection(1.0, body()).unwrap();
        assert_eq!(b.cdf(0.0), 1.0);
        assert_eq!(b.mean(), 0.0);
    }

    #[test]
    fn required_p0_round_trip() {
        let target = 1e-3;
        let p0 = required_perfection_probability(target, 1e-4, 0.99).unwrap();
        let x = 0.01;
        let bound = WorstCaseBound::bound(x, 1e-4).unwrap();
        assert!(((1.0 - p0) * bound - target).abs() < 1e-12);
    }

    #[test]
    fn required_p0_zero_when_statistics_suffice() {
        // 99.91% confidence in 1e-4 meets a 1e-3 target without any
        // perfection mass.
        let p0 = required_perfection_probability(1e-3, 1e-4, 0.99910).unwrap();
        assert_eq!(p0, 0.0);
    }

    #[test]
    fn required_p0_validation() {
        assert!(required_perfection_probability(0.0, 1e-4, 0.99).is_err());
        assert!(required_perfection_probability(1e-3, 1.5, 0.99).is_err());
    }

    #[test]
    fn mixture_bound_matches_worst_case_with_perfection() {
        // The paper's worst case with perfection puts mass p0 at 0,
        // 1 − x − p0 at y and x at 1; its mean is exactly
        // x + y − (x + p0)·y, Eq. (5)'s perfection variant.
        let p0 = 0.2;
        let y = 1e-3;
        let x = 0.01;
        let three_atoms = Mixture::new(vec![
            Component::new(p0, PointMass::new(0.0).unwrap()),
            Component::new(1.0 - x - p0, PointMass::new(y).unwrap()),
            Component::new(x, PointMass::new(1.0).unwrap()),
        ])
        .unwrap();
        let closed = WorstCaseBound::bound_with_perfection(x, y, p0).unwrap();
        assert!((three_atoms.mean() - closed).abs() < 1e-15, "{} vs {closed}", three_atoms.mean());
        // The helper's mixture (perfection alongside a statement-worst
        // body) is *less* conservative: its doubt is also scaled by
        // 1 − p0, so the closed form dominates it.
        let worst_body = depcase_distributions::TwoPoint::worst_case(y, x).unwrap();
        let b = belief_with_perfection(p0, worst_body).unwrap();
        assert!(b.mean() <= closed + 1e-15);
    }

    #[test]
    fn claim_kind_split() {
        assert_eq!(claim_kind(0.0), ClaimKind::Perfection);
        assert_eq!(claim_kind(1e-10), ClaimKind::Perfection);
        assert_eq!(claim_kind(1e-6), ClaimKind::VanishinglySmall);
        assert_eq!(claim_kind(1e-3), ClaimKind::VanishinglySmall);
    }
}
