//! Error type for the confidence calculus.

use depcase_distributions::DistError;
use depcase_numerics::NumericsError;
use std::fmt;

/// Error produced by the confidence calculus.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfidenceError {
    /// An argument was outside its domain (probabilities outside `[0,1]`,
    /// non-positive bounds, …).
    InvalidArgument(String),
    /// The requested construction cannot be satisfied — e.g. the paper's
    /// coupling between claim and doubt makes the target unreachable.
    Infeasible(String),
    /// An underlying distribution operation failed.
    Distribution(DistError),
    /// An underlying numerical routine failed.
    Numerics(NumericsError),
}

impl fmt::Display for ConfidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfidenceError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            ConfidenceError::Infeasible(m) => write!(f, "infeasible: {m}"),
            ConfidenceError::Distribution(e) => write!(f, "distribution error: {e}"),
            ConfidenceError::Numerics(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for ConfidenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfidenceError::Distribution(e) => Some(e),
            ConfidenceError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for ConfidenceError {
    fn from(e: DistError) -> Self {
        ConfidenceError::Distribution(e)
    }
}

impl From<NumericsError> for ConfidenceError {
    fn from(e: NumericsError) -> Self {
        ConfidenceError::Numerics(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, ConfidenceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ConfidenceError::InvalidArgument("x".into());
        assert!(e.to_string().contains("x"));
        assert!(e.source().is_none());
        let e: ConfidenceError = NumericsError::Domain("d".into()).into();
        assert!(e.source().is_some());
        let e: ConfidenceError = DistError::InvalidProbability(2.0).into();
        assert!(e.source().is_some());
        assert!(ConfidenceError::Infeasible("no".into()).to_string().contains("no"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfidenceError>();
    }
}
