//! Multi-tenant sharding and global-memo tests.
//!
//! Two contracts from DESIGN §17:
//!
//! 1. **Shard isolation.** Tenants hammering different names
//!    concurrently never observe each other: versions stay per-name
//!    monotonic with no gaps, and every answer is bit-identical to a
//!    single-tenant reference evaluation of the same edit sequence.
//! 2. **Global memo sharing is invisible in the bits.** An engine with
//!    the shared content-addressed memo store answers byte-identically
//!    to one compiling every case cold with a private memo — sharing
//!    changes how much work compiles do, never what they answer — while
//!    the compile counters prove the sharing actually happened.

use depcase::assurance::templates::{stamp, TEMPLATE_COUNT};
use depcase::prelude::*;
use depcase_service::{EditAction, Engine, EngineConfig, Request};
use serde::{Serialize, Value};
use std::sync::Arc;

fn load(engine: &Engine, name: &str, case: &Case) -> Value {
    engine
        .handle(&Request::Load { name: name.to_string(), case: Serialize::to_value(case) })
        .unwrap()
}

fn eval(engine: &Engine, name: &str) -> Value {
    engine.handle(&Request::Eval { name: name.to_string(), at: None }).unwrap()
}

fn set_confidence(engine: &Engine, name: &str, node: &str, confidence: f64) -> Value {
    engine
        .handle(&Request::Edit {
            name: name.to_string(),
            action: EditAction::SetConfidence { node: node.to_string(), confidence },
        })
        .unwrap()
}

fn root_bits(value: &Value) -> u64 {
    value.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits()
}

fn version_of(value: &Value) -> u64 {
    value.get("version").and_then(Value::as_u64).unwrap()
}

/// The evidence-leaf names of a case, in iteration order.
fn leaf_names(case: &Case) -> Vec<String> {
    case.iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Evidence { .. }))
        .map(|(_, n)| n.name.clone())
        .collect()
}

/// Eight tenants, each hammering its own case through one sharded
/// engine with the global memo store on. Each thread tracks a private
/// reference `Case` mutated by the same edits; every engine answer
/// must match the reference bit for bit, and versions must advance by
/// exactly one per own-edit — a neighbour's traffic bleeding into a
/// tenant's version chain or answers fails immediately.
#[test]
fn eight_concurrent_tenants_stay_isolated_and_bit_identical() {
    const TENANTS: usize = 8;
    const EDITS: u64 = 40;
    let engine = Arc::new(Engine::with_config(&EngineConfig {
        cache_capacity: 64,
        shards: 8,
        memo_entries: 1 << 14,
    }));
    let workers: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let name = format!("tenant-{tenant}");
                let mut reference = stamp(tenant % TEMPLATE_COUNT, tenant as u64);
                let leaves = leaf_names(&reference);
                let loaded = load(&engine, &name, &reference);
                assert_eq!(version_of(&loaded), 1);
                for step in 0..EDITS {
                    // Deterministic per-tenant edit stream; confidences
                    // differ per tenant so cross-tenant bleed would
                    // change bits, not just counters.
                    let leaf = &leaves[(step as usize) % leaves.len()];
                    let confidence =
                        0.10 + 0.10 * tenant as f64 / TENANTS as f64 + 0.001 * step as f64;
                    let id = reference.node_by_name(leaf).unwrap();
                    reference.set_leaf_confidence(id, confidence).unwrap();
                    let edited = set_confidence(&engine, &name, leaf, confidence);
                    assert_eq!(
                        version_of(&edited),
                        step + 2,
                        "tenant {tenant}: versions must advance by exactly 1 per own edit"
                    );
                    let expected =
                        reference.propagate().unwrap().top().unwrap().independent.to_bits();
                    assert_eq!(root_bits(&edited), expected, "tenant {tenant} step {step}");
                    let evalled = eval(&engine, &name);
                    assert_eq!(version_of(&evalled), step + 2);
                    assert_eq!(root_bits(&evalled), expected);
                }
                reference
            })
        })
        .collect();
    let references: Vec<Case> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // Quiescent cross-check: every tenant's history is exactly its own
    // 1 load + EDITS edits, and the final state still matches.
    for (tenant, reference) in references.iter().enumerate() {
        let name = format!("tenant-{tenant}");
        let history = engine.handle(&Request::History { name: name.clone() }).unwrap();
        let versions = history.get("versions").and_then(Value::as_array).unwrap();
        assert_eq!(versions.len() as u64, EDITS + 1, "tenant {tenant} history length");
        let expected = reference.propagate().unwrap().top().unwrap().independent.to_bits();
        assert_eq!(root_bits(&eval(&engine, &name)), expected);
    }
    // The tenants share template structure: the global store must have
    // fielded some of the compile work.
    assert!(engine.memo_stats().unwrap().hits > 0);
}

/// A fleet of template variants registered through a memo-sharing
/// engine answers byte-identically (whole wire values, not just the
/// root) to a cold engine with the store disabled — while the sharing
/// engine's compile counters show a clear subtree-dedup win.
#[test]
fn memo_sharing_fleet_matches_cold_compiles_byte_for_byte() {
    const VARIANTS: u64 = 200;
    let shared =
        Engine::with_config(&EngineConfig { cache_capacity: 32, shards: 8, memo_entries: 1 << 16 });
    let cold =
        Engine::with_config(&EngineConfig { cache_capacity: 32, shards: 1, memo_entries: 0 });
    for i in 0..VARIANTS {
        let template = (i % TEMPLATE_COUNT as u64) as usize;
        let variant = i / TEMPLATE_COUNT as u64;
        let name = format!("t{template}-v{variant}");
        let case = stamp(template, variant);
        load(&shared, &name, &case);
        load(&cold, &name, &case);
        let a = eval(&shared, &name);
        let b = eval(&cold, &name);
        assert_eq!(a, b, "{name}: shared-memo answers must be byte-identical to cold");
    }
    let ratio = shared.compile_counters().dedup_ratio();
    assert!(ratio > 3.0, "200 variants of {TEMPLATE_COUNT} templates must dedup heavily: {ratio}");
    let store = shared.memo_stats().unwrap();
    assert!(store.hits > 0 && store.entries > 0);
}
