//! Golden wire transcripts for the versioned protocol: v1 lines must
//! stay byte-identical to what the pre-v2 server produced, a `"v":2`
//! stamp must change a response by exactly that stamp and nothing
//! else, and the `batch` op must answer item-for-item what individual
//! dispatch answers.

use depcase::prelude::*;
use depcase_service::protocol::Json;
use depcase_service::{Client, Engine, RetryPolicy, RetryingClient, Server};
use serde::{Serialize, Value};
use std::sync::Arc;

fn reactor_case() -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

fn parse(line: &str) -> Value {
    let Json(v) = serde_json::from_str::<Json>(line).unwrap();
    v
}

fn result_of(line: &str) -> Value {
    let v = parse(line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "request failed: {line}");
    v.get("result").cloned().unwrap()
}

/// The v2 spelling of a v1 response line: the stamp between `id` and
/// `ok`, everything else byte-identical.
fn stamped(v1_line: &str) -> String {
    assert!(v1_line.contains("\"ok\":"), "not a response line: {v1_line}");
    v1_line.replacen("\"ok\":", "\"v\":2,\"ok\":", 1)
}

#[test]
fn a_v2_stamp_changes_a_response_by_the_stamp_and_nothing_else() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    result_of(&client.round_trip(&load_line("reactor", &reactor_case())).unwrap());

    // Read-only requests answer identical bytes however often they are
    // repeated, so the three spellings can be compared byte-for-byte.
    let requests = [
        r#""id":7,"op":"eval","name":"reactor""#,
        r#""id":8,"op":"mc","name":"reactor","samples":20000,"seed":11,"threads":2"#,
        r#""id":9,"op":"bands","name":"reactor","pfd_bound":1e-3,"mode":"low_demand""#,
        r#""id":10,"op":"rank","name":"reactor""#,
        r#""id":11,"op":"eval","name":"no-such-case""#,
    ];
    for body in requests {
        let v1 = client.round_trip(&format!("{{{body}}}")).unwrap();
        let v1_explicit = client.round_trip(&format!("{{\"v\":1,{body}}}")).unwrap();
        let v2 = client.round_trip(&format!("{{\"v\":2,{body}}}")).unwrap();
        assert_eq!(v1_explicit, v1, "explicit v1 must equal the unstamped spelling");
        assert_eq!(v2, stamped(&v1), "v2 must differ from v1 by the stamp alone");
    }
    server.shutdown();
}

#[test]
fn v1_clients_see_no_trace_of_the_new_generation() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // `batch` does not exist in the v1 grammar: same `unknown_op` as
    // any other unknown operation, and no version stamp in the answer.
    let line = client.round_trip(r#"{"id":3,"op":"batch","items":[{"op":"stats"}]}"#).unwrap();
    assert!(!line.contains("\"v\":"), "v1 responses must not carry a stamp: {line}");
    let v = parse(&line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("unknown_op"),
    );

    // A version this server does not speak is refused with the
    // dedicated code, still echoing the id.
    let line = client.round_trip(r#"{"id":4,"v":3,"op":"stats"}"#).unwrap();
    let v = parse(&line);
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(4));
    assert_eq!(
        v.get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
        Some("unsupported_version"),
    );
    server.shutdown();
}

#[test]
fn batch_items_answer_exactly_what_individual_dispatch_answers() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    result_of(&client.round_trip(&load_line("reactor", &reactor_case())).unwrap());

    let eval = result_of(&client.round_trip(r#"{"op":"eval","name":"reactor"}"#).unwrap());
    let mc = result_of(
        &client
            .round_trip(r#"{"op":"mc","name":"reactor","samples":8000,"seed":5,"threads":1}"#)
            .unwrap(),
    );

    let line = client
        .round_trip(concat!(
            r#"{"id":42,"v":2,"op":"batch","items":["#,
            r#"{"op":"eval","name":"reactor"},"#,
            r#"{"op":"mc","name":"reactor","samples":8000,"seed":5,"threads":1},"#,
            r#"{"op":"frobnicate"},"#,
            r#"{"op":"eval","name":"no-such-case"}]}"#,
        ))
        .unwrap();
    let v = parse(&line);
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(42));
    assert_eq!(v.get("v").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
    let items = v.get("result").and_then(|r| r.get("items")).and_then(Value::as_array).unwrap();
    assert_eq!(items.len(), 4);

    assert_eq!(items[0].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(items[0].get("result"), Some(&eval), "batched eval must match the plain op");
    assert_eq!(items[1].get("result"), Some(&mc), "batched mc must match the plain op");
    let code = |i: usize| {
        items[i].get("error").and_then(|e| e.get("code")).and_then(Value::as_str).map(String::from)
    };
    assert_eq!(code(2).as_deref(), Some("unknown_op"), "a broken item answers in place");
    assert_eq!(code(3).as_deref(), Some("unknown_case"), "a failed item spares its siblings");
    server.shutdown();
}

#[test]
fn eval_many_answers_positionally_and_bit_identically_to_single_evals() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    result_of(&client.round_trip(&load_line("reactor", &reactor_case())).unwrap());

    let single = result_of(&client.round_trip(r#"{"op":"eval","name":"reactor"}"#).unwrap());
    let results = client.eval_many(&["reactor", "no-such-case", "reactor"]).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap(), &single, "slot 0 must match the plain op");
    assert_eq!(results[2].as_ref().unwrap(), &single, "duplicates coalesce to the same answer");
    match &results[1] {
        Err(depcase::Error::Service { code, .. }) => assert_eq!(code, "unknown_case"),
        other => panic!("slot 1 must fail alone, got {other:?}"),
    }

    // The retrying client settles final per-item errors on the first
    // attempt — an unknown case is not transient and must not burn the
    // retry budget.
    let mut retrying =
        RetryingClient::connect(server.local_addr(), RetryPolicy::default()).unwrap();
    let results = retrying.eval_many(&["no-such-case", "reactor"]).unwrap();
    assert!(results[0].is_err());
    assert_eq!(results[1].as_ref().unwrap(), &single);
    assert_eq!(retrying.retries(), 0, "final errors must not trigger retries");
    server.shutdown();
}

#[test]
fn eval_many_spans_multiple_batches_when_names_exceed_the_item_cap() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    result_of(&client.round_trip(&load_line("reactor", &reactor_case())).unwrap());

    let single = result_of(&client.round_trip(r#"{"op":"eval","name":"reactor"}"#).unwrap());
    let names: Vec<&str> = std::iter::repeat_n("reactor", 150).collect();
    let results = client.eval_many(&names).unwrap();
    assert_eq!(results.len(), 150);
    for r in &results {
        assert_eq!(r.as_ref().unwrap(), &single, "every chunk must answer the same bytes");
    }
    server.shutdown();
}
