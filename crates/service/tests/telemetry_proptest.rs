//! Property and end-to-end tests for the tracing subsystem:
//!
//! - **Ring wraparound**: after any interleaving of pushes across any
//!   capacity, a snapshot holds exactly the newest `min(cap, n)`
//!   traces and every one of them is well-formed.
//! - **Arbitrary builder programs**: any sequence of
//!   `begin`/`end`/`event`/`count` calls — balanced or not — finishes
//!   into a well-formed tree with no torn (still-open) spans.
//! - **Concurrent collection**: writers publish while readers
//!   snapshot; no snapshot ever contains a torn or half-built tree.
//! - **Reconciliation over the wire**: through a real TCP server, the
//!   per-request root-phase sums reported by the `trace` op agree with
//!   the end-to-end totals within ±5%, and a `--trace-dir`-style
//!   Chrome export parses as JSON and names every root phase.

use depcase::prelude::*;
use depcase_service::trace::{TraceBuilder, TraceRing, OPEN_NS};
use depcase_service::{Client, Engine, Server};
use proptest::prelude::*;
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Phase names a generated builder program draws from (spans need
/// `&'static str` names, as in production).
const NAMES: [&str; 6] =
    ["queue_wait", "parse", "engine", "plan_compile", "mc_sample_loop", "reply_flush"];

/// Decodes one generated `(opcode, name pick, value)` triple into a
/// builder call: 0 opens a span, 1 closes the innermost, 2 records a
/// synthetic completed phase, 3 records a count.
fn apply_step(tb: &mut TraceBuilder, step: (u8, usize, u64)) {
    let (op, name, value) = step;
    match op {
        0 => tb.begin(NAMES[name]),
        1 => tb.end(),
        2 => tb.event_ns(NAMES[name], value),
        _ => tb.count(NAMES[name], value),
    }
}

fn run_program(id: u64, steps: &[(u8, usize, u64)]) -> depcase_service::Trace {
    let mut tb = TraceBuilder::new(id, Instant::now());
    tb.set_op("eval");
    for step in steps {
        apply_step(&mut tb, *step);
    }
    tb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any builder program — unbalanced begins, oversized synthetic
    /// events, whatever — freezes into a well-formed tree: parents
    /// precede children, children fit inside parents, nothing open,
    /// nothing outliving the total.
    #[test]
    fn any_builder_program_finishes_well_formed(
        steps in proptest::collection::vec((0u8..4, 0usize..NAMES.len(), 0u64..5_000_000), 0..64),
    ) {
        let trace = run_program(1, &steps);
        prop_assert!(trace.is_well_formed(), "{trace:?}");
        prop_assert!(trace.spans.iter().all(|s| s.dur_ns != OPEN_NS));
    }

    /// Wraparound keeps exactly the newest `min(cap, n)` traces — no
    /// duplicates, no resurrections of overwritten entries.
    #[test]
    fn ring_wraparound_retains_the_newest_traces(
        cap in 1usize..16,
        n in 0u64..64,
    ) {
        let ring = TraceRing::new(cap);
        for id in 0..n {
            let mut tb = TraceBuilder::new(id, Instant::now());
            tb.begin("engine");
            tb.end();
            ring.push(Arc::new(tb.finish()));
        }
        let mut ids: Vec<u64> = ring.snapshot().iter().map(|t| t.id).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (n.saturating_sub(cap as u64)..n).collect();
        prop_assert_eq!(ids, expected);
        prop_assert!(ring.snapshot().iter().all(|t| t.is_well_formed()));
    }
}

/// Writers hammer one shared ring while readers snapshot it the whole
/// time: every observed trace must be complete and well-formed (a
/// trace is immutable before it is published, so a torn tree in any
/// snapshot would be a real publication bug).
#[test]
fn concurrent_snapshots_never_observe_torn_traces() {
    let ring = Arc::new(TraceRing::new(8));
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    let mut tb = TraceBuilder::new(w * 1_000 + i, Instant::now());
                    tb.set_op("eval");
                    tb.begin("engine");
                    tb.event_ns("plan_compile", 250);
                    tb.begin("mc_sample_loop");
                    tb.count("mc_samples", i);
                    tb.end();
                    tb.end();
                    tb.set_ok(true);
                    ring.push(Arc::new(tb.finish()));
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                let mut check = |traces: Vec<Arc<depcase_service::Trace>>| {
                    for trace in traces {
                        assert!(trace.is_well_formed(), "torn trace in snapshot: {trace:?}");
                        assert!(trace.spans.iter().all(|s| s.dur_ns != OPEN_NS));
                        assert_eq!(trace.spans.len(), 3);
                        seen += 1;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    check(ring.snapshot());
                }
                // One pass after the writers are done, so even a
                // starved reader (1-CPU runners) sees the full ring.
                check(ring.snapshot());
                seen
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0, "reader never saw a published trace");
    }
}

fn reactor_case() -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&depcase_service::protocol::Json(body)).unwrap()
}

/// Through a real TCP server: run a mixed workload, fetch the span
/// trees over the wire, and check the root-phase decomposition of each
/// trace reconciles with its end-to-end total within ±5% (the phases
/// are contiguous by construction, so the slack only absorbs the
/// clock reads between them). Also streams Chrome trace-event JSON to
/// a directory and checks it parses and names every root phase.
#[test]
fn wire_traces_reconcile_and_chrome_export_parses() {
    let engine = Arc::new(Engine::new(16));
    let dir = std::env::temp_dir().join(format!("depcase-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    engine.telemetry().set_trace_dir(&dir).unwrap();

    let server = Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.round_trip(&load_line("reactor", &reactor_case())).unwrap();
    for _ in 0..4 {
        client.round_trip(r#"{"op":"eval","name":"reactor"}"#).unwrap();
        client
            .round_trip(r#"{"op":"mc","name":"reactor","samples":800000,"seed":7,"threads":2}"#)
            .unwrap();
    }

    let result = client.trace(32).unwrap();
    let traces = result.get("traces").and_then(Value::as_array).unwrap();
    assert!(traces.len() >= 8, "expected the workload's traces, got {}", traces.len());
    let mut checked = 0;
    for trace in traces {
        let total_us = trace.get("total_us").and_then(Value::as_f64).unwrap();
        let spans = trace.get("spans").and_then(Value::as_array).unwrap();
        let root_sum_us: f64 = spans
            .iter()
            .filter(|s| matches!(s.get("parent"), Some(Value::Null)))
            .map(|s| s.get("dur_us").and_then(Value::as_f64).unwrap())
            .sum();
        // Only requests long enough for the ±5% band to dominate clock
        // granularity; the mc requests guarantee several qualify.
        if total_us >= 500.0 {
            let drift = (root_sum_us - total_us).abs() / total_us;
            assert!(
                drift <= 0.05,
                "root phases sum to {root_sum_us} µs vs total {total_us} µs (drift {drift:.4})"
            );
            checked += 1;
        }
    }
    assert!(checked >= 4, "too few traces were long enough to check ({checked})");

    // The decomposition block reports per-op phase aggregates, keyed
    // by wire op, with the reconciliation sum alongside the total.
    let decomp = result.get("decomposition").unwrap();
    let mc = decomp.get("mc").expect("decomposition must cover the mc op");
    assert!(mc.get("total").and_then(|t| t.get("p99_us")).and_then(Value::as_f64).is_some());
    assert!(mc.get("root_phase_sum_us").and_then(Value::as_f64).is_some());
    assert!(
        mc.get("phases").and_then(|p| p.get("engine")).is_some(),
        "mc decomposition must break out the engine phase"
    );

    drop(client);
    server.shutdown();

    // The Chrome export must be valid JSON and name every root phase.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no Chrome trace files written to {}", dir.display());
    let text = std::fs::read_to_string(&files[0]).unwrap();
    let depcase_service::protocol::Json(doc) =
        serde_json::from_str(&text).expect("Chrome trace file must be valid JSON");
    let events = doc.as_array().expect("Chrome trace file must be a JSON array");
    assert!(!events.is_empty());
    for phase in ["queue_wait", "parse", "engine", "reply_flush"] {
        assert!(
            events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some(phase)),
            "Chrome export never names phase {phase}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
