//! Chaos tests: deterministic fault injection against a live server.
//!
//! Every test here runs with a fixed [`FaultPlan`] seed, so the faults
//! it provokes are reproducible — the assertions are exact invariants
//! (ids echoed, counters consistent, answers bit-identical to the
//! library), not "usually survives". The injected panics unwind
//! through real worker threads, so `cargo test` output for this file
//! legitimately contains panic backtraces from *passing* tests.

use depcase::prelude::*;
use depcase_service::protocol::Json;
use depcase_service::{
    Client, Engine, ErrorCode, FaultPlan, RetryPolicy, RetryingClient, Server, ServerConfig,
};
use serde::{Serialize, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn reactor_case() -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    let a = case.add_assumption("A1", "environment stable", 0.99).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case.support(g, a).unwrap();
    case
}

fn interlock_case() -> Case {
    let mut case = Case::new("interlock");
    let g = case.add_goal("G1", "pfd < 1e-2").unwrap();
    let s = case.add_strategy("S1", "conjunctive decomposition", Combination::AllOf).unwrap();
    let e1 = case.add_evidence("E1", "proof of absence of runtime errors", 0.97).unwrap();
    let e2 = case.add_evidence("E2", "field history", 0.88).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

fn parse_any(line: &str) -> Value {
    let Json(v) = serde_json::from_str::<Json>(line).unwrap();
    v
}

fn parse_ok(line: &str) -> Value {
    let v = parse_any(line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "request failed: {line}");
    v.get("result").cloned().unwrap()
}

fn error_code(line: &str) -> String {
    let v = parse_any(line);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "expected an error: {line}");
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("error without code: {line}"))
        .to_string()
}

fn faulty_config(workers: usize, spec: &str) -> ServerConfig {
    ServerConfig {
        workers,
        faults: Some(Arc::new(FaultPlan::parse(spec).unwrap())),
        ..ServerConfig::default()
    }
}

/// Polls `predicate` for up to two seconds; panics with `what` on
/// timeout. Counter updates race the response that provoked them
/// (worker retirement happens after the reply is sent), so tests wait
/// instead of asserting instantly.
fn eventually(what: &str, predicate: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if predicate() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Acceptance: a worker panic mid-request answers `internal_error`
/// echoing the original id, the worker is respawned (and counted), and
/// the same connection keeps working afterwards.
#[test]
fn injected_panic_answers_internal_error_and_the_connection_survives() {
    // panic=1.0,panic_cap=1: exactly the first request panics.
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        faulty_config(2, "seed=1,panic=1.0,panic_cap=1"),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let crashed = client.round_trip(r#"{"id":"victim-7","op":"stats"}"#).unwrap();
    let v = parse_any(&crashed);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(
        v.get("id").and_then(Value::as_str),
        Some("victim-7"),
        "internal_error must echo the id of the request that panicked: {crashed}"
    );
    assert_eq!(error_code(&crashed), "internal_error");

    // Same connection, next request: a healthy worker answers, and the
    // answer is bit-identical to the library.
    parse_ok(&client.round_trip(&load_line("r", &reactor_case())).unwrap());
    let result = parse_ok(&client.round_trip(r#"{"op":"eval","name":"r"}"#).unwrap());
    let direct = reactor_case().propagate().unwrap().top().unwrap().independent;
    assert_eq!(
        result.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits(),
        direct.to_bits()
    );

    eventually("panic + respawn counters", || {
        let r = engine.robustness();
        r.panics == 1 && r.respawns == 1
    });

    // The stats op surfaces the same robustness counters on the wire.
    let stats = parse_ok(&client.round_trip(r#"{"op":"stats"}"#).unwrap());
    let robustness = stats.get("robustness").expect("stats must carry a robustness block");
    assert_eq!(robustness.get("panics").and_then(Value::as_u64), Some(1));
    assert_eq!(robustness.get("respawns").and_then(Value::as_u64), Some(1));

    server.shutdown();
}

/// Acceptance: with the queue full and every worker stalled, the next
/// request is shed with a fast `overloaded` + `retry_after_ms` rather
/// than queued without bound — and a retrying client eventually gets
/// through.
#[test]
fn overload_sheds_fast_and_a_retrying_client_eventually_succeeds() {
    // One worker, queue of two, every request delayed 300 ms: three
    // in-flight requests saturate the pool and the queue.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        retry_after_ms: 25,
        faults: Some(Arc::new(FaultPlan::parse("seed=3,delay=1.0,delay_ms=300").unwrap())),
        ..ServerConfig::default()
    };
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).unwrap();
    let addr = server.local_addr();

    // Stall the worker and fill the queue from separate connections
    // (responses are per-connection FIFO, so a shared connection would
    // delay the rejection we want to time). The first staller goes in
    // alone so the worker claims it before the queue fillers arrive —
    // otherwise one of them could race into the rejection slot.
    let staller = |i: usize| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.round_trip(&format!(r#"{{"id":{i},"op":"stats"}}"#)).unwrap()
        })
    };
    let mut stallers = vec![staller(0)];
    std::thread::sleep(Duration::from_millis(100));
    stallers.push(staller(1));
    stallers.push(staller(2));
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let mut shed = Client::connect(addr).unwrap();
    let rejection = shed.round_trip(r#"{"id":"q+1","op":"stats"}"#).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(error_code(&rejection), "overloaded");
    let v = parse_any(&rejection);
    assert_eq!(v.get("id").and_then(Value::as_str), Some("q+1"), "{rejection}");
    assert_eq!(
        v.get("error").and_then(|e| e.get("retry_after_ms")).and_then(Value::as_u64),
        Some(25),
        "{rejection}"
    );
    assert!(
        elapsed < Duration::from_millis(250),
        "overload rejection must be fast, took {elapsed:?}"
    );

    // A retrying client pointed at the same overloaded server backs
    // off, honors retry_after_ms, and eventually succeeds.
    let policy = RetryPolicy { max_attempts: 40, base_ms: 10, cap_ms: 200, seed: 7 };
    let mut retrying = RetryingClient::connect(addr, policy).unwrap();
    let response = retrying.round_trip(r#"{"op":"stats"}"#).unwrap();
    parse_ok(&response);
    assert!(retrying.retries() > 0, "the first attempts must have been shed");
    assert!(retrying.retried_codes().iter().any(|c| c == "overloaded"));

    for staller in stallers {
        parse_ok(&staller.join().unwrap());
    }
    assert!(engine.robustness().overloaded >= 1);
    server.shutdown();
}

/// Slow-client defense: an oversized request line answers
/// `request_too_large`, the connection survives, and shed lines never
/// touch the latency histograms.
#[test]
fn oversized_lines_are_rejected_without_killing_the_connection() {
    let config = ServerConfig { workers: 2, max_line_bytes: 1024, ..ServerConfig::default() };
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    parse_ok(&client.round_trip(r#"{"op":"stats"}"#).unwrap());
    let handled_before =
        histogram_total(&parse_ok(&client.round_trip(r#"{"op":"stats"}"#).unwrap()));

    let huge = format!(r#"{{"op":"stats","pad":"{}"}}"#, "x".repeat(4096));
    let rejection = client.round_trip(&huge).unwrap();
    assert_eq!(error_code(&rejection), "request_too_large");

    // Same connection still answers, and the rejected line left no
    // trace in the histograms (it was never a request).
    let stats = parse_ok(&client.round_trip(r#"{"op":"stats"}"#).unwrap());
    let handled_after = histogram_total(&stats);
    assert_eq!(
        handled_after,
        handled_before + 1,
        "only the follow-up stats call may appear in the histograms"
    );
    assert_eq!(
        stats.get("robustness").and_then(|r| r.get("request_too_large")).and_then(Value::as_u64),
        Some(1)
    );
    server.shutdown();
}

/// Sums the per-op histogram request counts out of a stats result.
fn histogram_total(stats: &Value) -> u64 {
    let Some(Value::Object(ops)) = stats.get("ops").cloned() else { return 0 };
    ops.iter().filter_map(|(_, op)| op.get("requests").and_then(Value::as_u64)).sum()
}

/// Deadlines: a request whose budget expires answers
/// `deadline_exceeded` and bumps the counter; a roomy budget on the
/// same connection succeeds. The config-level default applies to
/// requests that carry no `deadline_ms` of their own.
#[test]
fn deadlines_expire_per_request_and_by_config_default() {
    let config = ServerConfig {
        workers: 2,
        default_deadline_ms: Some(10),
        faults: Some(Arc::new(FaultPlan::parse("seed=5,delay=1.0,delay_ms=60").unwrap())),
        ..ServerConfig::default()
    };
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Inherits the 10 ms default; the injected 60 ms delay devours it.
    let expired = client.round_trip(r#"{"id":1,"op":"stats"}"#).unwrap();
    assert_eq!(error_code(&expired), "deadline_exceeded");

    // An explicit roomy deadline overrides the default and survives
    // the same injected delay.
    let roomy = client.round_trip(r#"{"id":2,"op":"stats","deadline_ms":5000}"#).unwrap();
    parse_ok(&roomy);

    // An explicit tight deadline expires even though the default would
    // not have (per-request beats config).
    let tight = client.round_trip(r#"{"id":3,"op":"stats","deadline_ms":1}"#).unwrap();
    assert_eq!(error_code(&tight), "deadline_exceeded");

    eventually("deadline counter", || engine.robustness().deadline_exceeded == 2);
    server.shutdown();
}

/// Deadlines interrupt Monte-Carlo sampling between chunks: an `mc`
/// whose sample budget would run for minutes answers
/// `deadline_exceeded` within one chunk of its budget instead of
/// pinning a worker for the whole run — and a same-parameter run with
/// a roomy budget still answers bit-identically to the library.
#[test]
fn mc_deadline_interrupts_sampling_within_one_chunk() {
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    parse_ok(&client.round_trip(&load_line("reactor", &reactor_case())).unwrap());

    // A sample count that would take far longer than the 50 ms budget.
    let started = Instant::now();
    let expired = client
        .round_trip(
            r#"{"id":1,"op":"mc","name":"reactor","samples":500000000,"seed":3,"threads":2,"deadline_ms":50}"#,
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert_eq!(error_code(&expired), "deadline_exceeded");
    assert!(
        elapsed < Duration::from_secs(30),
        "mc must stop at a chunk boundary, not run its full budget; took {elapsed:?}"
    );
    eventually("deadline counter", || engine.robustness().deadline_exceeded == 1);

    // The worker that refused the long run is free for real work, and a
    // deadline that does not expire never changes the bits.
    let direct = MonteCarlo::new(2_000)
        .seed(11)
        .threads(2)
        .run(&reactor_case())
        .unwrap()
        .estimate(reactor_case().node_by_name("G1").unwrap())
        .unwrap();
    let ok = parse_ok(
        &client
            .round_trip(
                r#"{"id":2,"op":"mc","name":"reactor","samples":2000,"seed":11,"threads":2,"deadline_ms":60000}"#,
            )
            .unwrap(),
    );
    let estimate = ok
        .get("estimates")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .find(|v| v.get("name").and_then(Value::as_str) == Some("G1"))
        .and_then(|v| v.get("estimate"))
        .and_then(Value::as_f64)
        .unwrap();
    assert_eq!(estimate.to_bits(), direct.to_bits());
    server.shutdown();
}

/// Backpressure on connections: over the cap, a connection gets one
/// `overloaded` line and is closed; once an existing connection goes
/// away, new ones are admitted again.
#[test]
fn connection_cap_sheds_excess_connections_then_recovers() {
    let config = ServerConfig { workers: 1, max_connections: 2, ..ServerConfig::default() };
    let engine = Arc::new(Engine::new(8));
    let server = Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).unwrap();
    let addr = server.local_addr();

    let mut first = Client::connect(addr).unwrap();
    let mut second = Client::connect(addr).unwrap();
    parse_ok(&first.round_trip(r#"{"op":"stats"}"#).unwrap());
    parse_ok(&second.round_trip(r#"{"op":"stats"}"#).unwrap());

    // The third connection is told to back off; its next read sees the
    // server-side close (the shed line has no id to echo).
    let mut third = Client::connect(addr).unwrap();
    let shed = third.round_trip(r#"{"op":"stats"}"#).unwrap();
    assert_eq!(error_code(&shed), "overloaded");
    assert!(third.round_trip(r#"{"op":"stats"}"#).is_err(), "shed connection must be closed");

    drop(first);
    eventually("freed connection slot", || {
        Client::connect(addr).is_ok_and(|mut c| {
            c.round_trip(r#"{"op":"stats"}"#)
                .is_ok_and(|line| parse_any(&line).get("ok").and_then(Value::as_bool) == Some(true))
        })
    });
    server.shutdown();
}

/// The headline chaos run: four retrying clients hammer a server that
/// randomly panics workers, delays requests, and drops connections at
/// 5% each from a fixed seed. Invariants:
///
/// - nothing wedges (every client thread finishes and drain is clean),
/// - every surviving answer is bit-identical to the direct library call,
/// - every error code seen is from the documented set,
/// - the robustness counters agree with what the plan actually injected.
#[test]
fn chaos_hammer_survives_with_bit_identical_answers_and_consistent_counters() {
    let plan =
        Arc::new(FaultPlan::parse("seed=42,panic=0.05,delay=0.05,delay_ms=5,drop=0.05").unwrap());
    let config = ServerConfig {
        workers: 4,
        queue_capacity: 64,
        faults: Some(Arc::clone(&plan)),
        ..ServerConfig::default()
    };
    let engine = Arc::new(Engine::new(16));
    let server = Server::start(Arc::clone(&engine), ("127.0.0.1", 0), config).unwrap();
    let addr = server.local_addr();

    let policy = RetryPolicy { max_attempts: 20, base_ms: 2, cap_ms: 50, seed: 1 };
    let mut setup = RetryingClient::connect(addr, policy).unwrap();
    parse_ok(&setup.round_trip(&load_line("reactor", &reactor_case())).unwrap());
    parse_ok(&setup.round_trip(&load_line("interlock", &interlock_case())).unwrap());

    // Ground truth, computed in-process before the storm.
    let reactor = reactor_case();
    let reactor_root = reactor.propagate().unwrap().top().unwrap().independent;
    let interlock = interlock_case();
    let interlock_root = interlock.propagate().unwrap().top().unwrap().independent;
    let reactor_mc = MonteCarlo::new(2_000)
        .seed(11)
        .threads(2)
        .run(&reactor)
        .unwrap()
        .estimate(reactor.node_by_name("G1").unwrap())
        .unwrap();

    let mut handles = Vec::new();
    for client_idx in 0..4u64 {
        let handle = std::thread::spawn(move || {
            let policy =
                RetryPolicy { max_attempts: 20, base_ms: 2, cap_ms: 50, seed: 100 + client_idx };
            let mut client = RetryingClient::connect(addr, policy).unwrap();
            for round in 0..30 {
                let line = match round % 3 {
                    0 => r#"{"op":"eval","name":"reactor"}"#,
                    1 => r#"{"op":"eval","name":"interlock"}"#,
                    _ => r#"{"op":"mc","name":"reactor","samples":2000,"seed":11,"threads":2}"#,
                };
                let response = client
                    .round_trip(line)
                    .unwrap_or_else(|e| panic!("client {client_idx} round {round}: {e}"));
                // Every answer that survived the chaos must be
                // bit-identical to the direct library call.
                let result = parse_ok(&response);
                let got = match round % 3 {
                    0 | 1 => result.get("root_confidence").and_then(Value::as_f64).unwrap(),
                    _ => result
                        .get("estimates")
                        .and_then(Value::as_array)
                        .unwrap()
                        .iter()
                        .find(|v| v.get("name").and_then(Value::as_str) == Some("G1"))
                        .and_then(|v| v.get("estimate"))
                        .and_then(Value::as_f64)
                        .unwrap(),
                };
                let expected = match round % 3 {
                    0 => reactor_root,
                    1 => interlock_root,
                    _ => reactor_mc,
                };
                assert_eq!(
                    got.to_bits(),
                    expected.to_bits(),
                    "client {client_idx} round {round} answer drifted under chaos"
                );
            }
            // Return what this client retried on, plus its last state,
            // for the documented-code assertion below.
            client.retried_codes().to_vec()
        });
        handles.push(handle);
    }

    let mut retried: Vec<String> = Vec::new();
    for handle in handles {
        retried.extend(handle.join().expect("no client thread may wedge or fail"));
    }

    // Retries only ever happened for documented transient wire codes or
    // the client's own transport pseudo-codes.
    let documented: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
    for code in &retried {
        assert!(
            documented.contains(&code.as_str()) || code == "io" || code == "connection_closed",
            "undocumented error code seen under chaos: {code}"
        );
    }

    // Counter consistency: every injected panic was caught (none
    // escaped to kill the process) and every panicked worker was
    // replaced while the server was up.
    let injected = plan.injected();
    assert!(injected.panics >= 1, "seed 42 at 5% must inject at least one panic: {injected:?}");
    eventually("robustness counters to settle", || {
        let r = engine.robustness();
        r.panics == injected.panics && r.respawns == injected.panics
    });

    // Spot-check bit-identical answers after the storm on a clean
    // client (retrying, in case the tail of the fault stream fires).
    let mut check = RetryingClient::connect(addr, policy).unwrap();
    let result = parse_ok(&check.round_trip(r#"{"op":"eval","name":"reactor"}"#).unwrap());
    assert_eq!(
        result.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits(),
        reactor_root.to_bits()
    );
    let result = parse_ok(&check.round_trip(r#"{"op":"eval","name":"interlock"}"#).unwrap());
    assert_eq!(
        result.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits(),
        interlock_root.to_bits()
    );
    let result = parse_ok(
        &check
            .round_trip(r#"{"op":"mc","name":"reactor","samples":2000,"seed":11,"threads":2}"#)
            .unwrap(),
    );
    let estimate = result
        .get("estimates")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .find(|v| v.get("name").and_then(Value::as_str) == Some("G1"))
        .and_then(|v| v.get("estimate"))
        .and_then(Value::as_f64)
        .unwrap();
    assert_eq!(estimate.to_bits(), reactor_mc.to_bits());

    // Clean drain: shutdown joins every thread without wedging.
    server.shutdown();
}
