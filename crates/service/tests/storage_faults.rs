//! Fault-injection integration tests for the self-healing storage
//! stack, over the deterministic [`FaultyIo`] decorator and the
//! in-memory [`SimIo`] disk:
//!
//! - **Disk full** (`ENOSPC`): the server stays up, refuses mutations
//!   with `read_only` + `retry_after_ms`, keeps serving evals
//!   bit-identically, and resumes mutations — continuing the version
//!   sequence — once space comes back. Pinned on both IO models.
//! - **Retry discipline**: a [`RetryingClient`] rides out the window
//!   without the caller seeing the outage.
//! - **Bit-rot**: scrub detects 100% of injected flips, repairs every
//!   object with a reachable in-memory copy, quarantines the rest, and
//!   never serves a corrupt object silently (`data_corrupted`).
//! - **WAL healing**: an object quarantined at restore is rewritten
//!   from a replayed WAL record (`repaired_from_wal`).

use depcase::prelude::*;
use depcase_service::protocol::{Json, Request};
use depcase_service::{
    Client, DurabilityConfig, EditAction, Engine, EvalAt, FaultyIo, FsyncPolicy, IoModel,
    RetryPolicy, RetryingClient, Server, ServerConfig, SimIo, StorageIo, WireError,
};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn demo_case() -> Case {
    let mut case = Case::new("protection system");
    let g = case.add_goal("G", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn config(snapshot_every: u64) -> DurabilityConfig {
    DurabilityConfig { data_dir: PathBuf::from("/sim"), fsync: FsyncPolicy::Always, snapshot_every }
}

fn load(engine: &Engine, name: &str, case: &Case) -> Value {
    engine
        .handle(&Request::Load { name: name.to_string(), case: Serialize::to_value(case) })
        .unwrap()
}

fn edit(
    engine: &Engine,
    name: &str,
    node: &str,
    confidence: f64,
) -> std::result::Result<Value, WireError> {
    engine.handle(&Request::Edit {
        name: name.to_string(),
        action: EditAction::SetConfidence { node: node.to_string(), confidence },
    })
}

fn eval_at(engine: &Engine, name: &str, version: u64) -> std::result::Result<Value, WireError> {
    engine.handle(&Request::Eval { name: name.to_string(), at: Some(EvalAt::Version(version)) })
}

fn root_bits(value: &Value) -> u64 {
    value.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits()
}

fn object_path(hash_hex: &str) -> PathBuf {
    Path::new("/sim/objects").join(format!("{hash_hex}.json"))
}

/// Object files currently in the store, via the same [`StorageIo`]
/// surface the engine uses.
fn object_files(sim: &SimIo) -> Vec<PathBuf> {
    let mut files = sim.list_dir(Path::new("/sim/objects")).unwrap();
    files.retain(|p| p.extension().is_some_and(|e| e == "json"));
    files.sort();
    files
}

fn parse(line: &str) -> Value {
    let Json(value) = serde_json::from_str::<Json>(line).unwrap();
    value
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), Serialize::to_value(case)),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

fn edit_line(name: &str, node: &str, confidence: f64) -> String {
    format!(
        r#"{{"op":"edit","name":"{name}","action":"set_confidence","node":"{node}","confidence":{confidence}}}"#
    )
}

/// One acked wire mutation: what must survive the read-only window.
struct Acked {
    version: u64,
    hash: String,
    root_bits: Option<u64>,
}

fn acked_from(result: &Value) -> Acked {
    Acked {
        version: result.get("version").and_then(Value::as_u64).unwrap(),
        hash: result.get("hash").and_then(Value::as_str).unwrap().to_string(),
        root_bits: result.get("root_confidence").and_then(Value::as_f64).map(f64::to_bits),
    }
}

/// Disk full mid-storm, on both IO models: mutations answer `read_only`
/// with a retry hint, evals keep serving bit-identically, space restore
/// resumes the version sequence, and a post-mortem reopen of the disk
/// holds exactly the acked mutations.
#[test]
fn disk_full_degrades_to_read_only_and_recovers_on_both_io_models() {
    for io_model in [IoModel::Epoll, IoModel::Threads] {
        let sim = SimIo::new();
        let faulty = Arc::new(FaultyIo::parse(Arc::new(sim.clone()), "seed=1").unwrap());
        let engine = Arc::new(
            Engine::open_with_io(32, &config(1000), Arc::clone(&faulty) as Arc<dyn StorageIo>)
                .unwrap(),
        );
        let server = Server::start(
            Arc::clone(&engine),
            ("127.0.0.1", 0),
            ServerConfig { workers: 2, io: io_model, ..ServerConfig::default() },
        )
        .unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let mut acked =
            vec![acked_from(&client.round_trip_value(&load_line("alpha", &demo_case())).unwrap())];
        for i in 0..3u32 {
            let c = 0.55 + 0.1 * f64::from(i);
            acked.push(acked_from(&client.round_trip_value(&edit_line("alpha", "E1", c)).unwrap()));
        }
        let eval_before = client.round_trip_value(r#"{"op":"eval","name":"alpha"}"#).unwrap();

        // The disk fills. Every mutation now answers `read_only` with a
        // retry hint; none may burn a version.
        faulty.exhaust_space();
        for _ in 0..2 {
            let refused = parse(&client.round_trip(&edit_line("alpha", "E2", 0.42)).unwrap());
            assert_eq!(refused.get("ok").and_then(Value::as_bool), Some(false), "{io_model:?}");
            let error = refused.get("error").unwrap();
            assert_eq!(error.get("code").and_then(Value::as_str), Some("read_only"));
            assert!(
                error.get("retry_after_ms").and_then(Value::as_u64).is_some(),
                "read_only must carry a retry hint ({io_model:?})"
            );
        }
        assert!(engine.read_only(), "engine must flag read-only ({io_model:?})");
        let health = engine.storage_health();
        assert!(health.read_only && health.read_only_entered >= 1 && health.append_failures >= 2);

        // Reads keep serving, bit-identical to before the outage.
        let eval_during = client.round_trip_value(r#"{"op":"eval","name":"alpha"}"#).unwrap();
        assert_eq!(root_bits(&eval_during), root_bits(&eval_before), "{io_model:?}");

        // Space comes back: mutations resume, continuing the version
        // sequence exactly where the last *acked* mutation left it.
        faulty.restore_space();
        let resumed = client.round_trip_value(&edit_line("alpha", "E1", 0.91)).unwrap();
        assert_eq!(
            resumed.get("version").and_then(Value::as_u64),
            Some(acked.last().unwrap().version + 1),
            "refused mutations must not burn versions ({io_model:?})"
        );
        acked.push(acked_from(&resumed));
        assert!(!engine.read_only(), "{io_model:?}");
        assert!(engine.storage_health().read_only_exited >= 1, "{io_model:?}");

        server.shutdown();
        drop(engine);

        // Post-mortem: a fresh engine on the surviving bytes holds the
        // acked mutations — and nothing else — bit-identically.
        let reopened =
            Engine::open_with_io(32, &config(1000), Arc::new(sim) as Arc<dyn StorageIo>).unwrap();
        for a in &acked {
            let eval = eval_at(&reopened, "alpha", a.version).unwrap();
            assert_eq!(eval.get("hash").and_then(Value::as_str), Some(a.hash.as_str()));
            if let Some(bits) = a.root_bits {
                assert_eq!(root_bits(&eval), bits, "v{} drifted ({io_model:?})", a.version);
            }
        }
        let history = reopened.handle(&Request::History { name: "alpha".to_string() }).unwrap();
        assert_eq!(
            history.get("current_version").and_then(Value::as_u64),
            Some(acked.last().unwrap().version),
            "the refused edits must leave no trace ({io_model:?})"
        );
    }
}

/// A [`RetryingClient`] rides out the read-only window: the caller sees
/// one successful mutation, with `read_only` in the retried-code log.
#[test]
fn a_retrying_client_rides_out_the_disk_full_window() {
    let sim = SimIo::new();
    let faulty = Arc::new(FaultyIo::parse(Arc::new(sim.clone()), "seed=2").unwrap());
    let engine = Arc::new(
        Engine::open_with_io(32, &config(1000), Arc::clone(&faulty) as Arc<dyn StorageIo>).unwrap(),
    );
    let server = Server::start(
        Arc::clone(&engine),
        ("127.0.0.1", 0),
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .unwrap();
    let mut plain = Client::connect(server.local_addr()).unwrap();
    plain.round_trip_value(&load_line("alpha", &demo_case())).unwrap();

    faulty.exhaust_space();
    let restorer = {
        let faulty = Arc::clone(&faulty);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            faulty.restore_space();
        })
    };

    let policy =
        RetryPolicy { max_attempts: 30, base_ms: 10, cap_ms: 50, ..RetryPolicy::default() };
    let mut retrying = RetryingClient::connect(server.local_addr(), policy).unwrap();
    let response = parse(&retrying.round_trip(&edit_line("alpha", "E1", 0.7)).unwrap());
    assert_eq!(response.get("ok").and_then(Value::as_bool), Some(true));
    assert!(
        retrying.retried_codes().iter().any(|c| c == "read_only"),
        "the window must have been visible as retried read_only codes, got {:?}",
        retrying.retried_codes()
    );
    restorer.join().unwrap();
    server.shutdown();
}

/// True while the stored bytes still honor the store's integrity
/// contract: they parse, and the parsed case hashes back to the
/// object's content address. The address covers evaluation-relevant
/// state (kinds, confidences, structure) — a flip that only rewords a
/// label *parses into the same case identity* and is inside the
/// contract, so rot below is driven until each object breaks it.
fn object_is_clean(sim: &SimIo, path: &Path, address: u64) -> bool {
    let Ok(bytes) = sim.read_file(path) else { return false };
    let Ok(text) = String::from_utf8(bytes) else { return false };
    let Ok(Json(doc)) = serde_json::from_str::<Json>(&text) else { return false };
    let Ok(case) = Case::from_value(&doc) else { return false };
    case.content_hash() == address
}

fn address_of(path: &Path) -> u64 {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap();
    depcase_service::protocol::parse_hash(stem).unwrap()
}

/// Scrub detects **every** rotted object and repairs **every** one,
/// because the live registry parks an intact copy of each; a second
/// scrub confirms the store is clean, and time-travel evals of the
/// repaired versions stay bit-identical.
#[test]
fn scrub_detects_and_repairs_every_rotted_object() {
    let sim = SimIo::new();
    let engine =
        Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>).unwrap();
    load(&engine, "alpha", &demo_case());
    for c in [0.60, 0.70, 0.80] {
        edit(&engine, "alpha", "E1", c).unwrap();
    }
    let files = object_files(&sim);
    assert_eq!(files.len(), 4, "snapshot_every=2 must have persisted all four versions");
    let bits_before: Vec<u64> =
        (1..=4).map(|v| root_bits(&eval_at(&engine, "alpha", v).unwrap())).collect();

    // Media decay: every read through the rotting IO flips one bit and
    // persists it, exactly what a slowly dying disk does. Decay
    // accumulates until every object violates its content address.
    let rotting = FaultyIo::parse(Arc::new(sim.clone()), "seed=9,bitrot=1").unwrap();
    for path in &files {
        while object_is_clean(&sim, path, address_of(path)) {
            rotting.read_file(path).unwrap();
        }
    }
    assert!(rotting.injected().bitrot as usize >= files.len());

    let report = engine.handle(&Request::Scrub).unwrap();
    assert_eq!(report.get("objects_checked").and_then(Value::as_u64), Some(4));
    assert_eq!(
        report.get("corrupt_detected").and_then(Value::as_u64),
        Some(4),
        "scrub must detect 100% of the injected bit-rot"
    );
    assert_eq!(report.get("repaired").and_then(Value::as_u64), Some(4));
    assert_eq!(report.get("quarantined").and_then(Value::as_u64), Some(0));

    let clean = engine.handle(&Request::Scrub).unwrap();
    assert_eq!(clean.get("corrupt_detected").and_then(Value::as_u64), Some(0));
    let health = engine.storage_health();
    assert_eq!(health.scrubs, 2);
    assert_eq!(health.repaired_from_memory, 4);

    for (i, bits) in bits_before.iter().enumerate() {
        let eval = eval_at(&engine, "alpha", i as u64 + 1).unwrap();
        assert_eq!(root_bits(&eval), *bits, "v{} drifted across rot + repair", i + 1);
    }
}

/// An object nothing in memory can rebuild is quarantined, not
/// repaired: the damaged bytes move to `quarantine/` for forensics and
/// leave the serving path.
#[test]
fn scrub_quarantines_objects_with_no_intact_copy() {
    let sim = SimIo::new();
    let engine =
        Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>).unwrap();
    load(&engine, "alpha", &demo_case());
    edit(&engine, "alpha", "E1", 0.6).unwrap();

    // A stray object under a valid content address, with garbage bytes
    // and no registry copy to repair from.
    let stray = object_path("deadbeefdeadbeef");
    sim.corrupt(&stray, b"not an object".to_vec());

    let report = engine.handle(&Request::Scrub).unwrap();
    assert_eq!(report.get("corrupt_detected").and_then(Value::as_u64), Some(1));
    assert_eq!(report.get("repaired").and_then(Value::as_u64), Some(0));
    assert_eq!(report.get("quarantined").and_then(Value::as_u64), Some(1));
    assert!(!sim.exists(&stray), "the damaged bytes must leave the objects dir");
    assert!(
        sim.exists(Path::new("/sim/quarantine/deadbeefdeadbeef.json")),
        "the damaged bytes must be kept for forensics"
    );
    assert_eq!(engine.storage_health().quarantined, 1);
}

/// Corruption found at restore: a damaged **historical** object answers
/// `data_corrupted` only for that version; a damaged **current** object
/// poisons the whole name (an older version is never silently served as
/// current) until a fresh load re-establishes it.
#[test]
fn restore_time_corruption_is_never_served_silently() {
    let sim = SimIo::new();
    let hashes: Vec<String> = {
        let engine =
            Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>)
                .unwrap();
        let v1 = load(&engine, "alpha", &demo_case());
        let v2 = edit(&engine, "alpha", "E1", 0.6).unwrap();
        // snapshot_every=2 fired exactly at v2: both objects are on
        // disk and the WAL is empty, so nothing replays over the damage.
        vec![
            v1.get("hash").and_then(Value::as_str).unwrap().to_string(),
            v2.get("hash").and_then(Value::as_str).unwrap().to_string(),
        ]
    };

    // Damage the historical object: only v1 is lost.
    let v1_path = object_path(&hashes[0]);
    let v1_bytes = sim.live_bytes(&v1_path).unwrap();
    let mut rotted = v1_bytes.clone();
    rotted[v1_bytes.len() / 2] ^= 0x01;
    sim.corrupt(&v1_path, rotted);
    {
        let engine =
            Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>)
                .unwrap();
        let lost = eval_at(&engine, "alpha", 1).unwrap_err();
        assert_eq!(lost.code.as_str(), "data_corrupted");
        assert!(eval_at(&engine, "alpha", 2).is_ok(), "the intact current version must serve");
        assert_eq!(engine.storage_health().quarantined, 1);
    }

    // Damage the *current* object on a fresh disk: the whole name
    // answers `data_corrupted` — serving v1 as current would silently
    // roll back acked state — until a fresh load lifts the quarantine.
    let sim = SimIo::new();
    {
        let engine =
            Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>)
                .unwrap();
        load(&engine, "alpha", &demo_case());
        edit(&engine, "alpha", "E1", 0.6).unwrap();
    }
    let v2_path = object_path(&hashes[1]);
    let v2_bytes = sim.live_bytes(&v2_path).unwrap();
    let mut rotted = v2_bytes.clone();
    rotted[v2_bytes.len() / 2] ^= 0x01;
    sim.corrupt(&v2_path, rotted);
    let engine =
        Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>).unwrap();
    for version in [1, 2] {
        let lost = eval_at(&engine, "alpha", version).unwrap_err();
        assert_eq!(lost.code.as_str(), "data_corrupted", "v{version} must not serve");
    }
    let current =
        engine.handle(&Request::Eval { name: "alpha".to_string(), at: None }).unwrap_err();
    assert_eq!(current.code.as_str(), "data_corrupted");

    // A fresh load under the name re-establishes serving.
    load(&engine, "alpha", &demo_case());
    assert!(engine.handle(&Request::Eval { name: "alpha".to_string(), at: None }).is_ok());
}

/// An object quarantined at restore but reconstructable from a replayed
/// WAL record is healed during open: `repaired_from_wal` ticks, the
/// version serves again, and scrub finds a clean store.
#[test]
fn wal_replay_heals_a_quarantined_object() {
    let sim = SimIo::new();
    let (v1_hash, v1_bits) = {
        let engine =
            Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>)
                .unwrap();
        let v1 = load(&engine, "alpha", &demo_case());
        // v2 lands the snapshot (objects for v1+v2, WAL truncated);
        // v3 sets E1 back to its original confidence, so its content
        // hash *is* v1's — replaying its WAL record re-parks the doc.
        edit(&engine, "alpha", "E1", 0.6).unwrap();
        let v3 = edit(&engine, "alpha", "E1", 0.95).unwrap();
        let v1_hash = v1.get("hash").and_then(Value::as_str).unwrap().to_string();
        assert_eq!(
            v3.get("hash").and_then(Value::as_str),
            Some(v1_hash.as_str()),
            "v3 must dedup onto v1's content address for this test's setup"
        );
        (v1_hash, root_bits(&eval_at(&engine, "alpha", 1).unwrap()))
    };

    let path = object_path(&v1_hash);
    let bytes = sim.live_bytes(&path).unwrap();
    let mut rotted = bytes.clone();
    rotted[bytes.len() / 2] ^= 0x01;
    sim.corrupt(&path, rotted);

    let engine =
        Engine::open_with_io(32, &config(2), Arc::new(sim.clone()) as Arc<dyn StorageIo>).unwrap();
    let health = engine.storage_health();
    assert_eq!(health.repaired_from_wal, 1, "the replayed v3 doc must heal the object");
    let eval = eval_at(&engine, "alpha", 1).unwrap();
    assert_eq!(root_bits(&eval), v1_bits, "the healed v1 must be bit-identical");
    let report = engine.handle(&Request::Scrub).unwrap();
    assert_eq!(report.get("corrupt_detected").and_then(Value::as_u64), Some(0));
}
