//! Crash-recovery acceptance: `kill -9` a durable server mid-storm,
//! restart it on the same `--data-dir`, and require every mutation it
//! acked before dying to come back **bit-identically** — versions,
//! content hashes, and evaluated confidences all `to_bits`-equal — with
//! a torn final WAL record (if the kill tore one) dropped exactly once.
//!
//! The tests drive the real `case_tool` binary over TCP, not an
//! in-process engine: the process boundary is the point, because only a
//! real SIGKILL proves the WAL's write-ahead ordering (no ack before
//! the record is written) and the torn-tail truncation rule.

#![cfg(unix)]

use depcase::prelude::*;
use depcase_service::protocol::Json;
use depcase_service::Client;
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn demo_case() -> Case {
    let mut case = Case::new("protection system");
    let g = case.add_goal("G", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

/// A `case_tool serve` child on an ephemeral port, plus the means to
/// kill it un-gracefully.
struct ServerProc {
    child: Child,
    port: u16,
}

impl ServerProc {
    /// Spawns `case_tool serve --data-dir <dir>` and waits until it
    /// reports its listening address on stderr.
    fn spawn(data_dir: &std::path::Path, extra: &[&str]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_case_tool"));
        cmd.arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = cmd.spawn().expect("spawning case_tool");
        let stderr = child.stderr.take().expect("stderr is piped");
        // The banner line ends "listening on 127.0.0.1:PORT".
        let port = {
            use std::io::BufRead;
            let reader = std::io::BufReader::new(stderr);
            let mut port = None;
            for line in reader.lines() {
                let line = line.expect("reading server stderr");
                if let Some(addr) = line.strip_prefix("case_tool serve: listening on ") {
                    port = addr.trim().rsplit(':').next().and_then(|p| p.parse().ok());
                    break;
                }
            }
            port.expect("server must report its listening address")
        };
        ServerProc { child, port }
    }

    fn client(&self) -> Client {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match Client::connect(("127.0.0.1", self.port)) {
                Ok(client) => return client,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("connecting to the server: {e}"),
            }
        }
    }

    /// SIGKILL — no drain, no flush, no destructors.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reaping the killed server");
    }

    /// Graceful stop via the wire `shutdown` op.
    fn shutdown(mut self) {
        let _ = self.client().round_trip(r#"{"op":"shutdown"}"#);
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("depcase_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

/// One acked mutation, as the dying server reported it.
#[derive(Debug)]
struct Acked {
    version: u64,
    hash: String,
    root_bits: Option<u64>,
}

fn acked_from(result: &Value) -> Acked {
    Acked {
        version: result.get("version").and_then(Value::as_u64).expect("version"),
        hash: result.get("hash").and_then(Value::as_str).expect("hash").to_string(),
        root_bits: result.get("root_confidence").and_then(Value::as_f64).map(f64::to_bits),
    }
}

/// The storm: load one case, then a run of `set_confidence` edits whose
/// values sweep a deterministic sequence. Returns every acked mutation
/// in order.
fn mutation_storm(client: &mut Client, edits: u32) -> Vec<Acked> {
    let mut acked = Vec::new();
    let result = client.round_trip_value(&load_line("storm", &demo_case())).unwrap();
    acked.push(acked_from(&result));
    for i in 0..edits {
        // Deterministic, all distinct, all valid confidences.
        let confidence = 0.5 + 0.4 * (f64::from(i % 97) / 96.0);
        let line = format!(
            r#"{{"op":"edit","name":"storm","action":"set_confidence","node":"E1","confidence":{confidence}}}"#,
        );
        acked.push(acked_from(&client.round_trip_value(&line).unwrap()));
    }
    acked
}

/// Checks the restarted server against the acked record: history covers
/// every acked version with the same hash, and a time-travel eval of
/// each acked version answers the same root-confidence bits.
fn assert_recovered(client: &mut Client, acked: &[Acked]) {
    let history = client.round_trip_value(r#"{"op":"history","name":"storm"}"#).unwrap();
    let versions = history.get("versions").and_then(Value::as_array).unwrap();
    assert!(
        versions.len() >= acked.len(),
        "history holds {} versions but {} were acked",
        versions.len(),
        acked.len()
    );
    for a in acked {
        let row = versions
            .iter()
            .find(|v| v.get("version").and_then(Value::as_u64) == Some(a.version))
            .unwrap_or_else(|| panic!("acked version {} missing after recovery", a.version));
        assert_eq!(
            row.get("hash").and_then(Value::as_str),
            Some(a.hash.as_str()),
            "version {} recovered with a different content hash",
            a.version
        );
    }
    // Time-travel every acked version: same bits as the original ack.
    for a in acked {
        let line = format!(r#"{{"op":"eval","name":"storm","version":{}}}"#, a.version);
        let result = client.round_trip_value(&line).unwrap();
        assert_eq!(
            result.get("hash").and_then(Value::as_str),
            Some(a.hash.as_str()),
            "eval@{} answers the wrong state",
            a.version
        );
        if let Some(bits) = a.root_bits {
            assert_eq!(
                result.get("root_confidence").and_then(Value::as_f64).map(f64::to_bits),
                Some(bits),
                "root confidence of version {} drifted across recovery",
                a.version
            );
        }
    }
}

/// Counts torn-tail recoveries reported by a running server's stats.
fn torn_recoveries(client: &mut Client) -> u64 {
    let stats = client.round_trip_value(r#"{"op":"stats"}"#).unwrap();
    stats
        .get("durability")
        .and_then(|d| d.get("torn_tail_recoveries"))
        .and_then(Value::as_u64)
        .expect("stats must carry durability counters")
}

/// The headline acceptance test: SIGKILL mid-storm, restart on the same
/// data dir, and every acked mutation is back bit-identically. Restart
/// a second time to pin that a torn tail (if the kill produced one) was
/// dropped exactly once — the second startup must see a clean log.
#[test]
fn kill_dash_nine_recovers_every_acked_mutation_bit_identically() {
    let dir = tmp_dir("kill9");
    let acked = {
        let server = ServerProc::spawn(&dir, &[]);
        let mut client = server.client();
        let acked = mutation_storm(&mut client, 40);
        // No drain, no shutdown: the process dies with the WAL unsynced
        // (fsync never) — the records are in the page cache, and the
        // write-ahead rule says every *acked* one is already written.
        server.kill9();
        acked
    };
    assert_eq!(acked.len(), 41);

    let server = ServerProc::spawn(&dir, &[]);
    let mut client = server.client();
    let first_torn = torn_recoveries(&mut client);
    assert!(first_torn <= 1, "a single crash can tear at most one record");
    assert_recovered(&mut client, &acked);

    // The restarted server keeps taking mutations where the storm left
    // off (versions continue, no sequence reuse).
    let next = client
        .round_trip_value(
            r#"{"op":"edit","name":"storm","action":"set_confidence","node":"E2","confidence":0.8}"#,
        )
        .unwrap();
    assert_eq!(next.get("version").and_then(Value::as_u64), Some(acked.len() as u64 + 1));
    server.kill9();

    // Second restart: the first recovery already truncated any torn
    // tail, so this startup must report a clean log — the drop happens
    // exactly once, never again.
    let server = ServerProc::spawn(&dir, &[]);
    let mut client = server.client();
    assert_eq!(
        torn_recoveries(&mut client),
        0,
        "the torn tail must have been dropped exactly once, on the first recovery"
    );
    assert_recovered(&mut client, &acked);
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A deliberately torn tail (the file is cut mid-record) is dropped on
/// the next start: everything before the tear survives, the torn
/// record is gone, and the recovery is counted once.
#[test]
fn a_torn_final_record_is_dropped_exactly_once() {
    let dir = tmp_dir("torn");
    let acked = {
        let server = ServerProc::spawn(&dir, &[]);
        let mut client = server.client();
        let acked = mutation_storm(&mut client, 10);
        server.kill9();
        acked
    };

    // Tear the last record by hand — byte-level, mid-payload — to make
    // the torn-tail path deterministic regardless of kill timing.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    assert!(!bytes.is_empty(), "the storm must have produced WAL records");
    std::fs::write(&wal, &bytes[..bytes.len() - 9]).unwrap();

    let server = ServerProc::spawn(&dir, &[]);
    let mut client = server.client();
    assert_eq!(torn_recoveries(&mut client), 1, "the tear must be detected and counted");
    // Everything up to the torn record survives bit-identically; the
    // torn record itself (the last ack) is the one allowed casualty of
    // cutting the file by hand.
    assert_recovered(&mut client, &acked[..acked.len() - 1]);
    server.kill9();

    let server = ServerProc::spawn(&dir, &[]);
    let mut client = server.client();
    assert_eq!(torn_recoveries(&mut client), 0, "second start must see a clean log");
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recovery composes with snapshots and `--fsync always`: a storm that
/// crosses several snapshot boundaries, killed ungracefully, comes back
/// whole — the snapshot part from the object store, the tail from the
/// WAL.
#[test]
fn recovery_spans_snapshots_and_fsync_always() {
    let dir = tmp_dir("snap");
    let acked = {
        let server = ServerProc::spawn(&dir, &["--fsync", "always", "--snapshot-every", "8"]);
        let mut client = server.client();
        let acked = mutation_storm(&mut client, 20);
        server.kill9();
        acked
    };
    assert_eq!(acked.len(), 21);
    assert!(dir.join("manifest.json").exists(), "20 edits at snapshot-every 8 must snapshot");

    let server = ServerProc::spawn(&dir, &["--fsync", "always", "--snapshot-every", "8"]);
    let mut client = server.client();
    assert_recovered(&mut client, &acked);
    server.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
