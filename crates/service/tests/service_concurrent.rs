//! End-to-end test of the resident service: concurrent clients over
//! real TCP sockets, answers held bit-identical to direct library
//! calls, and the plan cache observable through the stats counters.

use depcase::prelude::*;
use depcase_service::protocol::Json;
use depcase_service::{Client, Engine, Server};
use serde::{Serialize, Value};
use std::sync::Arc;

fn reactor_case() -> Case {
    reactor_case_with_testing_confidence(0.95)
}

fn reactor_case_with_testing_confidence(confidence: f64) -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", confidence).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    let a = case.add_assumption("A1", "environment stable", 0.99).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case.support(g, a).unwrap();
    case
}

fn interlock_case() -> Case {
    let mut case = Case::new("interlock");
    let g = case.add_goal("G1", "pfd < 1e-2").unwrap();
    let s = case.add_strategy("S1", "conjunctive decomposition", Combination::AllOf).unwrap();
    let e1 = case.add_evidence("E1", "proof of absence of runtime errors", 0.97).unwrap();
    let e2 = case.add_evidence("E2", "field history", 0.88).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = Value::Object(vec![
        ("op".to_string(), Value::Str("load".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&Json(body)).unwrap()
}

fn parse(line: &str) -> Value {
    let Json(v) = serde_json::from_str::<Json>(line).unwrap();
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "request failed: {line}");
    v.get("result").cloned().unwrap()
}

fn estimate_of(result: &Value, node: &str) -> f64 {
    result
        .get("estimates")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .find(|v| v.get("name").and_then(Value::as_str) == Some(node))
        .and_then(|v| v.get("estimate"))
        .and_then(Value::as_f64)
        .unwrap()
}

#[test]
fn concurrent_clients_get_bit_identical_answers_and_cache_hits() {
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), 3).unwrap();
    let addr = server.local_addr();

    // Load both cases up front from one client.
    let mut setup = Client::connect(addr).unwrap();
    parse(&setup.round_trip(&load_line("reactor", &reactor_case())).unwrap());
    parse(&setup.round_trip(&load_line("interlock", &interlock_case())).unwrap());

    // Direct library answers to compare against, computed before the
    // concurrent phase so nothing about ordering can leak in.
    let reactor = reactor_case();
    let reactor_root = reactor.propagate().unwrap().top().unwrap().independent;
    let reactor_mc = MonteCarlo::new(30_000)
        .seed(11)
        .threads(2)
        .run(&reactor)
        .unwrap()
        .estimate(reactor.node_by_name("G1").unwrap())
        .unwrap();
    let interlock = interlock_case();
    let interlock_root = interlock.propagate().unwrap().top().unwrap().independent;
    let interlock_mc = MonteCarlo::new(20_000)
        .seed(5)
        .threads(3)
        .run(&interlock)
        .unwrap()
        .estimate(interlock.node_by_name("G1").unwrap())
        .unwrap();

    // Four clients hammer the service concurrently, interleaving eval
    // and mc against both cases; every answer must be bit-exact.
    let mut handles = Vec::new();
    for client_idx in 0..4 {
        let handle = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for round in 0..3 {
                let result = parse(
                    &client
                        .round_trip(&format!(r#"{{"id":{round},"op":"eval","name":"reactor"}}"#))
                        .unwrap(),
                );
                let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();
                assert_eq!(root.to_bits(), reactor_root.to_bits(), "client {client_idx}");

                let result =
                    parse(&client.round_trip(r#"{"op":"eval","name":"interlock"}"#).unwrap());
                let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();
                assert_eq!(root.to_bits(), interlock_root.to_bits(), "client {client_idx}");

                let result = parse(
                    &client
                        .round_trip(
                            r#"{"op":"mc","name":"reactor","samples":30000,"seed":11,"threads":2}"#,
                        )
                        .unwrap(),
                );
                assert_eq!(
                    estimate_of(&result, "G1").to_bits(),
                    reactor_mc.to_bits(),
                    "client {client_idx} reactor mc"
                );

                let result = parse(
                    &client
                        .round_trip(
                            r#"{"op":"mc","name":"interlock","samples":20000,"seed":5,"threads":3}"#,
                        )
                        .unwrap(),
                );
                assert_eq!(
                    estimate_of(&result, "G1").to_bits(),
                    interlock_mc.to_bits(),
                    "client {client_idx} interlock mc"
                );
            }
        });
        handles.push(handle);
    }
    for handle in handles {
        handle.join().unwrap();
    }

    // The bands answer matches the paper's two-point construction.
    let result = parse(
        &setup
            .round_trip(r#"{"op":"bands","name":"reactor","pfd_bound":1e-3,"mode":"low_demand"}"#)
            .unwrap(),
    );
    let belief = TwoPoint::worst_case(1e-3, 1.0 - reactor_root).unwrap();
    let direct = SilAssessment::new(&belief, DemandMode::LowDemand).confidences();
    let bands = result.get("bands").and_then(Value::as_array).unwrap();
    for (row, expected) in bands.iter().zip(direct) {
        let got = row.get("at_least").and_then(Value::as_f64).unwrap();
        assert_eq!(got.to_bits(), expected.to_bits());
    }

    // Rank answers match the library too.
    let result = parse(&setup.round_trip(r#"{"op":"rank","name":"interlock"}"#).unwrap());
    let direct = depcase::assurance::birnbaum_importance(&interlock).unwrap();
    let rows = result.get("evidence").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), direct.len());
    for (row, li) in rows.iter().zip(&direct) {
        assert_eq!(row.get("name").and_then(Value::as_str), Some(li.name.as_str()));
        let b = row.get("birnbaum").and_then(Value::as_f64).unwrap();
        assert_eq!(b.to_bits(), li.birnbaum.to_bits());
    }

    // Cache behaviour: both cases were compiled once at load; every
    // subsequent eval/mc/bands/rank hit the cache.
    let counters = engine.cache_counters();
    assert_eq!(counters.misses, 0, "loads pre-warm the cache: {counters:?}");
    // 4 clients × 3 rounds × 4 cached ops + bands + rank = 50 hits.
    assert_eq!(counters.hits, 50, "{counters:?}");

    // The stats op agrees with the counters the engine exposes.
    let stats = parse(&setup.round_trip(r#"{"op":"stats"}"#).unwrap());
    let cache = stats.get("plan_cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(counters.hits));
    assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(0));
    assert_eq!(cache.get("hit_rate").and_then(Value::as_f64), Some(1.0));
    let mc_stats = stats.get("ops").and_then(|o| o.get("mc")).unwrap();
    assert_eq!(mc_stats.get("requests").and_then(Value::as_u64), Some(24));

    server.shutdown();
}

#[test]
fn editing_a_case_misses_the_cache_while_reloading_unchanged_hits() {
    let engine = Arc::new(Engine::new(16));
    let server = Server::bind(Arc::clone(&engine), ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let load1 = parse(&client.round_trip(&load_line("c", &reactor_case())).unwrap());
    parse(&client.round_trip(r#"{"op":"eval","name":"c"}"#).unwrap());
    let after_first = engine.cache_counters();
    assert_eq!((after_first.hits, after_first.misses), (1, 0));

    // Reloading the identical case bumps the version but keeps the
    // content hash, so evaluation still hits.
    let load2 = parse(&client.round_trip(&load_line("c", &reactor_case())).unwrap());
    assert_eq!(load2.get("version").and_then(Value::as_u64), Some(2));
    assert_eq!(
        load1.get("hash").and_then(Value::as_str),
        load2.get("hash").and_then(Value::as_str)
    );
    parse(&client.round_trip(r#"{"op":"eval","name":"c"}"#).unwrap());
    assert_eq!(engine.cache_counters().misses, 0);

    // An edited confidence changes the hash: new plan, no false hit.
    let edited = reactor_case_with_testing_confidence(0.96);
    let load3 = parse(&client.round_trip(&load_line("c", &edited)).unwrap());
    assert_ne!(
        load2.get("hash").and_then(Value::as_str),
        load3.get("hash").and_then(Value::as_str)
    );
    let result = parse(&client.round_trip(r#"{"op":"eval","name":"c"}"#).unwrap());
    let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();
    let direct = edited.propagate().unwrap().top().unwrap().independent;
    assert_eq!(root.to_bits(), direct.to_bits());

    server.shutdown();
}

#[test]
fn wire_shutdown_reports_final_stats_and_stops_the_server() {
    let engine = Arc::new(Engine::new(4));
    let server = Server::bind(engine, ("127.0.0.1", 0), 2).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    parse(&client.round_trip(&load_line("c", &interlock_case())).unwrap());
    let final_stats = parse(&client.round_trip(r#"{"op":"shutdown"}"#).unwrap());
    assert!(final_stats.get("plan_cache").is_some());
    assert!(server.is_shutting_down());
    server.shutdown();
}
