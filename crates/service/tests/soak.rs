//! Readiness soak: a thousand mostly-idle connections on the epoll
//! transport must cost no per-connection threads, answer trickled
//! requests bit-identically to a lone client, and leave the
//! thread-per-connection fallback fully functional.

use depcase::prelude::*;
use depcase_service::{Client, Engine, IoModel, Server, ServerConfig};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn reactor_case() -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn load_line(name: &str, case: &Case) -> String {
    let body = serde::Value::Object(vec![
        ("op".to_string(), serde::Value::Str("load".to_string())),
        ("name".to_string(), serde::Value::Str(name.to_string())),
        ("case".to_string(), case.to_value()),
    ]);
    serde_json::to_string(&depcase_service::protocol::Json(body)).unwrap()
}

/// OS threads in this process, from `/proc/self/status`.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("/proc/self/status lists Threads:")
        .trim()
        .parse()
        .unwrap()
}

const CONNS: usize = 1000;
const EVAL: &str = "{\"op\":\"eval\",\"name\":\"reactor\"}\n";

/// One test, three phases in sequence (the thread counting makes the
/// phases order-sensitive, so they share a body instead of racing as
/// separate tests):
///
/// 1. open 1k connections and hold them idle — the process thread
///    count must not move with the connection count;
/// 2. trickle requests through a spread of those connections — every
///    answer must be byte-identical to a lone client's;
/// 3. the `--io threads` fallback still serves correctly.
#[test]
fn a_thousand_idle_connections_cost_no_threads_and_answer_bit_identically() {
    let engine = Arc::new(Engine::new(8));
    let config = ServerConfig {
        workers: 2,
        max_connections: CONNS + 16,
        io: IoModel::Epoll,
        ..ServerConfig::default()
    };
    let server = Server::start(engine, ("127.0.0.1", 0), config).unwrap();
    let addr = server.local_addr();

    let mut seed = Client::connect(addr).unwrap();
    let loaded = seed.round_trip(&load_line("reactor", &reactor_case())).unwrap();
    assert!(loaded.contains("\"ok\":true"), "{loaded}");
    let expected = seed.round_trip(EVAL.trim_end()).unwrap();
    assert!(expected.contains("\"root_confidence\""), "{expected}");

    // Phase 1: a wall of idle connections.
    let before = thread_count();
    let conns: Vec<TcpStream> = (0..CONNS)
        .map(|i| {
            let stream =
                TcpStream::connect(addr).unwrap_or_else(|e| panic!("connection {i} refused: {e}"));
            stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            stream
        })
        .collect();
    let after = thread_count();
    assert!(
        after <= before + 2,
        "{CONNS} idle connections must not grow the thread pool: {before} -> {after} threads"
    );

    // Phase 2: trickle a request through every 50th connection; each
    // answer must be the exact bytes the lone client saw.
    for (i, stream) in conns.iter().enumerate().step_by(50) {
        let mut write_half = stream.try_clone().unwrap();
        write_half.write_all(EVAL.as_bytes()).unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), expected, "connection {i} diverged from the lone client");
    }
    let after_trickle = thread_count();
    assert!(
        after_trickle <= before + 2,
        "trickled requests must not grow the thread pool: {before} -> {after_trickle} threads"
    );

    drop(conns);
    server.shutdown();

    // Phase 3: the thread-per-connection fallback still serves, and
    // answers the same bytes for the same case.
    let engine = Arc::new(Engine::new(8));
    let config = ServerConfig { workers: 2, io: IoModel::Threads, ..ServerConfig::default() };
    let server = Server::start(engine, ("127.0.0.1", 0), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let loaded = client.round_trip(&load_line("reactor", &reactor_case())).unwrap();
    assert!(loaded.contains("\"ok\":true"), "{loaded}");
    let threaded = client.round_trip(EVAL.trim_end()).unwrap();
    assert_eq!(threaded, expected, "both transports must answer identical bytes");
    server.shutdown();
}
