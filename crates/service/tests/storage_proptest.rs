//! Property tests for the storage layer's corruption handling:
//!
//! - A WAL corrupted at an **arbitrary** offset/length recovers the
//!   longest valid prefix (or a clean empty log) — never a panic,
//!   never a misparsed record, and never a second truncation on the
//!   next open.
//! - A snapshot object truncated to **every** possible length N is
//!   either detected as corrupt (unreadable, unparseable, or hashing
//!   to the wrong content address) or, at full length, verifies.

use depcase::prelude::*;
use depcase_service::protocol::format_hash;
use depcase_service::snapshot::Store;
use depcase_service::wal::{Wal, WalOp, WalRecord};
use depcase_service::{FsyncPolicy, SimIo, StorageIo};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn demo_case(confidence: f64) -> Case {
    let mut case = Case::new("demo");
    let g = case.add_goal("G", "pfd < 1e-3").unwrap();
    let e = case.add_evidence("E1", "testing", confidence).unwrap();
    case.support(g, e).unwrap();
    case
}

fn wal_path() -> PathBuf {
    PathBuf::from("/sim/wal.log")
}

/// Builds a clean WAL with `n` records on a fresh [`SimIo`], returning
/// the disk and the records as written.
fn seeded_wal(n: u64) -> (SimIo, Vec<WalRecord>) {
    let sim = SimIo::new();
    let io: Arc<dyn StorageIo> = Arc::new(sim.clone());
    let (mut wal, replay) = Wal::open_with_io(wal_path(), FsyncPolicy::Never, &io).unwrap();
    assert!(replay.records.is_empty());
    let mut records = Vec::new();
    for seq in 1..=n {
        let case = demo_case(0.5 + 0.4 * (seq as f64 / n as f64));
        let record = WalRecord {
            seq,
            ts_ms: 1_700_000_000_000 + seq,
            name: "demo".to_string(),
            version: seq,
            hash: case.content_hash(),
            op: WalOp::Load { doc: Serialize::to_value(&case) },
        };
        wal.append(&record).unwrap();
        records.push(record);
    }
    (sim, records)
}

fn same_record(a: &WalRecord, b: &WalRecord) -> bool {
    a.seq == b.seq && a.version == b.version && a.hash == b.hash && a.name == b.name
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Smash `len` bytes at `offset` with arbitrary garbage: the next
    /// open must recover a prefix of the original records, and the
    /// open after that must see a clean, already-truncated log.
    #[test]
    fn a_wal_corrupted_anywhere_recovers_a_valid_prefix(
        n in 1u64..12,
        offset_frac in 0.0f64..1.0,
        len in 1usize..64,
        fill in proptest::collection::vec(any::<u8>(), 64),
    ) {
        let (sim, records) = seeded_wal(n);
        let bytes = sim.live_bytes(&wal_path()).unwrap();
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        let mut smashed = bytes.clone();
        for (i, b) in fill.iter().take(len).enumerate() {
            if offset + i < smashed.len() {
                smashed[offset + i] = *b;
            }
        }
        // Also exercise pure truncation when the garbage runs past EOF.
        if offset + len > smashed.len() {
            smashed.truncate(offset);
        }
        sim.corrupt(&wal_path(), smashed);

        let io: Arc<dyn StorageIo> = Arc::new(sim.clone());
        let (_, replay) = Wal::open_with_io(wal_path(), FsyncPolicy::Never, &io).unwrap();
        prop_assert!(replay.records.len() <= records.len());
        for (got, want) in replay.records.iter().zip(&records) {
            prop_assert!(
                same_record(got, want),
                "recovered record #{} is not the original (seq {} vs {})",
                got.seq, got.seq, want.seq
            );
        }

        // No double truncation: the first open already dropped the bad
        // tail for good, so a second open sees a clean log with the
        // same records.
        let (_, again) = Wal::open_with_io(wal_path(), FsyncPolicy::Never, &io).unwrap();
        prop_assert!(!again.torn_tail_dropped, "second open claims to drop a tail again");
        prop_assert_eq!(again.records.len(), replay.records.len());
    }

    /// Flipping a single bit anywhere in the log never yields *more*
    /// records than were written and never panics; the survivors are
    /// all originals.
    #[test]
    fn a_single_flipped_bit_never_invents_records(
        n in 1u64..10,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (sim, records) = seeded_wal(n);
        let mut bytes = sim.live_bytes(&wal_path()).unwrap();
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        sim.corrupt(&wal_path(), bytes);
        let io: Arc<dyn StorageIo> = Arc::new(sim.clone());
        let (_, replay) = Wal::open_with_io(wal_path(), FsyncPolicy::Never, &io).unwrap();
        prop_assert!(replay.records.len() <= records.len());
        for (got, want) in replay.records.iter().zip(&records) {
            prop_assert!(same_record(got, want));
        }
    }
}

/// Object truncation, exhaustively: for **every** prefix length N of a
/// stored object, verification either detects the damage or — only at
/// the full length — passes. No N may panic, and no strict prefix may
/// verify (the content address pins the exact bytes).
#[test]
fn an_object_truncated_to_every_length_is_detected_or_intact() {
    let sim = SimIo::new();
    let store = Store::open_with_io("/sim", Arc::new(sim.clone()) as Arc<dyn StorageIo>).unwrap();
    let case = demo_case(0.9);
    let hash = case.content_hash();
    store.write_object(hash, &Serialize::to_value(&case)).unwrap();
    let path = Path::new("/sim/objects").join(format!("{}.json", format_hash(hash)));
    let full = sim.live_bytes(&path).unwrap();

    let verifies = |store: &Store| match store.read_object(hash) {
        Err(_) => false,
        Ok(doc) => match Case::from_value(&doc) {
            Err(_) => false,
            Ok(got) => got.content_hash() == hash,
        },
    };
    for n in 0..full.len() {
        sim.corrupt(&path, full[..n].to_vec());
        assert!(
            !verifies(&store),
            "a {n}-byte prefix of a {}-byte object passed verification",
            full.len()
        );
    }
    sim.corrupt(&path, full.clone());
    assert!(verifies(&store), "the intact object must verify");
}
