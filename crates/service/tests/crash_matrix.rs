//! The crash-consistency matrix: run a mutation workload on a durable
//! engine over the journaling in-memory disk ([`SimIo`]), then simulate
//! a power cut after **every single mutating IO operation** — append,
//! fsync, truncate, object write, rename — recover an engine from each
//! crash image, and require every mutation acked before the cut to
//! replay **bit-identically**: same history hashes, same
//! `eval@version` root-confidence bits.
//!
//! Each crash point is explored under three tail assumptions
//! ([`TailVariant`]): only fsynced bytes survive (`Durable`), the OS
//! flushed everything (`Full`), and the unsynced tail is half-written
//! (`Torn`). With `--fsync always`, an ack implies the record's bytes
//! are durable, so the acked set must come back under all three — the
//! variants only change how much *unacked* garbage recovery has to
//! step around.

use depcase::prelude::*;
use depcase_service::protocol::Request;
use depcase_service::{
    DurabilityConfig, Engine, EvalAt, FsyncPolicy, SimIo, StorageIo, TailVariant,
};
use serde::{Serialize, Value};
use std::path::PathBuf;
use std::sync::Arc;

fn demo_case() -> Case {
    let mut case = Case::new("protection system");
    let g = case.add_goal("G", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S", "independent legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "statistical testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 0.90).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case
}

fn config() -> DurabilityConfig {
    DurabilityConfig {
        data_dir: PathBuf::from("/sim"),
        // An ack must imply durable bytes for the matrix's "acked ⇒
        // recovered" claim to hold at every crash point.
        fsync: FsyncPolicy::Always,
        // Small enough that the workload crosses several snapshot
        // boundaries, putting object writes, manifest renames, and WAL
        // truncations inside the crash window too.
        snapshot_every: 8,
    }
}

/// One acked mutation: everything recovery must reproduce, plus the
/// [`SimIo`] op count at ack time — a crash image taken at op index
/// `>= acked_at_op` contains every IO this mutation performed.
struct Acked {
    name: &'static str,
    version: u64,
    hash: String,
    root_bits: u64,
    acked_at_op: u64,
}

fn load(engine: &Engine, name: &str, case: &Case) -> Value {
    engine
        .handle(&Request::Load { name: name.to_string(), case: Serialize::to_value(case) })
        .unwrap()
}

fn edit(engine: &Engine, name: &str, node: &str, confidence: f64) -> Value {
    engine
        .handle(&Request::Edit {
            name: name.to_string(),
            action: depcase_service::EditAction::SetConfidence {
                node: node.to_string(),
                confidence,
            },
        })
        .unwrap()
}

fn eval_at(
    engine: &Engine,
    name: &str,
    version: u64,
) -> std::result::Result<Value, depcase_service::WireError> {
    engine.handle(&Request::Eval { name: name.to_string(), at: Some(EvalAt::Version(version)) })
}

fn root_bits(value: &Value) -> u64 {
    value.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits()
}

fn hash_of(value: &Value) -> String {
    value.get("hash").and_then(Value::as_str).unwrap().to_string()
}

/// Runs the workload on a recording [`SimIo`] and returns the acked
/// ledger plus the journal of crash images. Two names interleave so
/// the manifest, replay, and recovery all juggle more than one case.
fn run_workload(sim: &SimIo) -> Vec<Acked> {
    let io: Arc<dyn StorageIo> = Arc::new(sim.clone());
    let engine = Engine::open_with_io(32, &config(), io).unwrap();
    let mut acked = Vec::new();
    let mut note = |name: &'static str, result: &Value, engine: &Engine| {
        let version = result.get("version").and_then(Value::as_u64).unwrap();
        // `load` answers carry no root confidence; a time-travel eval
        // of the version just committed pins the bits either way.
        let eval = eval_at(engine, name, version).unwrap();
        acked.push(Acked {
            name,
            version,
            hash: hash_of(result),
            root_bits: root_bits(&eval),
            acked_at_op: sim.ops(),
        });
    };
    note("alpha", &load(&engine, "alpha", &demo_case()), &engine);
    for i in 0..14u32 {
        let c = 0.50 + 0.45 * (f64::from(i) / 13.0);
        note("alpha", &edit(&engine, "alpha", "E1", c), &engine);
    }
    note("beta", &load(&engine, "beta", &demo_case()), &engine);
    for i in 0..16u32 {
        let c = 0.30 + 0.65 * (f64::from(i) / 15.0);
        let (name, node) = if i % 2 == 0 { ("beta", "E2") } else { ("alpha", "E2") };
        note(name, &edit(&engine, name, node, c), &engine);
    }
    acked
}

/// Recovers an engine from one crash image and checks every mutation
/// acked at or before the cut: history hash and eval@version bits.
fn assert_image_recovers(
    image: &depcase_service::CrashImage,
    variant: TailVariant,
    acked: &[Acked],
) {
    let sim = SimIo::from_image(image, variant);
    let io: Arc<dyn StorageIo> = Arc::new(sim.clone());
    let engine = Engine::open_with_io(32, &config(), io).unwrap_or_else(|e| {
        panic!("recovery failed at op {} ({}, {variant:?}): {e}", image.op_index, image.op)
    });
    let required: Vec<&Acked> = acked.iter().filter(|a| a.acked_at_op <= image.op_index).collect();
    for a in &required {
        let eval = eval_at(&engine, a.name, a.version).unwrap_or_else(|e| {
            panic!(
                "acked {}@v{} lost at op {} ({}, {variant:?}): {}",
                a.name, a.version, image.op_index, image.op, e.message
            )
        });
        assert_eq!(hash_of(&eval), a.hash, "{}@v{} hash drifted ({variant:?})", a.name, a.version);
        assert_eq!(
            root_bits(&eval),
            a.root_bits,
            "{}@v{} bits drifted ({variant:?})",
            a.name,
            a.version
        );
    }
    // Invariant: recovery never invents state — the recovered current
    // version of each name is exactly the newest acked one whose IO the
    // image contains (with fsync always nothing unacked is replayable
    // beyond at most the mutation in flight at the cut).
    for name in ["alpha", "beta"] {
        let newest = required.iter().filter(|a| a.name == name).map(|a| a.version).max();
        if let Some(v) = newest {
            let history = engine.handle(&Request::History { name: name.to_string() }).unwrap();
            let current = history.get("current_version").and_then(Value::as_u64).unwrap();
            assert!(
                current == v || current == v + 1,
                "{name}: current {current} after a cut that acked {v} ({variant:?})"
            );
        }
    }
    // A torn tail must be dropped exactly once: reopening the recovered
    // disk has to see a clean log.
    if engine.durability_counters().torn_tail_recoveries == 1 {
        drop(engine);
        let again =
            Engine::open_with_io(32, &config(), Arc::new(sim) as Arc<dyn StorageIo>).unwrap();
        assert_eq!(
            again.durability_counters().torn_tail_recoveries,
            0,
            "second recovery saw a tail the first claimed to have dropped ({variant:?})"
        );
    }
}

/// The matrix itself. The ISSUE's acceptance floor: at least 30 acked
/// mutations, at least 200 crash points, 100% of acked mutations
/// recovered bit-identically at every point under every tail variant.
#[test]
fn every_crash_point_recovers_every_acked_mutation_bit_identically() {
    let sim = SimIo::recording();
    let acked = run_workload(&sim);
    assert!(acked.len() >= 30, "workload must ack at least 30 mutations, got {}", acked.len());
    let images = sim.crash_images();
    let crash_points = images.len() * 3;
    assert!(crash_points >= 200, "matrix must cover at least 200 crash points, got {crash_points}");
    for image in &images {
        for variant in [TailVariant::Durable, TailVariant::Full, TailVariant::Torn] {
            assert_image_recovers(image, variant, &acked);
        }
    }
}

/// Recovery from the final image (a clean power cut after the last
/// fsync) also keeps accepting mutations, continuing the version
/// sequence without gaps or reuse.
#[test]
fn recovery_resumes_the_version_sequence() {
    let sim = SimIo::recording();
    let acked = run_workload(&sim);
    let image = sim.crash_images().into_iter().last().unwrap();
    let recovered = SimIo::from_image(&image, TailVariant::Durable);
    let engine =
        Engine::open_with_io(32, &config(), Arc::new(recovered) as Arc<dyn StorageIo>).unwrap();
    let last_alpha = acked.iter().filter(|a| a.name == "alpha").map(|a| a.version).max().unwrap();
    let next = edit(&engine, "alpha", "E1", 0.42);
    assert_eq!(next.get("version").and_then(Value::as_u64), Some(last_alpha + 1));
}
