//! Transport and concurrency: NDJSON over TCP and stdio, in front of a
//! supervised worker pool with panic isolation, deadlines,
//! backpressure, and graceful drain.
//!
//! The pool reuses the claiming discipline of the parallel Monte-Carlo
//! engine: work sits in one shared queue and idle workers claim the
//! next item the moment they free up, so a long `mc` on one worker
//! never blocks a stream of cheap `eval`s on the others. Response order
//! is still per-connection FIFO — each connection's reader hands the
//! writer a queue of reply slots in arrival order, and the writer
//! drains them in that order no matter which finishes first.
//!
//! The fault-tolerance layer (DESIGN §11) has four parts:
//!
//! - **Panic isolation.** Every request body runs under
//!   [`std::panic::catch_unwind`]; a panic becomes a stable
//!   `internal_error` response that still echoes the request id. The
//!   panicked worker is treated as tainted and retired, and a
//!   supervisor thread respawns a replacement (counted in the stats
//!   `robustness` block). Shared locks recover from poisoning instead
//!   of propagating it ([`crate::lock_unpoisoned`]).
//! - **Deadlines and slow-client defense.** Requests carry an optional
//!   `deadline_ms` budget (or inherit [`ServerConfig::default_deadline_ms`])
//!   measured from arrival, checked between pipeline stages. Sockets
//!   get read/write timeouts, idle connections are reaped, and request
//!   lines are length-capped — an oversized line answers
//!   `request_too_large` and the connection survives.
//! - **Backpressure.** The job queue is bounded
//!   ([`ServerConfig::queue_capacity`]); overflow answers `overloaded`
//!   with a `retry_after_ms` hint immediately instead of queueing
//!   without bound, and concurrent connections are capped.
//! - **Graceful drain.** Shutdown stops accepting, lets workers drain
//!   queued jobs up to [`ServerConfig::drain_deadline`], then aborts
//!   the remainder; the final stats snapshot is always dumped.
//!
//! A seeded [`FaultPlan`] can inject worker panics, request delays, and
//! connection drops to exercise all of the above deterministically.
//!
//! Everything here is hand-rolled on `std::net`/`std::thread`; the
//! build environment has no crates.io access, and the protocol is
//! simple enough that a framework would be all ceremony.

use crate::engine::Engine;
use crate::faults::FaultPlan;
use crate::lock_unpoisoned;
use crate::protocol::{self, ErrorCode, Request, Response, WireError};
use crate::stats::RobustnessEvent;
use crate::telemetry;
use crate::trace::TraceBuilder;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Which transport multiplexes TCP connections onto the worker pool.
///
/// Both models share everything behind the transport — the same job
/// queue, workers, supervisor, protocol, shedding, and drain semantics —
/// and produce byte-identical responses; they differ only in how many
/// OS threads a connection costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// One readiness-driven I/O thread multiplexes every connection
    /// through `epoll` with non-blocking sockets and edge-triggered
    /// wakeups ([`crate::epoll`]); scales to thousands of mostly-idle
    /// connections. The default.
    #[default]
    Epoll,
    /// Two OS threads (reader + writer) per connection; simple and
    /// fine for tens of clients (`--io threads`).
    Threads,
}

/// Tunables for a [`Server`] (and, where applicable, [`serve_stdio_with`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request workers in the pool (minimum 1).
    pub workers: usize,
    /// Bound on queued-but-unclaimed requests; overflow answers
    /// `overloaded` instead of queueing.
    pub queue_capacity: usize,
    /// Bound on simultaneously served connections; excess connections
    /// receive one `overloaded` line and are closed.
    pub max_connections: usize,
    /// Longest accepted request line in bytes; longer lines answer
    /// `request_too_large` (the connection survives).
    pub max_line_bytes: usize,
    /// Default per-request time budget, applied when a request carries
    /// no `deadline_ms` of its own. `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Socket read timeout; doubles as the idle-connection reaper.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops draining responses is
    /// disconnected rather than pinning a writer forever.
    pub write_timeout: Duration,
    /// How long [`Server::shutdown`] waits for queued jobs to drain
    /// before abandoning them.
    pub drain_deadline: Duration,
    /// Backoff hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
    /// Deterministic fault injection, when enabled (`--faults`).
    pub faults: Option<Arc<FaultPlan>>,
    /// TCP transport model: readiness-driven `epoll` multiplexing or
    /// thread-per-connection (`--io epoll|threads`).
    pub io: IoModel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 1024,
            max_connections: 128,
            max_line_bytes: 1 << 20,
            default_deadline_ms: None,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            retry_after_ms: 25,
            faults: None,
            io: IoModel::default(),
        }
    }
}

/// Where a finished response goes: back to a per-connection writer
/// thread (thread-per-connection transport), or into a reply slot whose
/// connection the epoll I/O thread is then woken to flush.
pub(crate) enum Reply {
    /// Thread-per-connection: the connection's writer thread blocks on
    /// the receiving end, preserving FIFO order via a slot queue. The
    /// trace rides along so the writer can close its `reply_flush`
    /// span after the bytes actually reach the socket.
    Channel(mpsc::Sender<(String, Option<Box<TraceBuilder>>)>),
    /// Readiness loop: deposit into the connection's FIFO slot and wake
    /// the I/O thread to flush it.
    Slot {
        /// The reserved position in the connection's reply FIFO.
        slot: Arc<crate::epoll::ReplySlot>,
        /// Which connection to mark dirty.
        token: u64,
        /// The I/O thread's wakeup channel.
        notifier: Arc<crate::epoll::Notifier>,
    },
}

impl Reply {
    /// Delivers one response (and the request's trace, still open in
    /// its `reply_flush` span — the transport finalizes it once the
    /// bytes are handed to the socket); a vanished recipient (client
    /// hung up) is not an error.
    pub(crate) fn send(&self, response: String, trace: Option<Box<TraceBuilder>>) {
        match self {
            Reply::Channel(tx) => {
                let _ = tx.send((response, trace));
            }
            Reply::Slot { slot, token, notifier } => {
                // Trace first: the flusher pops a slot the moment it
                // sees the response, so the trace must already be there.
                *lock_unpoisoned(&slot.trace) = trace;
                *lock_unpoisoned(&slot.response) = Some(response);
                notifier.notify(*token);
            }
        }
    }
}

/// One unit of work: a raw request line, its arrival instant (the
/// deadline epoch), and where the answer goes.
pub(crate) struct Job {
    pub(crate) line: String,
    pub(crate) accepted: Instant,
    pub(crate) reply: Reply,
}

/// Bounded shared job queue with condvar wakeup; workers claim
/// dynamically.
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues unless the queue is at capacity; the rejected job comes
    /// back so the caller can answer `overloaded` on its reply slot.
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        {
            let mut jobs = lock_unpoisoned(&self.jobs);
            if jobs.len() >= self.capacity {
                return Err(job);
            }
            jobs.push_back(job);
        }
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job. Returns `None` once `shutdown` is
    /// flagged and the queue has drained (outstanding requests are
    /// always answered), or immediately once `abort` is flagged (the
    /// drain deadline expired).
    fn claim(&self, shutdown: &AtomicBool, abort: &AtomicBool) -> Option<Job> {
        let mut jobs = lock_unpoisoned(&self.jobs);
        loop {
            if abort.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.available.wait(jobs).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn len(&self) -> usize {
        lock_unpoisoned(&self.jobs).len()
    }

    /// Drops every queued job; their reply slots close, which closes
    /// the owning connections.
    fn clear(&self) {
        lock_unpoisoned(&self.jobs).clear();
    }

    fn notify_all(&self) {
        self.available.notify_all();
    }
}

/// State shared by the transport (accept loop and connection threads,
/// or the epoll I/O thread), the workers, and the supervisor.
pub(crate) struct Shared {
    pub(crate) engine: Arc<Engine>,
    pub(crate) queue: JobQueue,
    pub(crate) shutdown: AtomicBool,
    pub(crate) abort: AtomicBool,
    pub(crate) connections: AtomicUsize,
    pub(crate) config: ServerConfig,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.notify_all();
    }
}

/// Decrements the live-connection count when a connection thread ends,
/// however it ends.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// How a worker thread ended.
enum WorkerExit {
    /// The queue closed: shutdown (or abort) completed normally.
    Clean,
    /// The request handler panicked; the worker retired itself after
    /// answering `internal_error` and must be replaced.
    Panicked,
}

/// A running service instance bound to a TCP listener.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: thread::JoinHandle<()>,
    supervisor_handle: thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// `workers` request workers plus accept and supervisor threads,
    /// with every other knob at its [`ServerConfig`] default.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        Server::start(engine, addr, ServerConfig { workers, ..ServerConfig::default() })
    }

    /// Binds `addr` and starts the service with explicit tunables.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        engine.telemetry().set_transport(match config.io {
            IoModel::Epoll => "epoll",
            IoModel::Threads => "threads",
        });
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: JobQueue::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            config,
        });

        // Workers report their exit to the supervisor, which replaces
        // panicked ones (the respawn counter is the evidence) and joins
        // everything on shutdown.
        let (exit_tx, exit_rx) = mpsc::channel::<WorkerExit>();
        let handles: Vec<_> =
            (0..workers).map(|_| spawn_worker(Arc::clone(&shared), exit_tx.clone())).collect();
        let supervisor_handle = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || supervise(&shared, workers, handles, &exit_rx, &exit_tx))
        };

        let accept_handle = match shared.config.io {
            IoModel::Epoll => {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    if let Err(e) = crate::epoll::run(&listener, &shared) {
                        // Losing the I/O thread is losing the service;
                        // initiate shutdown so workers stop cleanly
                        // instead of waiting on a queue nobody fills.
                        eprintln!("depcase-service: epoll loop failed: {e}");
                        shared.begin_shutdown();
                    }
                })
            }
            IoModel::Threads => {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    for stream in listener.incoming() {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let shared = Arc::clone(&shared);
                        thread::spawn(move || serve_connection(&stream, &shared));
                    }
                })
            }
        };

        Ok(Server { shared, addr, accept_handle, supervisor_handle })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The fault-injection plan, when one is active.
    #[must_use]
    pub fn faults(&self) -> Option<&Arc<FaultPlan>> {
        self.shared.config.faults.as_ref()
    }

    /// True once a `shutdown` request has been handled.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains queued jobs up to the configured drain
    /// deadline (requests already executing always finish), abandons
    /// whatever is still queued after that, and joins all threads.
    /// Idempotent with a wire-initiated shutdown.
    pub fn shutdown(self) {
        let Server { shared, addr, accept_handle, supervisor_handle } = self;
        shared.begin_shutdown();
        // The accept loop only observes the flag on its next wakeup;
        // poke it with a throwaway connection.
        drop(TcpStream::connect(addr));
        let _ = accept_handle.join();
        let drain_until = Instant::now() + shared.config.drain_deadline;
        while shared.queue.len() > 0 && Instant::now() < drain_until {
            thread::sleep(Duration::from_millis(2));
        }
        shared.abort.store(true, Ordering::SeqCst);
        shared.queue.notify_all();
        let _ = supervisor_handle.join();
        // Jobs the drain deadline abandoned: dropping them closes their
        // reply slots, which lets their connections close.
        shared.queue.clear();
        // Every worker is joined, so everything acked is in the WAL;
        // force it to stable storage regardless of fsync policy.
        if let Err(e) = shared.engine.flush_durability() {
            eprintln!("depcase-service: final wal sync failed: {e}");
        }
    }

    /// Blocks until a client's `shutdown` request stops the service,
    /// then drains and joins like [`Server::shutdown`].
    pub fn wait(self) {
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            thread::park_timeout(Duration::from_millis(50));
        }
        self.shutdown();
    }
}

fn spawn_worker(shared: Arc<Shared>, exit_tx: mpsc::Sender<WorkerExit>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let exit = worker_loop(&shared);
        let _ = exit_tx.send(exit);
    })
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    while let Some(job) = shared.queue.claim(&shared.shutdown, &shared.abort) {
        let outcome = handle_line(&shared.engine, &shared.config, &job.line, job.accepted);
        if outcome.shutdown {
            shared.begin_shutdown();
        }
        // A vanished recipient means the client hung up; fine.
        job.reply.send(outcome.response, outcome.trace);
        if outcome.panicked {
            // The response went out, but this worker's stack just
            // unwound through arbitrary engine code — retire it and let
            // the supervisor start a clean replacement.
            return WorkerExit::Panicked;
        }
    }
    WorkerExit::Clean
}

/// Supervisor body: keeps the pool at strength by replacing panicked
/// workers until shutdown, then joins every worker thread ever started.
fn supervise(
    shared: &Arc<Shared>,
    workers: usize,
    mut handles: Vec<thread::JoinHandle<()>>,
    exit_rx: &mpsc::Receiver<WorkerExit>,
    exit_tx: &mpsc::Sender<WorkerExit>,
) {
    let mut live = workers;
    while live > 0 {
        match exit_rx.recv() {
            Ok(WorkerExit::Panicked) if !shared.shutdown.load(Ordering::SeqCst) => {
                shared.engine.note(RobustnessEvent::Respawn);
                handles.push(spawn_worker(Arc::clone(shared), exit_tx.clone()));
            }
            Ok(_) => live -= 1,
            // Unreachable — the supervisor itself holds a sender — but
            // breaking beats spinning if that invariant ever changes.
            Err(_) => break,
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Outcome of one request line: the response to write, whether the
/// line requested shutdown or panicked its handler, and the request's
/// trace — still open in its `reply_flush` span, finalized by the
/// transport once the response bytes reach the client.
struct LineOutcome {
    response: String,
    shutdown: bool,
    panicked: bool,
    trace: Option<Box<TraceBuilder>>,
}

/// Parses and executes one request line with panic isolation, deadline
/// accounting, and fault injection. Used by both the TCP workers and
/// the stdio loop.
///
/// Responses render in the request's own protocol generation: a `"v":2`
/// request gets a stamped v2 line, everything else the exact v1 bytes.
/// Lines the server could not parse far enough to establish a
/// generation (bad JSON, unknown version, shed or oversized lines)
/// answer in the version-less v1 grammar, which every client parses.
fn handle_line(
    engine: &Engine,
    config: &ServerConfig,
    line: &str,
    accepted: Instant,
) -> LineOutcome {
    // Root phases are measured back to back — each `end` instant is the
    // next `begin` — so their sum reconciles with the end-to-end total
    // by construction (the ±5% invariant the integration tests pin).
    let mut tb = engine.telemetry().start_trace(accepted);
    if let Some(tb) = tb.as_mut() {
        tb.begin_at("queue_wait", accepted);
        tb.end();
        tb.begin("parse");
    }
    let envelope = match protocol::parse_request(line) {
        Ok(envelope) => envelope,
        Err((id, err)) => {
            if let Some(tb) = tb.as_mut() {
                tb.end();
                tb.set_ok(false);
                tb.begin("reply_flush");
            }
            return LineOutcome {
                response: protocol::err_line(&id, &err),
                shutdown: false,
                panicked: false,
                trace: tb,
            };
        }
    };
    let deadline = envelope
        .deadline_ms
        .or(config.default_deadline_ms)
        .map(|ms| accepted + Duration::from_millis(ms));
    let id = envelope.id;
    let version = envelope.version;
    let request = envelope.request;
    if let Some(tb) = tb.as_mut() {
        tb.end();
        tb.set_op(request.op_name());
        tb.begin("engine");
    }
    // The trace rides thread-local storage while the engine runs, so
    // the layers below (plan cache, WAL, fsync, assurance kernels)
    // record child spans without threading a tracer through every
    // signature. A panicking handler leaves it in TLS; `take_current`
    // recovers it either way.
    if let Some(tb) = tb.take() {
        telemetry::install(tb);
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = &config.faults {
            if let Some(delay) = plan.take_delay() {
                thread::sleep(delay);
            }
            assert!(!plan.take_panic(), "injected worker panic");
        }
        engine.handle_deadline(&request, deadline)
    }));
    let mut tb = telemetry::take_current();
    if let Some(tb) = tb.as_mut() {
        // `end_open`, not `end`: a panic may have left engine-internal
        // child spans open on the stack.
        tb.end_open();
        tb.set_ok(matches!(&result, Ok(Ok(_))));
        tb.begin("reply_flush");
    }
    match result {
        Ok(outcome) => LineOutcome {
            response: Response::from(outcome).render(version, &id),
            shutdown: matches!(request, Request::Shutdown),
            panicked: false,
            trace: tb,
        },
        Err(_panic) => {
            engine.note(RobustnessEvent::Panic);
            let err = WireError::new(
                ErrorCode::InternalError,
                "internal error: the worker handling this request panicked; \
                 it was replaced and the service continues",
            );
            LineOutcome {
                response: Response::Err(err).render(version, &id),
                shutdown: false,
                panicked: true,
                trace: tb,
            }
        }
    }
}

/// One bounded line read from a buffered stream.
enum LineRead {
    /// A complete line (newline stripped), within the length bound.
    Line(String),
    /// The line exceeded `max` bytes; it was consumed and discarded.
    TooLong,
    /// Clean end of stream.
    Eof,
    /// The socket read timed out (idle or stalled mid-line).
    TimedOut,
    /// Any other I/O failure.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Oversized
/// lines are consumed to their newline and reported as [`LineRead::TooLong`],
/// so the connection can keep going — one hostile line must not cost
/// the client its session, and must not cost the server the memory to
/// buffer it.
fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return LineRead::TimedOut
            }
            Err(_) => return LineRead::Failed,
        };
        if chunk.is_empty() {
            return match (overflowed, line.is_empty()) {
                (true, _) => LineRead::TooLong,
                (false, true) => LineRead::Eof,
                // A final line without a trailing newline still counts.
                (false, false) => LineRead::Line(String::from_utf8_lossy(&line).into_owned()),
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !overflowed {
                    line.extend_from_slice(&chunk[..newline]);
                }
                reader.consume(newline + 1);
                if overflowed || line.len() > max {
                    return LineRead::TooLong;
                }
                // NDJSON is UTF-8; anything else will fail JSON parsing
                // with a `bad_json` of its own.
                return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            None => {
                let taken = chunk.len();
                if !overflowed {
                    line.extend_from_slice(chunk);
                    if line.len() > max {
                        overflowed = true;
                        line.clear();
                        line.shrink_to_fit();
                    }
                }
                reader.consume(taken);
            }
        }
    }
}

/// Reader half of a connection: enqueue each line, handing the writer
/// the reply receivers in arrival order so responses stay FIFO even
/// when workers finish out of order. Load shedding happens here —
/// overflow and oversized lines are answered on the same FIFO slots,
/// so pipelined clients still match every response to a request.
fn serve_connection(stream: &TcpStream, shared: &Shared) {
    let config = &shared.config;
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));

    let active = shared.connections.fetch_add(1, Ordering::SeqCst) + 1;
    let _guard = ConnGuard(&shared.connections);
    if active > config.max_connections {
        let refused = Instant::now();
        let err = WireError::new(
            ErrorCode::Overloaded,
            format!("connection limit ({}) reached", config.max_connections),
        )
        .with_retry_after(config.retry_after_ms);
        let mut writer = BufWriter::new(stream);
        let _ = writeln!(writer, "{}", protocol::err_line(&None, &err));
        let _ = writer.flush();
        shared.engine.note_rejection(RobustnessEvent::Overloaded, refused.elapsed());
        return;
    }

    let Ok(write_half) = stream.try_clone() else { return };
    type ReplyRx = mpsc::Receiver<(String, Option<Box<TraceBuilder>>)>;
    let (order_tx, order_rx) = mpsc::channel::<ReplyRx>();
    let writer_engine = Arc::clone(&shared.engine);
    let writer_handle = thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        while let Ok(slot) = order_rx.recv() {
            let Ok((response, trace)) = slot.recv() else { break };
            if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
                break;
            }
            // The bytes are with the kernel: close `reply_flush` and
            // publish the trace.
            if let Some(tb) = trace {
                writer_engine.telemetry().finish(*tb);
            }
        }
    });

    let mut reader = BufReader::new(stream);
    loop {
        // During drain, stop taking new work; in-flight replies still
        // go out through the writer before the connection closes.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        match read_bounded_line(&mut reader, config.max_line_bytes) {
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                if config.faults.as_ref().is_some_and(|plan| plan.take_drop()) {
                    // Injected fault: vanish mid-conversation, exactly
                    // like a crashed client-side proxy would.
                    break;
                }
                if order_tx.send(reply_rx).is_err() {
                    break;
                }
                let job = Job { line, accepted: Instant::now(), reply: Reply::Channel(reply_tx) };
                if let Err(job) = shared.queue.try_push(job) {
                    let err = WireError::new(
                        ErrorCode::Overloaded,
                        format!(
                            "request queue is full ({} queued); shed instead of queueing",
                            config.queue_capacity
                        ),
                    )
                    .with_retry_after(config.retry_after_ms);
                    job.reply
                        .send(protocol::err_line(&protocol::recover_id(&job.line), &err), None);
                    shared
                        .engine
                        .note_rejection(RobustnessEvent::Overloaded, job.accepted.elapsed());
                }
            }
            LineRead::TooLong => {
                let rejected = Instant::now();
                if order_tx.send(reply_rx).is_err() {
                    break;
                }
                let err = WireError::new(
                    ErrorCode::RequestTooLarge,
                    format!("request line exceeds {} bytes", config.max_line_bytes),
                );
                let _ = reply_tx.send((protocol::err_line(&None, &err), None));
                shared.engine.note_rejection(RobustnessEvent::RequestTooLarge, rejected.elapsed());
            }
            LineRead::TimedOut => {
                shared.engine.note(RobustnessEvent::ConnectionReaped);
                break;
            }
            LineRead::Eof | LineRead::Failed => break,
        }
    }
    drop(order_tx);
    let _ = writer_handle.join();
}

/// Serves NDJSON over stdin/stdout until EOF or a `shutdown` request,
/// then dumps a final stats snapshot to stderr; equivalent to
/// [`serve_stdio_with`] at the default [`ServerConfig`].
///
/// Requests are executed in arrival order on the calling thread —
/// stdio has a single client, so pooling buys nothing but reordering
/// hazards.
pub fn serve_stdio(engine: &Engine) {
    serve_stdio_with(engine, &ServerConfig::default());
}

/// [`serve_stdio`] with explicit tunables: the line-length cap, default
/// deadline, and fault injection apply; pool/queue/socket knobs do not
/// (stdio is single-threaded with no socket). A caught panic answers
/// `internal_error` and the loop simply continues — there is no worker
/// to respawn.
pub fn serve_stdio_with(engine: &Engine, config: &ServerConfig) {
    engine.telemetry().set_transport("stdio");
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut writer = BufWriter::new(stdout.lock());
    loop {
        let response = match read_bounded_line(&mut reader, config.max_line_bytes) {
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let outcome = handle_line(engine, config, &line, Instant::now());
                let stop = outcome.shutdown;
                let wrote = writeln!(writer, "{}", outcome.response).and_then(|()| writer.flush());
                if let Some(tb) = outcome.trace {
                    engine.telemetry().finish(*tb);
                }
                if wrote.is_err() || stop {
                    break;
                }
                continue;
            }
            LineRead::TooLong => {
                engine.note_rejection(RobustnessEvent::RequestTooLarge, Duration::ZERO);
                let err = WireError::new(
                    ErrorCode::RequestTooLarge,
                    format!("request line exceeds {} bytes", config.max_line_bytes),
                );
                protocol::err_line(&None, &err)
            }
            LineRead::Eof | LineRead::TimedOut | LineRead::Failed => break,
        };
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
    if let Err(e) = engine.flush_durability() {
        eprintln!("depcase-service: final wal sync failed: {e}");
    }
    let stats = protocol::ok_line(&None, engine.stats_value());
    eprintln!("case_tool serve: final stats {stats}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_line_reader_survives_oversized_lines() {
        let text = format!("{}\nshort\n", "x".repeat(64));
        let mut reader = Cursor::new(text.into_bytes());
        assert!(matches!(read_bounded_line(&mut reader, 16), LineRead::TooLong));
        match read_bounded_line(&mut reader, 16) {
            LineRead::Line(line) => assert_eq!(line, "short"),
            _ => panic!("the connection must survive an oversized line"),
        }
        assert!(matches!(read_bounded_line(&mut reader, 16), LineRead::Eof));
    }

    #[test]
    fn bounded_line_reader_accepts_final_unterminated_line() {
        let mut reader = Cursor::new(b"{\"op\":\"stats\"}".to_vec());
        match read_bounded_line(&mut reader, 64) {
            LineRead::Line(line) => assert_eq!(line, "{\"op\":\"stats\"}"),
            _ => panic!("final line without newline must still parse"),
        }
    }

    #[test]
    fn oversized_line_at_eof_is_too_long_not_eof() {
        let mut reader = Cursor::new("y".repeat(64).into_bytes());
        assert!(matches!(read_bounded_line(&mut reader, 16), LineRead::TooLong));
        assert!(matches!(read_bounded_line(&mut reader, 16), LineRead::Eof));
    }
}
