//! Transport and concurrency: NDJSON over TCP and stdio, in front of a
//! dynamic worker pool.
//!
//! The pool reuses the claiming discipline of the parallel Monte-Carlo
//! engine: work sits in one shared queue and idle workers claim the
//! next item the moment they free up, so a long `mc` on one worker
//! never blocks a stream of cheap `eval`s on the others. Response order
//! is still per-connection FIFO — each connection's reader hands the
//! writer a queue of reply slots in arrival order, and the writer
//! drains them in that order no matter which finishes first.
//!
//! Everything here is hand-rolled on `std::net`/`std::thread`; the
//! build environment has no crates.io access, and the protocol is
//! simple enough that a framework would be all ceremony.

use crate::engine::Engine;
use crate::protocol::{self, ErrorCode, Request, WireError};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

/// One unit of work: a raw request line and where the answer goes.
struct Job {
    line: String,
    reply: mpsc::Sender<String>,
}

/// Shared job queue with condvar wakeup; workers claim dynamically.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue { jobs: Mutex::new(VecDeque::new()), available: Condvar::new() }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().expect("queue lock").push_back(job);
        self.available.notify_one();
    }

    /// Blocks for the next job; `None` once shutdown is flagged and the
    /// queue has drained (outstanding requests are always answered).
    fn claim(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut jobs = self.jobs.lock().expect("queue lock");
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            jobs = self.available.wait(jobs).expect("queue lock");
        }
    }

    fn notify_all(&self) {
        self.available.notify_all();
    }
}

/// A running service instance bound to a TCP listener.
pub struct Server {
    engine: Arc<Engine>,
    queue: Arc<JobQueue>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    accept_handle: thread::JoinHandle<()>,
    worker_handles: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// `workers` request workers plus an accept thread.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn bind(
        engine: Arc<Engine>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(JobQueue::new());
        let shutdown = Arc::new(AtomicBool::new(false));

        let worker_handles = spawn_workers(&engine, &queue, &shutdown, workers);

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let queue = Arc::clone(&queue);
                    thread::spawn(move || serve_connection(stream, &queue));
                }
            })
        };

        Ok(Server { engine, queue, shutdown, addr, accept_handle, worker_handles })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind this server.
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// True once a `shutdown` request has been handled.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains in-flight work, and joins all threads.
    /// Idempotent with a wire-initiated shutdown.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.notify_all();
        // The accept loop only observes the flag on its next wakeup;
        // poke it with a throwaway connection.
        drop(TcpStream::connect(self.addr));
        let _ = self.accept_handle.join();
        for handle in self.worker_handles {
            let _ = handle.join();
        }
    }

    /// Blocks until a client's `shutdown` request stops the service,
    /// then drains and joins like [`Server::shutdown`].
    pub fn wait(self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            thread::park_timeout(std::time::Duration::from_millis(50));
        }
        self.shutdown();
    }
}

fn spawn_workers(
    engine: &Arc<Engine>,
    queue: &Arc<JobQueue>,
    shutdown: &Arc<AtomicBool>,
    workers: usize,
) -> Vec<thread::JoinHandle<()>> {
    (0..workers.max(1))
        .map(|_| {
            let engine = Arc::clone(engine);
            let queue = Arc::clone(queue);
            let shutdown = Arc::clone(shutdown);
            thread::spawn(move || {
                while let Some(job) = queue.claim(&shutdown) {
                    let response = execute(&engine, &job.line, &shutdown, &queue);
                    // A dead receiver means the client hung up; fine.
                    let _ = job.reply.send(response);
                }
            })
        })
        .collect()
}

/// Parses and executes one request line, producing the response line.
fn execute(engine: &Engine, line: &str, shutdown: &AtomicBool, queue: &JobQueue) -> String {
    match protocol::parse_request(line) {
        Ok((id, request)) => {
            let result = engine.handle(&request);
            if matches!(request, Request::Shutdown) {
                shutdown.store(true, Ordering::SeqCst);
                queue.notify_all();
            }
            match result {
                Ok(value) => protocol::ok_line(&id, value),
                Err(err) => protocol::err_line(&id, &err),
            }
        }
        Err((id, err)) => protocol::err_line(&id, &err),
    }
}

/// Reader half of a connection: enqueue each line, handing the writer
/// the reply receivers in arrival order so responses stay FIFO.
fn serve_connection(stream: TcpStream, queue: &JobQueue) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (order_tx, order_rx) = mpsc::channel::<mpsc::Receiver<String>>();

    let writer_handle = thread::spawn(move || {
        let mut writer = BufWriter::new(write_half);
        while let Ok(slot) = order_rx.recv() {
            let Ok(response) = slot.recv() else { break };
            if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
                break;
            }
        }
    });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        if order_tx.send(reply_rx).is_err() {
            break;
        }
        queue.push(Job { line, reply: reply_tx });
    }
    drop(order_tx);
    let _ = writer_handle.join();
}

/// Serves NDJSON over stdin/stdout until EOF or a `shutdown` request,
/// then dumps a final stats snapshot to stderr.
///
/// Requests are executed in arrival order on the calling thread —
/// stdio has a single client, so pooling buys nothing but reordering
/// hazards.
pub fn serve_stdio(engine: &Engine) {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut writer = BufWriter::new(stdout.lock());
    let shutdown = AtomicBool::new(false);
    // The queue only participates in the shutdown handshake here.
    let queue = JobQueue::new();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = execute(engine, &line, &shutdown, &queue);
        if writeln!(writer, "{response}").and_then(|()| writer.flush()).is_err() {
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    let stats = protocol::ok_line(&None, engine.stats_value());
    eprintln!("case_tool serve: final stats {stats}");
}

/// A blocking NDJSON client for tests, benches, and scripting.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer: BufWriter::new(write_half) })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// [`WireError`] with code `bad_json` when the transport fails or
    /// the server closes the connection mid-exchange.
    pub fn round_trip(&mut self, line: &str) -> Result<String, WireError> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| WireError::new(ErrorCode::BadJson, format!("send failed: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| WireError::new(ErrorCode::BadJson, format!("receive failed: {e}")))?;
        if n == 0 {
            return Err(WireError::new(ErrorCode::BadJson, "server closed the connection"));
        }
        Ok(response.trim_end().to_string())
    }
}
