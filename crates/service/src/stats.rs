//! Service observability: per-operation latency histograms and counters.
//!
//! Latencies land in logarithmic (power-of-two) microsecond buckets, so
//! a handful of `u64`s per operation covers nanosecond cache hits
//! through multi-second Monte-Carlo runs, and quantiles come from a
//! single scan. Quantile answers are the upper edge of the containing
//! bucket — pessimistic by at most 2×, which is the right bias for
//! latency reporting.

use crate::cache::CacheCounters;
use serde::Value;

const BUCKETS: usize = 40; // 2^39 µs ≈ 6.4 days; plenty.

/// Latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }
}

fn bucket_of(us: u64) -> usize {
    // Bucket 0 holds 0..=1 µs; bucket b ≥ 1 holds (2^(b-1), 2^b], so
    // every bucket's contents are bounded above by `bucket_upper` and a
    // 1 µs observation reports as 1 µs, not 2.
    match us {
        0 | 1 => 0,
        _ => (64 - (us - 1).leading_zeros() as usize).min(BUCKETS - 1),
    }
}

fn bucket_upper(bucket: usize) -> u64 {
    1u64 << bucket
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0,1]`.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        self.max_us
    }

    /// Quantile `q` with linear interpolation inside the containing
    /// log2 bucket — the estimate clients used to re-derive by hand
    /// from the raw buckets, now computed (and pinned by unit tests)
    /// server-side.
    ///
    /// The rank `ceil(q·count)` lands in some bucket `(lo, hi]`; the
    /// answer places it proportionally between the edges by its
    /// position among that bucket's observations. Unlike
    /// [`Histogram::quantile_us`] this is an *estimate* (the true
    /// observation may sit anywhere in the bucket), but it is unbiased
    /// across a uniform fill instead of pessimistic by up to 2×, and it
    /// never exceeds the recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile_interpolated_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if b == 0 { 0.0 } else { bucket_upper(b - 1) as f64 };
                let hi = bucket_upper(b) as f64;
                // Position of the rank among this bucket's n
                // observations, in (0, 1].
                let frac = (rank - seen) as f64 / n as f64;
                return (lo + (hi - lo) * frac).min(self.max_us as f64);
            }
            seen += n;
        }
        self.max_us as f64
    }

    /// The non-empty buckets as `(upper_edge_us, count)` pairs in
    /// ascending edge order — the raw log2-µs histogram the summary
    /// quantiles are derived from.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_upper(b), n))
            .collect()
    }

    /// Sum of all observations in µs (saturating).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// The `p50/p90/p99/p999` interpolated summary plus the raw
    /// buckets, as the wire object every histogram now embeds.
    #[must_use]
    pub fn summary_value(&self) -> Value {
        let quantiles = Value::Object(vec![
            ("p50".to_string(), Value::F64(self.quantile_interpolated_us(0.50))),
            ("p90".to_string(), Value::F64(self.quantile_interpolated_us(0.90))),
            ("p99".to_string(), Value::F64(self.quantile_interpolated_us(0.99))),
            ("p999".to_string(), Value::F64(self.quantile_interpolated_us(0.999))),
        ]);
        let buckets = self
            .buckets()
            .into_iter()
            .map(|(le, n)| Value::Array(vec![Value::U64(le), Value::U64(n)]))
            .collect();
        Value::Object(vec![
            ("quantiles".to_string(), quantiles),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }

    /// Mean latency in µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest observation in µs.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }
}

/// Request counters and latency for one wire operation.
#[derive(Debug, Clone, Default)]
pub struct OpStats {
    /// Requests handled (including failures).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Latency of the handling call.
    pub latency: Histogram,
}

/// The operations tracked, in wire-spelling order.
pub const TRACKED_OPS: [&str; 13] = [
    "load", "eval", "history", "edit", "rank", "mc", "bands", "batch", "stats", "scrub", "trace",
    "metrics", "shutdown",
];

/// A fault-tolerance event worth counting — the service's own evidence
/// of how it degrades under panic, overload, and slow clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustnessEvent {
    /// A request handler panicked (caught; answered `internal_error`).
    Panic,
    /// A dead worker was replaced by the supervisor.
    Respawn,
    /// A request ran out of its time budget (`deadline_exceeded`).
    DeadlineExceeded,
    /// A request or connection was shed under load (`overloaded`).
    Overloaded,
    /// An oversized request line was discarded (`request_too_large`).
    RequestTooLarge,
    /// An idle or stalled connection was reaped by a socket timeout.
    ConnectionReaped,
}

/// Counter snapshot of the fault-tolerance events.
///
/// Rejected requests (overloaded, too-large) never reach the engine, so
/// the per-op latency histograms stay untouched by load shedding — they
/// are counted here and their answer latency lands in the dedicated
/// rejection histogram ([`ServiceStats::note_rejection`]), so a p99
/// quoted under overload accounts for the shed traffic too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessCounters {
    /// Caught request-handler panics.
    pub panics: u64,
    /// Workers respawned after a panic.
    pub respawns: u64,
    /// Requests answered `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Requests or connections shed with `overloaded`.
    pub overloaded: u64,
    /// Lines rejected with `request_too_large`.
    pub request_too_large: u64,
    /// Connections closed by idle/stall timeouts.
    pub connections_reaped: u64,
}

impl RobustnessCounters {
    fn note(&mut self, event: RobustnessEvent) {
        match event {
            RobustnessEvent::Panic => self.panics += 1,
            RobustnessEvent::Respawn => self.respawns += 1,
            RobustnessEvent::DeadlineExceeded => self.deadline_exceeded += 1,
            RobustnessEvent::Overloaded => self.overloaded += 1,
            RobustnessEvent::RequestTooLarge => self.request_too_large += 1,
            RobustnessEvent::ConnectionReaped => self.connections_reaped += 1,
        }
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("panics".to_string(), Value::U64(self.panics)),
            ("respawns".to_string(), Value::U64(self.respawns)),
            ("deadline_exceeded".to_string(), Value::U64(self.deadline_exceeded)),
            ("overloaded".to_string(), Value::U64(self.overloaded)),
            ("request_too_large".to_string(), Value::U64(self.request_too_large)),
            ("connections_reaped".to_string(), Value::U64(self.connections_reaped)),
        ])
    }
}

/// Counter snapshot of the incremental-recomputation engine behind the
/// `edit` op: how much work the subtree-hash memo actually saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalCounters {
    /// Edits applied (successful `edit` requests).
    pub edits: u64,
    /// Nodes whose confidence ran through the combination kernel.
    pub nodes_recomputed: u64,
    /// Nodes answered from the subtree-hash memo without float work.
    pub nodes_reused: u64,
}

/// Counter snapshot of plan compilation: how many full compiles ran and
/// how much of their propagation work the (shared) subtree memo
/// answered. `(nodes_recomputed + nodes_reused) / nodes_recomputed` is
/// the subtree-dedup ratio the multi-tenant bench and CI smoke assert
/// on — a fleet of template variants sharing a global memo store should
/// push it well above 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileCounters {
    /// Full compiles (cold `load`s and cache-miss recompiles).
    pub compiles: u64,
    /// Nodes whose confidence ran through the combination kernel.
    pub nodes_recomputed: u64,
    /// Nodes answered from the memo store without float work.
    pub nodes_reused: u64,
}

impl CompileCounters {
    /// `(recomputed + reused) / recomputed` — how many nodes were
    /// evaluated per node actually computed. 1.0 with no sharing.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.nodes_recomputed == 0 {
            return 1.0;
        }
        (self.nodes_recomputed + self.nodes_reused) as f64 / self.nodes_recomputed as f64
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("compiles".to_string(), Value::U64(self.compiles)),
            ("nodes_recomputed".to_string(), Value::U64(self.nodes_recomputed)),
            ("nodes_reused".to_string(), Value::U64(self.nodes_reused)),
            ("subtree_dedup_ratio".to_string(), Value::F64(self.dedup_ratio())),
        ])
    }
}

/// Counter snapshot of the durability layer: WAL traffic, snapshot
/// activity, and what the last startup had to recover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// WAL records appended (acked mutations) since startup.
    pub records_appended: u64,
    /// `fdatasync` calls issued by the WAL (appends under
    /// `--fsync always`, plus drain-time flushes).
    pub fsyncs: u64,
    /// WAL records replayed at the last startup.
    pub records_replayed: u64,
    /// Snapshots written since startup.
    pub snapshots_written: u64,
    /// Torn WAL tails truncated at startup (0 or 1 per process life).
    pub torn_tail_recoveries: u64,
}

impl DurabilityCounters {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("records_appended".to_string(), Value::U64(self.records_appended)),
            ("fsyncs".to_string(), Value::U64(self.fsyncs)),
            ("records_replayed".to_string(), Value::U64(self.records_replayed)),
            ("snapshots_written".to_string(), Value::U64(self.snapshots_written)),
            ("torn_tail_recoveries".to_string(), Value::U64(self.torn_tail_recoveries)),
        ])
    }
}

/// Counter snapshot of the self-healing storage pipeline: scrub
/// verdicts, repairs by source, quarantines, and the read-only
/// degradation window ([`crate::engine`], DESIGN §15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageHealthCounters {
    /// `scrub` passes completed (wire op or startup verification).
    pub scrubs: u64,
    /// Snapshot objects whose content hash was verified.
    pub objects_checked: u64,
    /// Objects that failed their content-hash check (bit-rot,
    /// truncation, tampering).
    pub corrupt_detected: u64,
    /// Corrupt objects re-serialized from the intact in-memory copy.
    pub repaired_from_memory: u64,
    /// Corrupt objects rebuilt by replaying WAL records.
    pub repaired_from_wal: u64,
    /// Corrupt objects moved to `quarantine/` with no intact source to
    /// repair from; their versions answer `data_corrupted`.
    pub quarantined: u64,
    /// Times the engine entered read-only degraded mode.
    pub read_only_entered: u64,
    /// Times the engine recovered back to read-write.
    pub read_only_exited: u64,
    /// WAL appends that failed (each one refused a mutation).
    pub append_failures: u64,
    /// Whether the engine is in read-only mode right now.
    pub read_only: bool,
}

impl StorageHealthCounters {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("scrubs".to_string(), Value::U64(self.scrubs)),
            ("objects_checked".to_string(), Value::U64(self.objects_checked)),
            ("corrupt_detected".to_string(), Value::U64(self.corrupt_detected)),
            ("repaired_from_memory".to_string(), Value::U64(self.repaired_from_memory)),
            ("repaired_from_wal".to_string(), Value::U64(self.repaired_from_wal)),
            ("quarantined".to_string(), Value::U64(self.quarantined)),
            ("read_only_entered".to_string(), Value::U64(self.read_only_entered)),
            ("read_only_exited".to_string(), Value::U64(self.read_only_exited)),
            ("append_failures".to_string(), Value::U64(self.append_failures)),
            ("read_only".to_string(), Value::Bool(self.read_only)),
        ])
    }
}

/// Aggregate service statistics, dumped by `stats` and on shutdown.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    per_op: [OpStats; 13],
    robustness: RobustnessCounters,
    rejections: Histogram,
    incremental: IncrementalCounters,
    compile: CompileCounters,
    durability: DurabilityCounters,
    storage_health: StorageHealthCounters,
}

impl ServiceStats {
    /// Counts one fault-tolerance event.
    pub fn note(&mut self, event: RobustnessEvent) {
        self.robustness.note(event);
    }

    /// Counts one rejected request (shed with `overloaded` or discarded
    /// as `request_too_large`) **and** records how long the server took
    /// to answer the rejection. Shed traffic used to be invisible to
    /// every histogram — a p99 quoted under overload silently excluded
    /// exactly the requests overload hurt most.
    pub fn note_rejection(&mut self, event: RobustnessEvent, latency_us: u64) {
        self.robustness.note(event);
        self.rejections.record(latency_us);
    }

    /// The rejection-latency histogram (answer time of shed and
    /// too-large requests).
    #[must_use]
    pub fn rejections(&self) -> &Histogram {
        &self.rejections
    }

    /// Snapshot of the fault-tolerance counters.
    #[must_use]
    pub fn robustness(&self) -> RobustnessCounters {
        self.robustness
    }

    /// Counts one applied edit and the recomputation work it cost/saved.
    pub fn note_edit(&mut self, nodes_recomputed: u64, nodes_reused: u64) {
        self.incremental.edits += 1;
        self.incremental.nodes_recomputed += nodes_recomputed;
        self.incremental.nodes_reused += nodes_reused;
    }

    /// Snapshot of the incremental-recomputation counters.
    #[must_use]
    pub fn incremental(&self) -> IncrementalCounters {
        self.incremental
    }

    /// Counts one full compile and the propagation work the memo store
    /// saved it.
    pub fn note_compile(&mut self, nodes_recomputed: u64, nodes_reused: u64) {
        self.compile.compiles += 1;
        self.compile.nodes_recomputed += nodes_recomputed;
        self.compile.nodes_reused += nodes_reused;
    }

    /// Snapshot of the compile counters.
    #[must_use]
    pub fn compile(&self) -> CompileCounters {
        self.compile
    }

    /// Mutable access to the durability counters (the engine's WAL and
    /// snapshot paths bump these as they go).
    pub fn durability_mut(&mut self) -> &mut DurabilityCounters {
        &mut self.durability
    }

    /// Snapshot of the durability counters.
    #[must_use]
    pub fn durability(&self) -> DurabilityCounters {
        self.durability
    }

    /// Mutable access to the storage-health counters (scrub, repair,
    /// and read-only transitions bump these as they go).
    pub fn storage_health_mut(&mut self) -> &mut StorageHealthCounters {
        &mut self.storage_health
    }

    /// Snapshot of the storage-health counters.
    #[must_use]
    pub fn storage_health(&self) -> StorageHealthCounters {
        self.storage_health
    }

    /// Records one handled request for `op`.
    pub fn record(&mut self, op: &str, latency_us: u64, errored: bool) {
        if let Some(idx) = TRACKED_OPS.iter().position(|name| *name == op) {
            let stats = &mut self.per_op[idx];
            stats.requests += 1;
            if errored {
                stats.errors += 1;
            }
            stats.latency.record(latency_us);
        }
    }

    /// Stats for one operation, when tracked.
    #[must_use]
    pub fn op(&self, op: &str) -> Option<&OpStats> {
        TRACKED_OPS.iter().position(|name| *name == op).map(|idx| &self.per_op[idx])
    }

    /// Total requests across all operations.
    #[must_use]
    pub fn total_requests(&self) -> u64 {
        self.per_op.iter().map(|s| s.requests).sum()
    }

    /// Renders the snapshot as the wire `result` object.
    #[must_use]
    pub fn to_value(
        &self,
        cache: CacheCounters,
        cache_entries: usize,
        cache_capacity: usize,
    ) -> Value {
        let ops: Vec<(String, Value)> = TRACKED_OPS
            .iter()
            .zip(&self.per_op)
            .filter(|(_, s)| s.requests > 0)
            .map(|(name, s)| {
                (
                    (*name).to_string(),
                    Value::Object(vec![
                        ("requests".to_string(), Value::U64(s.requests)),
                        ("errors".to_string(), Value::U64(s.errors)),
                        (
                            "latency_us".to_string(),
                            Value::Object(vec![
                                ("p50".to_string(), Value::U64(s.latency.quantile_us(0.50))),
                                ("p99".to_string(), Value::U64(s.latency.quantile_us(0.99))),
                                ("mean".to_string(), Value::F64(s.latency.mean_us())),
                                ("max".to_string(), Value::U64(s.latency.max_us())),
                                ("summary".to_string(), s.latency.summary_value()),
                            ]),
                        ),
                    ]),
                )
            })
            .collect();
        let total = cache.hits + cache.misses;
        let hit_rate = if total == 0 { 0.0 } else { cache.hits as f64 / total as f64 };
        let robustness = {
            let Value::Object(mut fields) = self.robustness.to_value() else { unreachable!() };
            fields.push((
                "rejection_latency_us".to_string(),
                Value::Object(vec![
                    ("count".to_string(), Value::U64(self.rejections.count())),
                    ("p50".to_string(), Value::U64(self.rejections.quantile_us(0.50))),
                    ("p99".to_string(), Value::U64(self.rejections.quantile_us(0.99))),
                    ("mean".to_string(), Value::F64(self.rejections.mean_us())),
                    ("max".to_string(), Value::U64(self.rejections.max_us())),
                    ("summary".to_string(), self.rejections.summary_value()),
                ]),
            ));
            Value::Object(fields)
        };
        Value::Object(vec![
            ("requests".to_string(), Value::U64(self.total_requests())),
            ("ops".to_string(), Value::Object(ops)),
            ("robustness".to_string(), robustness),
            ("durability".to_string(), self.durability.to_value()),
            ("storage_health".to_string(), self.storage_health.to_value()),
            (
                "incremental".to_string(),
                Value::Object(vec![
                    ("edits".to_string(), Value::U64(self.incremental.edits)),
                    ("nodes_recomputed".to_string(), Value::U64(self.incremental.nodes_recomputed)),
                    ("nodes_reused".to_string(), Value::U64(self.incremental.nodes_reused)),
                ]),
            ),
            ("compile".to_string(), self.compile.to_value()),
            (
                "plan_cache".to_string(),
                Value::Object(vec![
                    ("entries".to_string(), Value::U64(cache_entries as u64)),
                    ("capacity".to_string(), Value::U64(cache_capacity as u64)),
                    ("hits".to_string(), Value::U64(cache.hits)),
                    ("misses".to_string(), Value::U64(cache.misses)),
                    ("evictions".to_string(), Value::U64(cache.evictions)),
                    ("hit_rate".to_string(), Value::F64(hit_rate)),
                ]),
            ),
        ])
    }

    /// Enumerates every counter and histogram of this snapshot into the
    /// unified metrics registry — the `stats` blocks above are views
    /// over exactly this data, so the `metrics` op and the `stats` op
    /// can never disagree.
    pub fn collect_metrics(&self, reg: &mut crate::telemetry::MetricsRegistry) {
        for (name, s) in TRACKED_OPS.iter().zip(&self.per_op) {
            if s.requests == 0 {
                continue;
            }
            let label = [("op", (*name).to_string())];
            reg.counter("depcase_requests_total", "Requests handled per op", &label, s.requests);
            reg.counter(
                "depcase_request_errors_total",
                "Requests answered with an error per op",
                &label,
                s.errors,
            );
            reg.histogram(
                "depcase_request_latency_us",
                "End-to-end handling latency per op (log2 µs buckets)",
                &label,
                &s.latency,
            );
        }
        if self.rejections.count() > 0 {
            reg.histogram(
                "depcase_rejection_latency_us",
                "Answer latency of shed and too-large requests",
                &[],
                &self.rejections,
            );
        }
        let r = self.robustness;
        for (event, n) in [
            ("panic", r.panics),
            ("respawn", r.respawns),
            ("deadline_exceeded", r.deadline_exceeded),
            ("overloaded", r.overloaded),
            ("request_too_large", r.request_too_large),
            ("connection_reaped", r.connections_reaped),
        ] {
            reg.counter(
                "depcase_robustness_events_total",
                "Fault-tolerance events by kind",
                &[("event", event.to_string())],
                n,
            );
        }
        let d = self.durability;
        reg.counter(
            "depcase_wal_records_appended_total",
            "WAL records appended",
            &[],
            d.records_appended,
        );
        reg.counter("depcase_wal_fsyncs_total", "WAL fsync calls issued", &[], d.fsyncs);
        reg.counter(
            "depcase_wal_records_replayed_total",
            "WAL records replayed at startup",
            &[],
            d.records_replayed,
        );
        reg.counter(
            "depcase_snapshots_written_total",
            "Snapshots written",
            &[],
            d.snapshots_written,
        );
        reg.counter(
            "depcase_torn_tail_recoveries_total",
            "Torn WAL tails truncated at startup",
            &[],
            d.torn_tail_recoveries,
        );
        let h = self.storage_health;
        for (event, n) in [
            ("scrub", h.scrubs),
            ("object_checked", h.objects_checked),
            ("corrupt_detected", h.corrupt_detected),
            ("repaired_from_memory", h.repaired_from_memory),
            ("repaired_from_wal", h.repaired_from_wal),
            ("quarantined", h.quarantined),
            ("read_only_entered", h.read_only_entered),
            ("read_only_exited", h.read_only_exited),
            ("append_failure", h.append_failures),
        ] {
            reg.counter(
                "depcase_storage_events_total",
                "Self-healing storage events by kind",
                &[("event", event.to_string())],
                n,
            );
        }
        reg.gauge(
            "depcase_read_only",
            "1 while the engine is in read-only degraded mode",
            &[],
            if h.read_only { 1.0 } else { 0.0 },
        );
        let i = self.incremental;
        reg.counter("depcase_edits_total", "Edits applied", &[], i.edits);
        reg.counter(
            "depcase_nodes_recomputed_total",
            "Spine nodes recomputed by edits",
            &[],
            i.nodes_recomputed,
        );
        reg.counter(
            "depcase_nodes_reused_total",
            "Spine nodes answered from the memo",
            &[],
            i.nodes_reused,
        );
        let c = self.compile;
        reg.counter("depcase_compiles_total", "Full plan compiles", &[], c.compiles);
        reg.counter(
            "depcase_compile_nodes_recomputed_total",
            "Compile-time nodes run through the combination kernel",
            &[],
            c.nodes_recomputed,
        );
        reg.counter(
            "depcase_compile_nodes_reused_total",
            "Compile-time nodes answered from the shared memo store",
            &[],
            c.nodes_reused,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        // Bucket 0 is 0..=1 µs — a 1 µs observation must not report as
        // 2 µs (the old `leading_zeros` boundary put it in bucket 1).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1u64 << 39), 39);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Every bucket's upper edge bounds its contents: quantiles are
        // pessimistic, never optimistic.
        for us in [0u64, 1, 2, 3, 7, 8, 9, 1023, 1024, 1025, 1 << 39] {
            assert!(us <= bucket_upper(bucket_of(us)), "{us} above its bucket edge");
        }
    }

    #[test]
    fn minimum_latency_quantiles_report_one_microsecond() {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(1);
        }
        assert_eq!(h.quantile_us(0.5), 1, "1 µs observations must not report as 2 µs");
        assert_eq!(h.quantile_us(0.99), 1);
    }

    #[test]
    fn quantiles_bound_the_observations() {
        let mut h = Histogram::default();
        for us in [10, 20, 30, 40, 1000] {
            h.record(us);
        }
        // p50 lands in the bucket of the 3rd observation (30 µs → (16,32]).
        assert_eq!(h.quantile_us(0.50), 32);
        // p99 lands in the slowest bucket (1000 µs → (512,1024]).
        assert_eq!(h.quantile_us(0.99), 1024);
        assert_eq!(h.max_us(), 1000);
        assert!((h.mean_us() - 220.0).abs() < 1e-9);
        assert_eq!(h.quantile_us(0.0), 16); // clamped to first observation
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_interpolated_us(0.5), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn interpolated_quantiles_pin_the_arithmetic() {
        // Observations land in buckets (8,16], (16,32]×2, (32,64],
        // (512,1024]; interpolation places the rank proportionally
        // between the containing bucket's edges.
        let mut h = Histogram::default();
        for us in [10, 20, 30, 40, 1000] {
            h.record(us);
        }
        // p50 → rank 3, second of 2 observations in (16,32]: 16 + 16·(2/2).
        assert_eq!(h.quantile_interpolated_us(0.50), 32.0);
        // p90/p99/p999 → rank 5 in (512,1024], clamped to the max.
        assert_eq!(h.quantile_interpolated_us(0.90), 1000.0);
        assert_eq!(h.quantile_interpolated_us(0.99), 1000.0);
        assert_eq!(h.quantile_interpolated_us(0.999), 1000.0);
        // The interpolated estimate never exceeds the bucket-edge bound.
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            assert!(h.quantile_interpolated_us(q) <= h.quantile_us(q) as f64, "q={q}");
        }
    }

    #[test]
    fn interpolation_splits_a_bucket_proportionally() {
        // 100 observations of 100 µs fill bucket (64,128]: the median
        // interpolates to the bucket midpoint, the tail to the max.
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(100);
        }
        assert_eq!(h.quantile_interpolated_us(0.50), 96.0); // 64 + 64·(50/100)
        assert_eq!(h.quantile_interpolated_us(0.999), 100.0); // clamped to max
        assert_eq!(h.buckets(), vec![(128, 100)]);
    }

    #[test]
    fn summary_fields_ride_next_to_the_raw_buckets_on_the_wire() {
        let mut s = ServiceStats::default();
        s.record("eval", 100, false);
        let v = s.to_value(CacheCounters::default(), 0, 4);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"summary\""), "{text}");
        assert!(text.contains("\"quantiles\""), "{text}");
        assert!(text.contains("\"p90\""), "{text}");
        assert!(text.contains("\"p999\""), "{text}");
        assert!(text.contains("\"buckets\":[[128,1]]"), "{text}");
    }

    #[test]
    fn trace_and_metrics_ops_are_tracked() {
        let mut s = ServiceStats::default();
        s.record("trace", 5, false);
        s.record("metrics", 7, false);
        assert_eq!(s.op("trace").unwrap().requests, 1);
        assert_eq!(s.op("metrics").unwrap().requests, 1);
        assert_eq!(s.total_requests(), 2);
    }

    #[test]
    fn per_op_records_accumulate() {
        let mut s = ServiceStats::default();
        s.record("eval", 100, false);
        s.record("eval", 200, true);
        s.record("mc", 5000, false);
        s.record("nonsense", 1, false); // ignored, not tracked
        let eval = s.op("eval").unwrap();
        assert_eq!((eval.requests, eval.errors), (2, 1));
        assert_eq!(s.total_requests(), 3);
        let v = s.to_value(CacheCounters { hits: 3, misses: 1, evictions: 0 }, 1, 64);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"hit_rate\":0.75"), "{text}");
        assert!(text.contains("\"eval\""), "{text}");
        assert!(!text.contains("\"bands\""), "untouched ops stay out: {text}");
    }

    #[test]
    fn edit_counters_accumulate_and_surface_in_the_snapshot() {
        let mut s = ServiceStats::default();
        s.note_edit(3, 0);
        s.note_edit(2, 5);
        let inc = s.incremental();
        assert_eq!(inc, IncrementalCounters { edits: 2, nodes_recomputed: 5, nodes_reused: 5 });
        // Edits never land in the latency histograms by themselves.
        assert_eq!(s.total_requests(), 0);
        let v = s.to_value(CacheCounters::default(), 0, 4);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"incremental\""), "{text}");
        assert!(text.contains("\"nodes_recomputed\":5"), "{text}");
        assert!(text.contains("\"nodes_reused\":5"), "{text}");
    }

    #[test]
    fn rejections_land_in_their_own_histogram_not_the_op_histograms() {
        let mut s = ServiceStats::default();
        s.record("eval", 100, false);
        s.note_rejection(RobustnessEvent::Overloaded, 10);
        s.note_rejection(RobustnessEvent::Overloaded, 20);
        s.note_rejection(RobustnessEvent::RequestTooLarge, 1000);
        // The counters move with the histogram — one call, one truth.
        assert_eq!(s.robustness().overloaded, 2);
        assert_eq!(s.robustness().request_too_large, 1);
        assert_eq!(s.rejections().count(), 3);
        assert_eq!(s.rejections().max_us(), 1000);
        // Shed traffic still never pollutes the per-op latencies.
        assert_eq!(s.total_requests(), 1);
        assert_eq!(s.op("eval").unwrap().latency.count(), 1);
        let v = s.to_value(CacheCounters::default(), 0, 4);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"rejection_latency_us\""), "{text}");
        assert!(text.contains("\"count\":3"), "{text}");
        assert!(text.contains("\"max\":1000"), "{text}");
    }

    #[test]
    fn storage_health_counters_surface_in_the_snapshot() {
        let mut s = ServiceStats::default();
        s.storage_health_mut().scrubs = 2;
        s.storage_health_mut().objects_checked = 9;
        s.storage_health_mut().corrupt_detected = 3;
        s.storage_health_mut().repaired_from_memory = 1;
        s.storage_health_mut().repaired_from_wal = 1;
        s.storage_health_mut().quarantined = 1;
        s.storage_health_mut().read_only = true;
        // `scrub` is a tracked op: its latency lands in the per-op table.
        s.record("scrub", 50, false);
        assert_eq!(s.op("scrub").unwrap().requests, 1);
        let v = s.to_value(CacheCounters::default(), 0, 4);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"storage_health\""), "{text}");
        assert!(text.contains("\"corrupt_detected\":3"), "{text}");
        assert!(text.contains("\"repaired_from_memory\":1"), "{text}");
        assert!(text.contains("\"quarantined\":1"), "{text}");
        assert!(text.contains("\"read_only\":true"), "{text}");
        assert!(text.contains("\"scrub\""), "{text}");
    }

    #[test]
    fn robustness_events_count_without_touching_histograms() {
        let mut s = ServiceStats::default();
        s.record("eval", 100, false);
        s.note(RobustnessEvent::Panic);
        s.note(RobustnessEvent::Respawn);
        s.note(RobustnessEvent::Overloaded);
        s.note(RobustnessEvent::Overloaded);
        s.note(RobustnessEvent::DeadlineExceeded);
        s.note(RobustnessEvent::RequestTooLarge);
        s.note(RobustnessEvent::ConnectionReaped);
        let r = s.robustness();
        assert_eq!(r.panics, 1);
        // Durability counters surface in the same snapshot.
        s.durability_mut().records_appended = 7;
        s.durability_mut().torn_tail_recoveries = 1;
        let text = serde_json::to_string(&crate::protocol::Json(s.to_value(
            CacheCounters::default(),
            0,
            4,
        )))
        .unwrap();
        assert!(text.contains("\"durability\""), "{text}");
        assert!(text.contains("\"records_appended\":7"), "{text}");
        assert!(text.contains("\"torn_tail_recoveries\":1"), "{text}");
        assert_eq!(r.respawns, 1);
        assert_eq!(r.overloaded, 2);
        assert_eq!(r.deadline_exceeded, 1);
        assert_eq!(r.request_too_large, 1);
        assert_eq!(r.connections_reaped, 1);
        // Shed requests never land in the latency histograms.
        assert_eq!(s.total_requests(), 1);
        assert_eq!(s.op("eval").unwrap().latency.count(), 1);
        // The snapshot always carries the robustness block, zeros or not.
        let v = s.to_value(CacheCounters::default(), 0, 4);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"robustness\""), "{text}");
        assert!(text.contains("\"respawns\":1"), "{text}");
    }
}
