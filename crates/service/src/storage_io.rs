//! Syscall-granularity storage abstraction with deterministic fault
//! injection and an in-memory crash simulator.
//!
//! The WAL ([`crate::wal`]) and snapshot store ([`crate::snapshot`])
//! perform a small, closed set of file operations — read, append,
//! fsync, atomic create, rename, list. [`StorageIo`] names that set as
//! a trait so the durability stack can run against three disks:
//!
//! - [`RealIo`] — the actual filesystem, used in production;
//! - [`FaultyIo`] — a decorator injecting EIO, ENOSPC, short writes,
//!   fsync failures, torn (acked-but-partial) writes, and read-side
//!   bit-rot at configured rates from a **seeded** stream, extending
//!   the [`crate::faults`] spec grammar down to the syscall layer
//!   (`seed=42,eio=0.02,enospc_after=1MiB,short_write=0.05,torn=0.05,bitrot=0.01`);
//! - [`SimIo`] — an in-memory filesystem that distinguishes *durable*
//!   bytes (fsynced) from *live* bytes (written but not yet synced) and
//!   can journal a full crash image after every mutating operation, so
//!   a test can simulate a power cut at **every** IO boundary of a
//!   workload and recover from each one (the crash-consistency matrix,
//!   DESIGN §15).
//!
//! Fault decisions reuse the counter-seeded discipline of
//! [`crate::faults`]: the decision for draw *n* at a site depends only
//! on `(seed, site, n)`, never on wall-clock time or interleaving, so
//! chaos tests assert exact invariants instead of "probably fine".

use crate::faults::FaultSite;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-site salts for the storage fault stream, continuing the
/// SplitMix64-spaced sequence of [`crate::faults`] so storage decisions
/// never alias the service-layer panic/delay/drop streams.
const SALT_EIO: u64 = 0x78DD_E6E5_FD29_F054;
const SALT_SHORT_WRITE: u64 = 0x1715_609F_7C74_6C69;
const SALT_TORN: u64 = 0xB54C_DA58_FBBE_E87E;
const SALT_BITROT: u64 = 0x5384_5412_7B09_6493;

/// Every file operation the durability stack performs, as a trait so
/// the same WAL/snapshot/engine code runs against the real filesystem,
/// a fault-injecting decorator, or an in-memory crash simulator.
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Reads a whole file. Missing files are `NotFound`.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or replaces) `path` with exactly `bytes`, then syncs the
    /// data — the write half of the atomic tmp-then-rename protocol.
    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Opens `path` for appending (creating it if absent).
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>>;

    /// Atomically renames `from` to `to` (same directory tree).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Creates a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// True when a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Lists the files directly inside `path` (no recursion, no
    /// directories).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// An open append-mode file handle behind [`StorageIo::open_append`].
pub trait AppendFile: Send + std::fmt::Debug {
    /// Appends `bytes` at the end of the file (one write syscall).
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Forces appended bytes to stable storage (`fdatasync`).
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates the file to `len` bytes — used to roll a partial
    /// (failed) append back out and to empty the WAL after a snapshot.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// RealIo
// ---------------------------------------------------------------------------

/// The production [`StorageIo`]: a thin passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl RealIo {
    /// A shared handle, for threading through constructors.
    #[must_use]
    pub fn shared() -> Arc<dyn StorageIo> {
        Arc::new(RealIo)
    }
}

/// [`AppendFile`] over a real `std::fs::File` in append mode.
#[derive(Debug)]
struct RealAppend {
    file: std::fs::File,
}

impl AppendFile for RealAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }
}

impl StorageIo for RealIo {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealAppend { file }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }
}

// ---------------------------------------------------------------------------
// StorageFaultPlan + FaultyIo
// ---------------------------------------------------------------------------

/// Counts of storage faults actually injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageInjectedCounts {
    /// Write or fsync calls failed with EIO (nothing written).
    pub eio: u64,
    /// Writes failed with ENOSPC after the byte budget ran out.
    pub enospc: u64,
    /// Writes that landed a partial prefix and then errored.
    pub short_writes: u64,
    /// Writes that landed a partial prefix but *reported success* — the
    /// lying-disk case only checksums and scrub can catch.
    pub torn: u64,
    /// Reads that flipped (and persisted) one bit of the file.
    pub bitrot: u64,
}

/// A seeded, rate-based storage fault plan, parsed from the same
/// `key=value,...` grammar as [`crate::faults::FaultPlan`].
///
/// Keys: `seed`; rates in `[0,1]` for `eio` (failed writes/fsyncs),
/// `short_write` (partial write then error), `torn` (partial write
/// reported as success), `bitrot` (one bit flipped per faulted read,
/// persisted back — silent media decay); optional `eio_cap` /
/// `short_write_cap` / `torn_cap` / `bitrot_cap` bounds; and
/// `enospc_after=SIZE` (e.g. `64KiB`, `1MiB`, plain bytes, suffixes
/// `B`/`KiB`/`MiB`/`GiB`) — total bytes writable before every further
/// write answers ENOSPC.
#[derive(Debug)]
pub struct StorageFaultPlan {
    seed: u64,
    eio: FaultSite,
    short_write: FaultSite,
    torn: FaultSite,
    bitrot: FaultSite,
    /// Byte budget; `u64::MAX` means unlimited.
    limit: AtomicU64,
    written: AtomicU64,
    enospc_fired: AtomicU64,
}

/// Parses `64KiB`-style sizes for `enospc_after`.
fn parse_size(value: &str) -> Result<u64, String> {
    let (digits, unit) = match value.find(|c: char| !c.is_ascii_digit()) {
        Some(split) => value.split_at(split),
        None => (value, ""),
    };
    let n: u64 =
        digits.parse().map_err(|_| format!("size must start with an integer, got `{value}`"))?;
    let scale = match unit {
        "" | "B" => 1,
        "KiB" => 1 << 10,
        "MiB" => 1 << 20,
        "GiB" => 1 << 30,
        other => return Err(format!("unknown size suffix `{other}` (use B/KiB/MiB/GiB)")),
    };
    n.checked_mul(scale).ok_or_else(|| format!("size `{value}` overflows"))
}

impl StorageFaultPlan {
    /// Parses a storage fault spec string (see the type docs). Unknown
    /// or malformed keys are an error naming the offending field — a
    /// typo must never degrade to a silent no-op plan.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse(spec: &str) -> Result<StorageFaultPlan, String> {
        let mut plan = StorageFaultPlan {
            seed: 0,
            eio: FaultSite::default(),
            short_write: FaultSite::default(),
            torn: FaultSite::default(),
            bitrot: FaultSite::default(),
            limit: AtomicU64::new(u64::MAX),
            written: AtomicU64::new(0),
            enospc_fired: AtomicU64::new(0),
        };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("storage fault spec field `{part}` is not KEY=VALUE"))?;
            let rate = |site: &str| -> Result<f64, String> {
                let r: f64 = value.parse().map_err(|_| {
                    format!("storage fault rate `{site}` must be a number, got `{value}`")
                })?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("storage fault rate `{site}` must be in [0,1], got {r}"));
                }
                Ok(r)
            };
            let count = |field: &str| -> Result<u64, String> {
                value.parse().map_err(|_| {
                    format!(
                        "storage fault field `{field}` must be a non-negative integer, got `{value}`"
                    )
                })
            };
            match key {
                "seed" => plan.seed = count("seed")?,
                "eio" => plan.eio.rate = rate("eio")?,
                "short_write" => plan.short_write.rate = rate("short_write")?,
                "torn" => plan.torn.rate = rate("torn")?,
                "bitrot" => plan.bitrot.rate = rate("bitrot")?,
                "eio_cap" => plan.eio.cap = Some(count("eio_cap")?),
                "short_write_cap" => plan.short_write.cap = Some(count("short_write_cap")?),
                "torn_cap" => plan.torn.cap = Some(count("torn_cap")?),
                "bitrot_cap" => plan.bitrot.cap = Some(count("bitrot_cap")?),
                "enospc_after" => {
                    let size = parse_size(value)
                        .map_err(|e| format!("storage fault field `enospc_after`: {e}"))?;
                    plan.limit = AtomicU64::new(size);
                }
                other => return Err(format!("unknown storage fault spec field `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> StorageInjectedCounts {
        StorageInjectedCounts {
            eio: self.eio.count(),
            enospc: self.enospc_fired.load(Ordering::SeqCst),
            short_writes: self.short_write.count(),
            torn: self.torn.count(),
            bitrot: self.bitrot.count(),
        }
    }
}

/// A [`StorageIo`] decorator that injects deterministic faults on the
/// way to an inner implementation (usually [`RealIo`]).
///
/// Write-path faults fire in a fixed order per write: EIO (nothing
/// lands), then the ENOSPC byte budget (the remaining budget lands,
/// then the error), then a short write (a prefix lands, then the
/// error), then a torn write (a prefix lands and the call *succeeds* —
/// the lying disk). Fsync calls can fail with EIO. Reads can flip one
/// bit and persist the flip back through the inner IO, so a rotted
/// object stays rotted across re-reads — exactly what scrub must
/// detect and repair.
#[derive(Debug)]
pub struct FaultyIo {
    inner: Arc<dyn StorageIo>,
    plan: Arc<StorageFaultPlan>,
}

impl FaultyIo {
    /// Wraps `inner` with the faults described by `plan`.
    #[must_use]
    pub fn new(inner: Arc<dyn StorageIo>, plan: StorageFaultPlan) -> FaultyIo {
        FaultyIo { inner, plan: Arc::new(plan) }
    }

    /// Parses `spec` (see [`StorageFaultPlan::parse`]) and wraps
    /// `inner`.
    ///
    /// # Errors
    ///
    /// The spec-parse error, naming the offending field.
    pub fn parse(inner: Arc<dyn StorageIo>, spec: &str) -> Result<FaultyIo, String> {
        Ok(FaultyIo::new(inner, StorageFaultPlan::parse(spec)?))
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> StorageInjectedCounts {
        self.plan.injected()
    }

    /// Exhausts the ENOSPC budget immediately: every further write
    /// answers ENOSPC until [`FaultyIo::restore_space`]. Deterministic
    /// disk-full at a point a test chooses.
    pub fn exhaust_space(&self) {
        self.plan.limit.store(self.plan.written.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    /// Lifts the ENOSPC budget: writes succeed again, as if space was
    /// freed. Pairs with `enospc_after=` or [`FaultyIo::exhaust_space`].
    pub fn restore_space(&self) {
        self.plan.limit.store(u64::MAX, Ordering::SeqCst);
    }
}

fn eio(context: &str) -> io::Error {
    io::Error::other(format!("injected EIO: {context}"))
}

fn enospc(context: &str) -> io::Error {
    io::Error::other(format!("injected ENOSPC: {context} (byte budget exhausted)"))
}

impl StorageFaultPlan {
    /// The shared write-path fault ladder. `write` lands a prefix of
    /// `bytes`; returns `Ok(())` only when the full buffer landed (or a
    /// torn write lied about it).
    fn faulted_write(
        &self,
        context: &str,
        bytes: &[u8],
        mut write: impl FnMut(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        if self.eio.fire(self.seed, SALT_EIO) {
            return Err(eio(context));
        }
        let len = bytes.len() as u64;
        let limit = self.limit.load(Ordering::SeqCst);
        let written = self.written.load(Ordering::SeqCst);
        if written.saturating_add(len) > limit {
            let room = usize::try_from(limit.saturating_sub(written)).unwrap_or(usize::MAX);
            if room > 0 {
                write(&bytes[..room])?;
            }
            self.written.store(limit, Ordering::SeqCst);
            self.enospc_fired.fetch_add(1, Ordering::SeqCst);
            return Err(enospc(context));
        }
        if self.short_write.fire(self.seed, SALT_SHORT_WRITE) {
            let prefix = bytes.len() / 2;
            if prefix > 0 {
                write(&bytes[..prefix])?;
                self.written.fetch_add(prefix as u64, Ordering::SeqCst);
            }
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected short write: {context} ({prefix} of {} bytes)", bytes.len()),
            ));
        }
        if self.torn.fire(self.seed, SALT_TORN) {
            // The lying disk: a prefix lands, the call reports success.
            let prefix = bytes.len() - bytes.len() / 4 - 1.min(bytes.len());
            write(&bytes[..prefix])?;
            self.written.fetch_add(prefix as u64, Ordering::SeqCst);
            return Ok(());
        }
        write(bytes)?;
        self.written.fetch_add(len, Ordering::SeqCst);
        Ok(())
    }
}

/// [`AppendFile`] wrapper applying the write-path fault ladder.
#[derive(Debug)]
struct FaultyAppend {
    inner: Box<dyn AppendFile>,
    plan: Arc<StorageFaultPlan>,
}

impl AppendFile for FaultyAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let inner = &mut self.inner;
        self.plan.faulted_write("append", bytes, |chunk| inner.append(chunk))
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.plan.eio.fire(self.plan.seed, SALT_EIO) {
            return Err(eio("fsync"));
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // Rollback and WAL-reset truncations stay reliable: injecting
        // here would make every write fault unrecoverable by definition,
        // which models a dead disk, not a flaky one.
        self.inner.truncate(len)
    }
}

impl StorageIo for FaultyIo {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read_file(path)?;
        if !bytes.is_empty() && self.plan.bitrot.fire(self.plan.seed, SALT_BITROT) {
            // Flip one deterministic bit and persist it: media decay is
            // sticky, so scrub sees the same corruption every pass.
            let n = self.plan.bitrot.count();
            let mut rng = StdRng::seed_from_u64(
                self.plan.seed ^ SALT_BITROT.wrapping_add(n.wrapping_mul(2).wrapping_add(1)),
            );
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 1 << rng.gen_range(0..8_u8);
            self.inner.write_new(path, &bytes)?;
        }
        Ok(bytes)
    }

    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut staged: Vec<u8> = Vec::new();
        self.plan.faulted_write("write", bytes, |chunk| {
            staged.extend_from_slice(chunk);
            Ok(())
        })?;
        self.inner.write_new(path, &staged)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let inner = self.inner.open_append(path)?;
        Ok(Box::new(FaultyAppend { inner, plan: Arc::clone(&self.plan) }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

// ---------------------------------------------------------------------------
// SimIo
// ---------------------------------------------------------------------------

/// One simulated file: the bytes that would survive a power cut
/// (`durable`) and the bytes the process has written (`live`). A sync
/// promotes live to durable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimFile {
    /// Bytes guaranteed on stable storage.
    pub durable: Vec<u8>,
    /// Bytes as the process sees them (durable prefix + unsynced tail).
    pub live: Vec<u8>,
}

/// A full filesystem image captured after one mutating IO operation —
/// one cell of the crash-consistency matrix.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// 1-based index of the mutating operation this image follows.
    pub op_index: u64,
    /// A short label of the operation, for diagnostics.
    pub op: String,
    /// Every file's durable/live state at that instant.
    pub files: BTreeMap<PathBuf, SimFile>,
}

/// How the unsynced tail of each file resolves when a [`CrashImage`]
/// is turned back into a bootable filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailVariant {
    /// Only durable bytes survive: every unsynced write is lost.
    Durable,
    /// Everything written survives: the OS happened to flush it all.
    Full,
    /// Half of each unsynced tail survives: the classic torn page.
    Torn,
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFile>,
    dirs: Vec<PathBuf>,
    ops: u64,
    journal: Option<Vec<CrashImage>>,
}

impl SimState {
    /// Records one mutating operation, journaling a crash image when
    /// recording is on.
    fn mutated(&mut self, op: String) {
        self.ops += 1;
        let op_index = self.ops;
        if let Some(journal) = &mut self.journal {
            let files = self.files.clone();
            journal.push(CrashImage { op_index, op, files });
        }
    }
}

/// An in-memory [`StorageIo`] tracking durable vs. live bytes per file,
/// with an optional journal of crash images after every mutating
/// operation.
///
/// Two documented simplifications, both *stricter* than a metadata-
/// journaling filesystem in the directions the tests care about:
/// [`StorageIo::write_new`] makes the file durable immediately (it
/// syncs before returning anyway), and renames are atomic and durable
/// (the rename either fully happened or fully did not — the guarantee
/// ext4/data=ordered gives the tmp-then-rename protocol).
#[derive(Debug, Clone, Default)]
pub struct SimIo {
    state: Arc<Mutex<SimState>>,
}

impl SimIo {
    /// An empty in-memory filesystem, journal off.
    #[must_use]
    pub fn new() -> SimIo {
        SimIo::default()
    }

    /// An empty in-memory filesystem that journals a [`CrashImage`]
    /// after every mutating operation.
    #[must_use]
    pub fn recording() -> SimIo {
        let sim = SimIo::default();
        crate::lock_unpoisoned(&sim.state).journal = Some(Vec::new());
        sim
    }

    /// Boots a filesystem from a crash image: every file's unsynced
    /// tail resolves per `variant`, modeling what a power cut at that
    /// operation could have left on disk.
    #[must_use]
    pub fn from_image(image: &CrashImage, variant: TailVariant) -> SimIo {
        let mut files = BTreeMap::new();
        for (path, file) in &image.files {
            let durable = file.durable.clone();
            let content = match variant {
                TailVariant::Durable => durable,
                TailVariant::Full => file.live.clone(),
                TailVariant::Torn => {
                    let tail = file.live.len().saturating_sub(file.durable.len());
                    let keep = file.durable.len() + tail / 2;
                    file.live[..keep].to_vec()
                }
            };
            files.insert(path.clone(), SimFile { durable: content.clone(), live: content });
        }
        let sim = SimIo::default();
        crate::lock_unpoisoned(&sim.state).files = files;
        sim
    }

    /// Mutating IO operations performed so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        crate::lock_unpoisoned(&self.state).ops
    }

    /// A copy of the journal recorded so far (empty when recording is
    /// off).
    #[must_use]
    pub fn crash_images(&self) -> Vec<CrashImage> {
        crate::lock_unpoisoned(&self.state).journal.clone().unwrap_or_default()
    }

    /// The current live bytes of `path`, for white-box assertions.
    #[must_use]
    pub fn live_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        crate::lock_unpoisoned(&self.state).files.get(path).map(|f| f.live.clone())
    }

    /// Overwrites `path`'s bytes in place without journaling — the
    /// test-side hook for planting corruption (bit-rot, truncation)
    /// that scrub and recovery must then survive.
    pub fn corrupt(&self, path: &Path, bytes: Vec<u8>) {
        let mut state = crate::lock_unpoisoned(&self.state);
        state.files.insert(path.to_path_buf(), SimFile { durable: bytes.clone(), live: bytes });
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{} not found", path.display()))
}

/// [`AppendFile`] over one [`SimIo`] path; operations mutate the shared
/// state under its mutex.
#[derive(Debug)]
struct SimAppend {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
}

impl AppendFile for SimAppend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        let file = state.files.entry(self.path.clone()).or_default();
        file.live.extend_from_slice(bytes);
        state.mutated(format!("append {} bytes to {}", bytes.len(), self.path.display()));
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        let file = state.files.entry(self.path.clone()).or_default();
        file.durable = file.live.clone();
        state.mutated(format!("fsync {}", self.path.display()));
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        let file = state.files.entry(self.path.clone()).or_default();
        let len = usize::try_from(len).unwrap_or(usize::MAX).min(file.live.len());
        file.live.truncate(len);
        file.durable.truncate(len.min(file.durable.len()));
        state.mutated(format!("truncate {} to {len}", self.path.display()));
        Ok(())
    }
}

impl StorageIo for SimIo {
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = crate::lock_unpoisoned(&self.state);
        state.files.get(path).map(|f| f.live.clone()).ok_or_else(|| not_found(path))
    }

    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        state
            .files
            .insert(path.to_path_buf(), SimFile { durable: bytes.to_vec(), live: bytes.to_vec() });
        state.mutated(format!("write {} bytes to {}", bytes.len(), path.display()));
        Ok(())
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn AppendFile>> {
        let mut state = crate::lock_unpoisoned(&self.state);
        state.files.entry(path.to_path_buf()).or_default();
        Ok(Box::new(SimAppend { state: Arc::clone(&self.state), path: path.to_path_buf() }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        let file = state.files.remove(from).ok_or_else(|| not_found(from))?;
        state.files.insert(to.to_path_buf(), file);
        state.mutated(format!("rename {} to {}", from.display(), to.display()));
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = crate::lock_unpoisoned(&self.state);
        if !state.dirs.contains(&path.to_path_buf()) {
            state.dirs.push(path.to_path_buf());
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let state = crate::lock_unpoisoned(&self.state);
        state.files.contains_key(path) || state.dirs.iter().any(|d| d == path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let state = crate::lock_unpoisoned(&self.state);
        Ok(state.files.keys().filter(|p| p.parent() == Some(path)).cloned().collect())
    }
}

/// Renders injected-fault counts as a compact diagnostic string, for
/// bench reports and logs.
#[must_use]
pub fn injected_summary(counts: &StorageInjectedCounts) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "eio={} enospc={} short_writes={} torn={} bitrot={}",
        counts.eio, counts.enospc, counts.short_writes, counts.torn, counts.bitrot
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("depcase_sio_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        path
    }

    #[test]
    fn real_io_round_trips_files_appends_and_listings() {
        let dir = tmp_dir("real");
        let io = RealIo;
        let file = dir.join("a.txt");
        io.write_new(&file, b"hello").unwrap();
        assert_eq!(io.read_file(&file).unwrap(), b"hello");
        assert!(io.exists(&file));
        let mut log = io.open_append(&dir.join("log")).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        log.sync().unwrap();
        log.truncate(3).unwrap();
        assert_eq!(io.read_file(&dir.join("log")).unwrap(), b"one");
        io.rename(&file, &dir.join("b.txt")).unwrap();
        assert!(!io.exists(&file));
        let listed = io.list_dir(&dir).unwrap();
        assert_eq!(listed.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn storage_fault_specs_reject_unknown_and_malformed_keys() {
        assert!(StorageFaultPlan::parse("eio").unwrap_err().contains("KEY=VALUE"));
        assert!(StorageFaultPlan::parse("eio=2.0").unwrap_err().contains("[0,1]"));
        assert!(StorageFaultPlan::parse("eoi=0.1").unwrap_err().contains("eoi"));
        assert!(StorageFaultPlan::parse("enospc_after=1TiB").unwrap_err().contains("TiB"));
        assert!(StorageFaultPlan::parse("enospc_after=lots").unwrap_err().contains("lots"));
        let ok = StorageFaultPlan::parse(
            "seed=42, eio=0.02, enospc_after=1MiB, short_write=0.05, torn=0.05, bitrot=0.01, eio_cap=3",
        )
        .unwrap();
        assert_eq!(ok.seed, 42);
        assert_eq!(ok.limit.load(Ordering::SeqCst), 1 << 20);
        assert_eq!(ok.eio.cap, Some(3));
    }

    #[test]
    fn size_suffixes_parse() {
        assert_eq!(parse_size("17").unwrap(), 17);
        assert_eq!(parse_size("17B").unwrap(), 17);
        assert_eq!(parse_size("2KiB").unwrap(), 2048);
        assert_eq!(parse_size("1GiB").unwrap(), 1 << 30);
        assert!(parse_size("KiB").is_err());
    }

    #[test]
    fn eio_decisions_are_deterministic_for_a_seed() {
        let run = |seed: &str| {
            let io = FaultyIo::parse(Arc::new(SimIo::new()), seed).unwrap();
            let mut log = io.open_append(Path::new("/log")).unwrap();
            (0..128).map(|_| log.append(b"x").is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run("seed=7,eio=0.2"), run("seed=7,eio=0.2"));
        assert_ne!(run("seed=7,eio=0.2"), run("seed=8,eio=0.2"));
    }

    #[test]
    fn enospc_budget_lands_the_remainder_then_fails_until_restored() {
        let sim = Arc::new(SimIo::new());
        let io =
            FaultyIo::parse(Arc::clone(&sim) as Arc<dyn StorageIo>, "enospc_after=10").unwrap();
        let mut log = io.open_append(Path::new("/log")).unwrap();
        log.append(b"123456").unwrap();
        let err = log.append(b"789012").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        // The budget's remainder landed: the partial-write hazard the
        // WAL rollback must clean up.
        assert_eq!(sim.live_bytes(Path::new("/log")).unwrap(), b"1234567890");
        assert!(log.append(b"x").is_err(), "budget stays exhausted");
        assert_eq!(io.injected().enospc, 2);
        io.restore_space();
        log.append(b"xy").unwrap();
        assert_eq!(sim.live_bytes(Path::new("/log")).unwrap(), b"1234567890xy");
    }

    #[test]
    fn exhaust_space_cuts_writes_off_at_the_current_byte() {
        let io = FaultyIo::parse(Arc::new(SimIo::new()), "seed=1").unwrap();
        let mut log = io.open_append(Path::new("/log")).unwrap();
        log.append(b"ok").unwrap();
        io.exhaust_space();
        assert!(log.append(b"no").is_err());
        io.restore_space();
        log.append(b"yes").unwrap();
    }

    #[test]
    fn short_writes_land_a_prefix_then_error() {
        let sim = Arc::new(SimIo::new());
        let io = FaultyIo::parse(
            Arc::clone(&sim) as Arc<dyn StorageIo>,
            "seed=3,short_write=1.0,short_write_cap=1",
        )
        .unwrap();
        let mut log = io.open_append(Path::new("/log")).unwrap();
        let err = log.append(b"abcdefgh").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(sim.live_bytes(Path::new("/log")).unwrap(), b"abcd");
        assert_eq!(io.injected().short_writes, 1);
        log.append(b"rest").unwrap();
    }

    #[test]
    fn torn_writes_lie_and_bitrot_persists() {
        let sim = Arc::new(SimIo::new());
        let io =
            FaultyIo::parse(Arc::clone(&sim) as Arc<dyn StorageIo>, "seed=5,torn=1.0,torn_cap=1")
                .unwrap();
        io.write_new(Path::new("/obj"), b"0123456789abcdef").unwrap();
        let stored = sim.live_bytes(Path::new("/obj")).unwrap();
        assert!(stored.len() < 16, "a torn write must land a strict prefix");
        assert_eq!(io.injected().torn, 1);

        let rot = FaultyIo::parse(
            Arc::clone(&sim) as Arc<dyn StorageIo>,
            "seed=5,bitrot=1.0,bitrot_cap=1",
        )
        .unwrap();
        rot.write_new(Path::new("/media"), b"pristine bytes").unwrap();
        let rotted = rot.read_file(Path::new("/media")).unwrap();
        assert_ne!(rotted, b"pristine bytes", "bitrot must flip a bit");
        // The flip persisted: the inner filesystem now holds the rot.
        assert_eq!(sim.live_bytes(Path::new("/media")).unwrap(), rotted);
        assert_eq!(rot.read_file(Path::new("/media")).unwrap(), rotted, "rot is sticky");
    }

    #[test]
    fn sim_io_tracks_durable_vs_live_and_journals_crash_images() {
        let sim = SimIo::recording();
        let mut log = sim.open_append(Path::new("/wal")).unwrap();
        log.append(b"record-one\n").unwrap();
        log.sync().unwrap();
        log.append(b"record-two\n").unwrap();
        let images = sim.crash_images();
        assert_eq!(images.len(), 3, "append, sync, append each journal one image");

        // Crash after the unsynced second append: durable loses it,
        // full keeps it, torn keeps half of it.
        let after = &images[2];
        let durable = SimIo::from_image(after, TailVariant::Durable);
        assert_eq!(durable.read_file(Path::new("/wal")).unwrap(), b"record-one\n");
        let full = SimIo::from_image(after, TailVariant::Full);
        assert_eq!(full.read_file(Path::new("/wal")).unwrap(), b"record-one\nrecord-two\n");
        let torn = SimIo::from_image(after, TailVariant::Torn);
        let torn_bytes = torn.read_file(Path::new("/wal")).unwrap();
        assert!(torn_bytes.starts_with(b"record-one\n"));
        assert!(torn_bytes.len() > b"record-one\n".len());
        assert!(torn_bytes.len() < b"record-one\nrecord-two\n".len());
    }

    #[test]
    fn sim_io_renames_and_listings_behave_like_a_filesystem() {
        let sim = SimIo::new();
        sim.write_new(Path::new("/store/objects/a.json"), b"{}").unwrap();
        sim.write_new(Path::new("/store/objects/b.json"), b"{}").unwrap();
        sim.create_dir_all(Path::new("/store/quarantine")).unwrap();
        assert!(sim.exists(Path::new("/store/quarantine")));
        sim.rename(Path::new("/store/objects/a.json"), Path::new("/store/quarantine/a.json"))
            .unwrap();
        assert!(sim.rename(Path::new("/store/objects/a.json"), Path::new("/x")).is_err());
        let listed = sim.list_dir(Path::new("/store/objects")).unwrap();
        assert_eq!(listed, vec![PathBuf::from("/store/objects/b.json")]);
        assert!(sim.read_file(Path::new("/store/objects/a.json")).is_err());
    }
}
