//! `case_tool` — evaluate serialized dependability cases from the
//! command line, or run the resident assessment service.
//!
//! ```text
//! case_tool eval  case.json      # propagate and print per-node confidence
//! case_tool dot   case.json      # annotated Graphviz DOT on stdout
//! case_tool rank  case.json      # evidence ranked by improvement value
//! case_tool demo                 # print a sample case.json to start from
//! case_tool stamp TEMPLATE COUNT  # NDJSON load lines for COUNT stamped
//!                                 # variants of template TEMPLATE (0..9)
//! case_tool serve [--addr HOST:PORT] [--stdio] [--io epoll|threads]
//!                 [--workers N] [--cache N] [--shards N] [--memo-cap N]
//!                 [--queue N] [--conns N]
//!                 [--deadline MS] [--drain MS] [--faults SPEC]
//!                 [--data-dir PATH] [--fsync always|never]
//!                 [--snapshot-every N] [--storage-faults SPEC]
//!                 [--trace-dir DIR] [--slow-ms MS] [--no-trace]
//! ```
//!
//! `serve` speaks newline-delimited JSON (see the `depcase-service`
//! crate docs for the protocol) on a localhost TCP listener, or on
//! stdin/stdout with `--stdio`. `--io` picks the TCP transport: the
//! default `epoll` multiplexes every connection onto one
//! readiness-driven I/O thread (thousands of mostly-idle connections);
//! `threads` is the classic two-threads-per-connection model. `--queue`
//! bounds the job queue (overflow answers `overloaded`), `--conns` caps
//! concurrent connections, `--deadline` sets the default per-request
//! budget, `--drain` bounds how long shutdown waits for queued work,
//! and `--faults` enables deterministic fault injection from a spec
//! like `seed=42,panic=0.05,delay=0.1,delay_ms=20,drop=0.02` (see
//! [`depcase_service::FaultPlan`]).
//!
//! `--data-dir` makes the registry durable: every acked `load`/`edit`
//! is written ahead to a checksummed WAL in that directory and a
//! restart recovers exactly the acked state, including version
//! history. `--fsync always` additionally syncs each append (safe
//! against power loss, slower); the default `never` leaves syncing to
//! the OS and graceful drain (safe against process crashes).
//! `--snapshot-every N` compacts the WAL behind a content-addressed
//! snapshot every N mutations (default 256; 0 disables).
//!
//! `--shards` stripes the registry and plan cache into independent
//! locks (default 8) for multi-tenant workloads; `--memo-cap` sizes the
//! global content-addressed memo store that shares subtree results
//! across every compile (entries, default 262144; 0 disables it).
//! `stamp` emits ready-to-pipe `load` lines for deterministic template
//! variants — the multi-tenant smoke test's workload generator.
//!
//! `--storage-faults` (requires `--data-dir`) routes every WAL and
//! snapshot file operation through a deterministic seeded fault
//! injector — EIO, ENOSPC budgets, short writes, torn tails, read-side
//! bit-rot — from a spec like `seed=42,eio=0.02,bitrot=0.01` (see
//! [`depcase_service::StorageFaultPlan`]): a chaos rig for exercising
//! read-only degradation and the `scrub` repair pipeline end to end.
//!
//! Every request is traced end to end (queue wait, parse, engine
//! phases, WAL append/fsync, reply flush); recent traces and the
//! per-op latency decomposition come back over the wire via the
//! `trace` op, and the `metrics` op exposes the unified registry
//! (JSON or Prometheus text). `--trace-dir DIR` additionally streams
//! every completed trace into rotating Chrome trace-event JSON files
//! that load directly in Perfetto or `chrome://tracing`. `--slow-ms
//! MS` logs any request slower than the threshold to stderr with its
//! full span tree, and `--no-trace` turns per-request tracing off
//! (the metrics registry stays live).

use depcase::assurance::{importance, templates, Case};
use depcase_service::{
    serve_stdio_with, DurabilityConfig, Engine, EngineConfig, FaultPlan, FaultyIo, FsyncPolicy,
    IoModel, RealIo, Server, ServerConfig, StorageIo,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:4676";
const DEFAULT_CACHE: usize = 64;

fn load(path: &str) -> Result<Case, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn serve(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut stdio = false;
    let mut engine_config = EngineConfig::new(DEFAULT_CACHE);
    let mut config = ServerConfig::default();
    let mut durability: Option<DurabilityConfig> = None;
    let mut storage_faults: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut no_trace = false;
    let mut it = args.iter();
    let int_flag = |name: &str, it: &mut std::slice::Iter<String>| -> Result<u64, String> {
        it.next()
            .ok_or(format!("{name} needs a value"))?
            .parse()
            .map_err(|_| format!("{name} needs an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--addr" => {
                addr = it.next().ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--io" => {
                config.io = match it.next().map(String::as_str) {
                    Some("epoll") => IoModel::Epoll,
                    Some("threads") => IoModel::Threads,
                    _ => return Err("--io needs epoll|threads".into()),
                };
            }
            "--workers" => config.workers = int_flag("--workers", &mut it)? as usize,
            "--cache" => engine_config.cache_capacity = int_flag("--cache", &mut it)? as usize,
            "--shards" => {
                engine_config.shards = int_flag("--shards", &mut it)? as usize;
                if engine_config.shards == 0 {
                    return Err("--shards needs at least 1".into());
                }
            }
            "--memo-cap" => engine_config.memo_entries = int_flag("--memo-cap", &mut it)? as usize,
            "--queue" => config.queue_capacity = int_flag("--queue", &mut it)? as usize,
            "--conns" => config.max_connections = int_flag("--conns", &mut it)? as usize,
            "--deadline" => {
                config.default_deadline_ms = Some(int_flag("--deadline", &mut it)?);
            }
            "--drain" => {
                config.drain_deadline = Duration::from_millis(int_flag("--drain", &mut it)?);
            }
            "--faults" => {
                let spec = it.next().ok_or("--faults needs a spec like seed=42,panic=0.05")?;
                config.faults = Some(Arc::new(FaultPlan::parse(spec)?));
            }
            "--data-dir" => {
                let dir = it.next().ok_or("--data-dir needs a directory path")?;
                durability.get_or_insert_with(|| DurabilityConfig::new(dir.clone())).data_dir =
                    dir.into();
            }
            "--fsync" => {
                let policy = FsyncPolicy::parse(it.next().ok_or("--fsync needs always|never")?)?;
                durability.get_or_insert_with(|| DurabilityConfig::new("")).fsync = policy;
            }
            "--snapshot-every" => {
                let every = int_flag("--snapshot-every", &mut it)?;
                durability.get_or_insert_with(|| DurabilityConfig::new("")).snapshot_every = every;
            }
            "--storage-faults" => {
                let spec = it
                    .next()
                    .ok_or("--storage-faults needs a spec like seed=42,eio=0.02,bitrot=0.01")?;
                storage_faults = Some(spec.clone());
            }
            "--trace-dir" => {
                trace_dir = Some(it.next().ok_or("--trace-dir needs a directory path")?.clone());
            }
            "--slow-ms" => slow_ms = Some(int_flag("--slow-ms", &mut it)?),
            "--no-trace" => no_trace = true,
            other => return Err(format!("unknown serve flag `{other}`")),
        }
    }
    let engine = Arc::new(match &durability {
        Some(dc) => {
            if dc.data_dir.as_os_str().is_empty() {
                return Err("--fsync/--snapshot-every require --data-dir".into());
            }
            let io: Arc<dyn StorageIo> = match &storage_faults {
                Some(spec) => Arc::new(FaultyIo::parse(RealIo::shared(), spec)?),
                None => RealIo::shared(),
            };
            Engine::open_config_with_io(&engine_config, dc, io)
                .map_err(|e| format!("opening data dir {}: {e}", dc.data_dir.display()))?
        }
        None => {
            if storage_faults.is_some() {
                return Err("--storage-faults requires --data-dir".into());
            }
            Engine::with_config(&engine_config)
        }
    });
    if no_trace {
        if trace_dir.is_some() || slow_ms.is_some() {
            return Err("--no-trace conflicts with --trace-dir/--slow-ms".into());
        }
        engine.telemetry().set_enabled(false);
    }
    if let Some(dir) = &trace_dir {
        engine
            .telemetry()
            .set_trace_dir(dir)
            .map_err(|e| format!("opening trace dir {dir}: {e}"))?;
    }
    if let Some(ms) = slow_ms {
        engine.telemetry().set_slow_ms(ms);
    }
    if stdio {
        serve_stdio_with(&engine, &config);
        return Ok(());
    }
    eprintln!(
        "case_tool serve: {} io, {} workers, plan cache {} over {} shards, memo store {}, \
         queue {}, conns {}{}{}{}{}{}{}{}",
        match config.io {
            IoModel::Epoll => "epoll",
            IoModel::Threads => "threads",
        },
        config.workers,
        engine_config.cache_capacity,
        engine.shard_count(),
        if engine_config.memo_entries == 0 {
            "off".to_string()
        } else {
            format!("{} entries", engine_config.memo_entries)
        },
        config.queue_capacity,
        config.max_connections,
        match config.default_deadline_ms {
            Some(ms) => format!(", default deadline {ms} ms"),
            None => String::new(),
        },
        if config.faults.is_some() { ", fault injection ON" } else { "" },
        match &durability {
            Some(dc) => format!(
                ", durable at {} (fsync {}, snapshot every {})",
                dc.data_dir.display(),
                dc.fsync,
                dc.snapshot_every
            ),
            None => String::new(),
        },
        if storage_faults.is_some() { ", storage fault injection ON" } else { "" },
        if no_trace { ", tracing OFF" } else { "" },
        match &trace_dir {
            Some(dir) => format!(", chrome traces to {dir}"),
            None => String::new(),
        },
        match slow_ms {
            Some(ms) => format!(", slow log over {ms} ms"),
            None => String::new(),
        },
    );
    let server =
        Server::start(Arc::clone(&engine), addr.as_str(), config).map_err(|e| e.to_string())?;
    eprintln!("case_tool serve: listening on {}", server.local_addr());
    let engine_for_dump = engine;
    server.wait();
    eprintln!(
        "case_tool serve: final stats {}",
        serde_json::to_string(&depcase_service::protocol::Json(engine_for_dump.stats_value()))
            .map_err(|e| e.to_string())?
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => {
            let (case, _) = templates::multi_leg(
                "pfd < 1e-2",
                &[("statistical testing", 0.95), ("static analysis", 0.90)],
                Some(("requirements spec is right", 0.98)),
            )
            .map_err(|e| e.to_string())?;
            println!("{}", serde_json::to_string_pretty(&case).map_err(|e| e.to_string())?);
            Ok(())
        }
        Some("eval") => {
            let path = args.get(1).ok_or("usage: case_tool eval <case.json>")?;
            let case = load(path)?;
            let report = case.propagate().map_err(|e| e.to_string())?;
            println!("case: {}", case.title());
            for (id, node) in case.iter() {
                if let Some(c) = report.confidence(id) {
                    println!(
                        "  {:<6} {:<40} conf {:.4}  [{:.4}, {:.4}]",
                        node.name,
                        truncate(&node.statement, 40),
                        c.independent,
                        c.worst_case,
                        c.best_case
                    );
                }
            }
            Ok(())
        }
        Some("dot") => {
            let path = args.get(1).ok_or("usage: case_tool dot <case.json>")?;
            let case = load(path)?;
            let report = case.propagate().ok();
            print!("{}", case.to_dot(report.as_ref()));
            Ok(())
        }
        Some("rank") => {
            let path = args.get(1).ok_or("usage: case_tool rank <case.json>")?;
            let case = load(path)?;
            let ranking = importance::birnbaum_importance(&case).map_err(|e| e.to_string())?;
            println!("evidence by improvement value (case: {}):", case.title());
            for li in ranking {
                println!(
                    "  {:<6} conf {:.3}  birnbaum {:.4}  gain-if-certain {:.4}",
                    li.name, li.confidence, li.birnbaum, li.gain_if_certain
                );
            }
            Ok(())
        }
        Some("stamp") => stamp(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => Err(
            "usage: case_tool {eval|dot|rank} <case.json> | case_tool demo | case_tool stamp {TEMPLATE|all} COUNT [--eval] | case_tool serve [--addr HOST:PORT|--stdio] [--io epoll|threads] [--workers N] [--cache N] [--shards N] [--memo-cap N] [--queue N] [--conns N] [--deadline MS] [--drain MS] [--faults SPEC] [--data-dir PATH] [--fsync always|never] [--snapshot-every N] [--storage-faults SPEC] [--trace-dir DIR] [--slow-ms MS] [--no-trace]"
                .into(),
        ),
    }
}

/// `stamp {TEMPLATE|all} COUNT [--eval]`: deterministic NDJSON `load`
/// lines for COUNT stamped template variants, ready to pipe into
/// `serve --stdio` — the multi-tenant smoke test's workload generator.
/// `all` round-robins the variants across every template; `--eval`
/// appends one `eval` line per registered name after the loads, so one
/// pipe both registers the fleet and reads every answer back.
fn stamp(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("usage: case_tool stamp {TEMPLATE|all} COUNT [--eval]")?;
    let count: u64 = args
        .get(1)
        .ok_or("stamp needs a COUNT")?
        .parse()
        .map_err(|_| "COUNT needs to be an integer".to_string())?;
    let with_eval = match args.get(2).map(String::as_str) {
        None => false,
        Some("--eval") => true,
        Some(other) => return Err(format!("unknown stamp flag `{other}`")),
    };
    let template_count = templates::TEMPLATE_COUNT as u64;
    let pick = |i: u64| -> Result<(u64, u64), String> {
        match which.as_str() {
            "all" => Ok((i % template_count, i / template_count)),
            t => {
                let t: u64 =
                    t.parse().map_err(|_| format!("TEMPLATE needs 0..{template_count} or all"))?;
                if t >= template_count {
                    return Err(format!("TEMPLATE needs 0..{template_count} or all"));
                }
                Ok((t, i))
            }
        }
    };
    let out = std::io::stdout();
    let mut out = std::io::BufWriter::new(out.lock());
    use std::io::Write;
    let mut id = 0u64;
    for i in 0..count {
        let (template, variant) = pick(i)?;
        let case = templates::stamp(template as usize, variant);
        id += 1;
        let doc = serde_json::to_string(&case).map_err(|e| e.to_string())?;
        writeln!(out, r#"{{"id":{id},"op":"load","name":"t{template}-v{variant}","case":{doc}}}"#)
            .map_err(|e| e.to_string())?;
    }
    if with_eval {
        for i in 0..count {
            let (template, variant) = pick(i)?;
            id += 1;
            writeln!(out, r#"{{"id":{id},"op":"eval","name":"t{template}-v{variant}"}}"#)
                .map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("case_tool: {msg}");
            ExitCode::from(2)
        }
    }
}
