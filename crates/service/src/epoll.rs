//! Readiness-driven TCP transport: one I/O thread multiplexes every
//! connection through `epoll`, in front of the same worker pool the
//! thread-per-connection transport uses.
//!
//! The thread-per-connection model ([`crate::server`], `--io threads`)
//! spends two OS threads per connection (reader + writer) — fine for
//! tens of clients, hopeless for thousands of mostly-idle monitoring
//! sessions. This module replaces the transport layer only:
//!
//! - **One I/O thread** owns the listener, every connection socket,
//!   and the epoll instance. Nothing else touches a socket.
//! - **Non-blocking sockets, edge-triggered wakeups.** Each readiness
//!   edge drains the socket to `WouldBlock` (reads) or empties the
//!   write buffer (writes), the invariant edge-triggering requires.
//! - **Per-connection buffers.** Bytes accumulate in a read buffer
//!   until a full NDJSON line is framed; responses queue in arrival
//!   order (FIFO per connection, exactly like the threaded writer) and
//!   flush as the socket accepts them.
//! - **The worker pool is unchanged.** Framed lines become [`Job`]s on
//!   the shared queue; workers execute them and deposit the response
//!   into the connection's reply slot, then wake the I/O thread over a
//!   socketpair (the classic self-pipe pattern — `epoll_wait` cannot
//!   watch a condvar).
//!
//! Robustness semantics match the threaded transport: connection cap
//! and queue overflow answer `overloaded`, oversized lines answer
//! `request_too_large` without killing the connection, idle
//! connections are reaped after `read_timeout`, a client that stops
//! draining responses is disconnected once its write buffer passes a
//! bound, and shutdown stops reading, flushes what it can inside
//! `drain_deadline`, and exits.
//!
//! The container has no crates.io access, so the four syscalls epoll
//! needs are declared by hand below — the only unsafe code in the
//! crate, confined to the [`sys`] module and wrapped in a safe,
//! RAII-closed [`Epoll`] handle.
#![allow(unsafe_code)]

use crate::lock_unpoisoned;
use crate::protocol::{self, ErrorCode, WireError};
use crate::server::{Job, Reply, Shared};
use crate::stats::RobustnessEvent;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Raw epoll bindings. The kernel ABI here is decades-stable; the
/// wrappers below keep every invariant (valid fd, sized event buffer)
/// in one place so callers never see a raw pointer.
mod sys {
    use std::os::raw::c_int;

    /// `struct epoll_event`; packed on x86-64, matching the kernel ABI.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Safe owner of one epoll instance; closed on drop.
struct Epoll {
    fd: std::os::raw::c_int,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers cross the boundary; a negative return is
        // turned into the errno it stands for.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `events`, tagging wakeups with `token`.
    fn add(&self, fd: std::os::raw::c_int, token: u64, events: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it out.
        let rc = unsafe { sys::epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregisters `fd`; harmless if the kernel already dropped it.
    fn del(&self, fd: std::os::raw::c_int) {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add`; failure (fd already gone) is benign.
        let _ = unsafe { sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks up to `timeout_ms` for readiness; fills `buf` and returns
    /// how many entries are valid. Retries `EINTR` internally.
    fn wait(&self, buf: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let max = i32::try_from(buf.len()).unwrap_or(i32::MAX);
            // SAFETY: `buf.len()` bounds `maxevents`, so the kernel
            // writes only into the slice.
            let n = unsafe { sys::epoll_wait(self.fd, buf.as_mut_ptr(), max, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a live epoll fd this struct owns.
        let _ = unsafe { sys::close(self.fd) };
    }
}

/// Where a worker deposits one response for the I/O thread to flush.
#[derive(Debug, Default)]
pub(crate) struct ReplySlot {
    pub(crate) response: Mutex<Option<String>>,
    /// The request's trace, still open in its `reply_flush` span; the
    /// I/O thread finalizes it once the response bytes have actually
    /// been written to the socket (always set before `response`).
    pub(crate) trace: Mutex<Option<Box<crate::trace::TraceBuilder>>>,
}

/// Wakes the I/O thread when a reply slot fills: the completed
/// connection token goes on the dirty list and one byte goes down the
/// socketpair, turning a cross-thread completion into an epoll event.
#[derive(Debug)]
pub(crate) struct Notifier {
    dirty: Mutex<Vec<u64>>,
    wake: UnixStream,
}

impl Notifier {
    pub(crate) fn notify(&self, token: u64) {
        lock_unpoisoned(&self.dirty).push(token);
        // A full pipe means a wake is already pending — dropping the
        // byte is correct, the dirty list carries the real signal.
        let _ = (&self.wake).write(&[1]);
    }

    fn take_dirty(&self) -> Vec<u64> {
        std::mem::take(&mut *lock_unpoisoned(&self.dirty))
    }
}

/// Bound on buffered-but-unsent response bytes per connection: a client
/// that stops reading is disconnected rather than growing the buffer
/// without limit (the readiness-loop analogue of the threaded
/// transport's socket write timeout).
const WRITE_BUF_CAP: usize = 4 << 20;

const LISTENER_TOKEN: u64 = 0;
const WAKE_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const EVENTS_PER_WAIT: usize = 1024;

/// Loop tick in milliseconds: bounds how stale the shutdown flag and
/// the idle-reap sweep can get when no readiness event arrives.
const TICK_MS: i32 = 25;

/// How often the idle sweep walks the connection table.
const REAP_SWEEP: Duration = Duration::from_millis(250);

/// One multiplexed connection: its socket, framing state, and the FIFO
/// of replies being computed or flushed.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline.
    scanned: usize,
    /// Inside an oversized line: discard until the next newline, then
    /// answer `request_too_large`.
    overflowed: bool,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// Replies in request-arrival order; the front flushes first, so
    /// out-of-order worker completions cannot reorder responses.
    pending: VecDeque<Arc<ReplySlot>>,
    /// Traces of replies sitting in `write_buf`, each keyed by the
    /// buffer offset its response ends at; finalized once `written`
    /// passes that watermark — i.e. once the bytes are with the kernel,
    /// so `reply_flush` covers real socket time, not just queueing.
    trace_marks: VecDeque<(usize, Box<crate::trace::TraceBuilder>)>,
    last_activity: Instant,
    /// Peer closed its sending half; flush what we owe, then drop.
    peer_closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            overflowed: false,
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            trace_marks: VecDeque::new(),
            last_activity: Instant::now(),
            peer_closed: false,
        }
    }

    /// True once everything owed has been handed to the kernel.
    fn flushed(&self) -> bool {
        self.pending.is_empty() && self.written == self.write_buf.len()
    }
}

/// Verdict on a connection after handling one of its events.
enum ConnState {
    Keep,
    Close,
}

/// Runs the readiness loop until shutdown completes its drain (or
/// `abort` cuts it short). Owns the listener, every connection, and
/// the epoll instance; returns only at shutdown or on a fatal epoll
/// error (socket-level errors only ever kill their own connection).
pub(crate) fn run(listener: &TcpListener, shared: &Arc<Shared>) -> io::Result<()> {
    let ep = Epoll::new()?;
    listener.set_nonblocking(true)?;
    ep.add(listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN)?;

    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    ep.add(wake_rx.as_raw_fd(), WAKE_TOKEN, sys::EPOLLIN | sys::EPOLLET)?;
    let notifier = Arc::new(Notifier { dirty: Mutex::new(Vec::new()), wake: wake_tx });

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; EVENTS_PER_WAIT];
    let mut last_reap = Instant::now();
    let mut draining_since: Option<Instant> = None;

    loop {
        let n = ep.wait(&mut events, TICK_MS)?;
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        for ev in &events[..n] {
            // Copy out of the packed struct before touching the fields.
            let (mask, token) = { (ev.events, ev.data) };
            match token {
                LISTENER_TOKEN => {
                    accept_ready(listener, &ep, shared, &mut conns, &mut next_token, shutting_down);
                }
                WAKE_TOKEN => {
                    drain_wake(&wake_rx);
                    for token in notifier.take_dirty() {
                        let Some(conn) = conns.get_mut(&token) else { continue };
                        if matches!(flush(conn, shared), ConnState::Close) {
                            close_conn(&ep, &mut conns, token);
                        }
                    }
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else { continue };
                    let mut state = ConnState::Keep;
                    if mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                        state = ConnState::Close;
                    } else {
                        if mask & sys::EPOLLRDHUP != 0 {
                            conn.peer_closed = true;
                        }
                        if mask & sys::EPOLLIN != 0 && !shutting_down {
                            state = read_ready(conn, token, shared, &notifier);
                        }
                        if matches!(state, ConnState::Keep) && mask & sys::EPOLLOUT != 0 {
                            state = flush(conn, shared);
                        }
                    }
                    if matches!(state, ConnState::Close) {
                        close_conn(&ep, &mut conns, token);
                    }
                }
            }
        }

        // Idle reaping, amortised to one sweep per REAP_SWEEP.
        if !shutting_down && last_reap.elapsed() >= REAP_SWEEP {
            last_reap = Instant::now();
            let timeout = shared.config.read_timeout;
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.last_activity.elapsed() >= timeout)
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                shared.engine.note(RobustnessEvent::ConnectionReaped);
                close_conn(&ep, &mut conns, token);
            }
        }

        if shutting_down {
            // Drain: no new reads or accepts; keep flushing responses
            // for already-accepted work until everything owed is out,
            // the drain deadline expires, or shutdown aborts.
            let since = *draining_since.get_or_insert_with(Instant::now);
            let everything_out = shared.queue.len() == 0 && conns.values().all(Conn::flushed);
            let expired = since.elapsed() >= shared.config.drain_deadline;
            if everything_out || expired || shared.abort.load(Ordering::SeqCst) {
                return Ok(());
            }
            // Late completions may have filled slots without an event
            // in this iteration's batch; opportunistically flush.
            for token in notifier.take_dirty() {
                if let Some(conn) = conns.get_mut(&token) {
                    if matches!(flush(conn, shared), ConnState::Close) {
                        close_conn(&ep, &mut conns, token);
                    }
                }
            }
        }
    }
}

/// Accepts until the listener would block, enforcing the connection cap.
fn accept_ready(
    listener: &TcpListener,
    ep: &Epoll,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shutting_down: bool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutting_down {
                    continue; // accepted only to be dropped: we are draining
                }
                if conns.len() >= shared.config.max_connections {
                    refuse_connection(&stream, shared);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
                if ep.add(stream.as_raw_fd(), token, interest).is_ok() {
                    conns.insert(token, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// One `overloaded` line, best effort, then the socket drops.
fn refuse_connection(stream: &TcpStream, shared: &Arc<Shared>) {
    let refused = Instant::now();
    let err = WireError::new(
        ErrorCode::Overloaded,
        format!("connection limit ({}) reached", shared.config.max_connections),
    )
    .with_retry_after(shared.config.retry_after_ms);
    let _ = stream.set_nonblocking(true);
    let line = protocol::err_line(&None, &err);
    let _ = (&mut { stream }).write_all(format!("{line}\n").as_bytes());
    shared.engine.note_rejection(RobustnessEvent::Overloaded, refused.elapsed());
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut sink = [0u8; 256];
    while matches!((&mut { wake_rx }).read(&mut sink), Ok(n) if n > 0) {}
}

/// Drains the socket (edge-triggered contract), frames complete lines,
/// and enqueues them on the worker pool.
fn read_ready(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<Shared>,
    notifier: &Arc<Notifier>,
) -> ConnState {
    conn.last_activity = Instant::now();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match (&mut &conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnState::Close,
        }
    }
    if matches!(process_lines(conn, token, shared, notifier), ConnState::Close) {
        return ConnState::Close;
    }
    // EOF still owes the client every response already in flight.
    flush(conn, shared)
}

/// Splits the read buffer into NDJSON lines and dispatches each one.
fn process_lines(
    conn: &mut Conn,
    token: u64,
    shared: &Arc<Shared>,
    notifier: &Arc<Notifier>,
) -> ConnState {
    let max = shared.config.max_line_bytes;
    loop {
        match conn.read_buf[conn.scanned..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = conn.scanned + offset;
                let line = String::from_utf8_lossy(&conn.read_buf[..end]).into_owned();
                conn.read_buf.drain(..=end);
                conn.scanned = 0;
                if std::mem::take(&mut conn.overflowed) {
                    // The tail of a line whose head was already
                    // discarded: answer the rejection and move on.
                    answer_too_large(conn, shared);
                    continue;
                }
                if line.len() > max {
                    answer_too_large(conn, shared);
                    continue;
                }
                if matches!(dispatch_line(conn, token, line, shared, notifier), ConnState::Close) {
                    return ConnState::Close;
                }
            }
            None => {
                conn.scanned = conn.read_buf.len();
                if conn.scanned > max && !conn.overflowed {
                    // Stop buffering a hostile line; remember to answer
                    // `request_too_large` when its newline arrives.
                    conn.overflowed = true;
                }
                if conn.overflowed {
                    conn.read_buf.clear();
                    conn.read_buf.shrink_to_fit();
                    conn.scanned = 0;
                }
                return ConnState::Keep;
            }
        }
    }
}

/// Queues one framed line on the worker pool (or answers the shed /
/// fault-injection outcome in place).
fn dispatch_line(
    conn: &mut Conn,
    token: u64,
    line: String,
    shared: &Arc<Shared>,
    notifier: &Arc<Notifier>,
) -> ConnState {
    if line.trim().is_empty() {
        return ConnState::Keep;
    }
    if shared.config.faults.as_ref().is_some_and(|plan| plan.take_drop()) {
        // Injected fault: vanish mid-conversation, exactly like a
        // crashed client-side proxy would.
        return ConnState::Close;
    }
    let slot = Arc::new(ReplySlot::default());
    conn.pending.push_back(Arc::clone(&slot));
    let reply = Reply::Slot { slot, token, notifier: Arc::clone(notifier) };
    let job = Job { line, accepted: Instant::now(), reply };
    if let Err(job) = shared.queue.try_push(job) {
        let err = WireError::new(
            ErrorCode::Overloaded,
            format!(
                "request queue is full ({} queued); shed instead of queueing",
                shared.config.queue_capacity
            ),
        )
        .with_retry_after(shared.config.retry_after_ms);
        job.reply.send(protocol::err_line(&protocol::recover_id(&job.line), &err), None);
        shared.engine.note_rejection(RobustnessEvent::Overloaded, job.accepted.elapsed());
    }
    ConnState::Keep
}

/// Answers `request_too_large` on the connection's own FIFO.
fn answer_too_large(conn: &mut Conn, shared: &Arc<Shared>) {
    let rejected = Instant::now();
    let err = WireError::new(
        ErrorCode::RequestTooLarge,
        format!("request line exceeds {} bytes", shared.config.max_line_bytes),
    );
    let slot = Arc::new(ReplySlot::default());
    *lock_unpoisoned(&slot.response) = Some(protocol::err_line(&None, &err));
    conn.pending.push_back(slot);
    shared.engine.note_rejection(RobustnessEvent::RequestTooLarge, rejected.elapsed());
}

/// Moves completed replies (front of the FIFO only — order is the
/// contract) into the write buffer and writes until the socket would
/// block. Closing happens when the peer is gone and nothing is owed,
/// when the write buffer outgrows its bound, or on a socket error.
fn flush(conn: &mut Conn, shared: &Arc<Shared>) -> ConnState {
    while let Some(front) = conn.pending.front() {
        let Some(response) = lock_unpoisoned(&front.response).take() else { break };
        let trace = lock_unpoisoned(&front.trace).take();
        conn.pending.pop_front();
        conn.write_buf.extend_from_slice(response.as_bytes());
        conn.write_buf.push(b'\n');
        if let Some(tb) = trace {
            conn.trace_marks.push_back((conn.write_buf.len(), tb));
        }
    }
    while conn.written < conn.write_buf.len() {
        match (&mut &conn.stream).write(&conn.write_buf[conn.written..]) {
            Ok(0) => return ConnState::Close,
            Ok(n) => {
                conn.written += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnState::Close,
        }
    }
    // Every response whose last byte the kernel has taken closes its
    // `reply_flush` span here — a trace's total therefore covers the
    // request's whole life, accept to socket hand-off.
    while conn.trace_marks.front().is_some_and(|(end, _)| *end <= conn.written) {
        let (_, tb) = conn.trace_marks.pop_front().expect("front exists");
        shared.engine.telemetry().finish(*tb);
    }
    if conn.written == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.written = 0;
    } else if conn.write_buf.len() - conn.written > WRITE_BUF_CAP {
        // The slow-client bound: stop holding megabytes for a reader
        // that stopped reading.
        return ConnState::Close;
    }
    if conn.peer_closed && conn.flushed() {
        return ConnState::Close;
    }
    ConnState::Keep
}

/// Deregisters and drops one connection; its socket closes with it.
/// Replies still being computed for it land in slots nobody reads and
/// are freed when the worker drops its `Arc`.
fn close_conn(ep: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        ep.del(conn.stream.as_raw_fd());
    }
}
