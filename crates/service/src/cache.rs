//! LRU cache of compiled evaluation artefacts, keyed by case content.
//!
//! Compiling a [`Case`](depcase::assurance::Case) into an
//! [`EvalPlan`](depcase::assurance::EvalPlan) and propagating the
//! analytic confidences both walk the whole graph; a long-running
//! service answering repeated `eval`/`mc`/`rank`/`bands` requests
//! against the same handful of cases should pay that walk once. The key
//! is [`Case::content_hash`](depcase::assurance::Case::content_hash) —
//! a hash of exactly the evaluation-relevant state — so a reloaded but
//! unchanged case still hits, while any edit to structure or confidence
//! misses and recompiles.
//!
//! Entries are plan-*plus-memo*: alongside the flat plan and report,
//! each entry carries the live [`Incremental`] session whose
//! subtree-hash memo makes the `edit` op O(depth). An edit clones the
//! session, applies the mutation, and inserts the result under the new
//! content hash — the pre-edit entry stays cached, so an undo (editing
//! back) is a pure cache hit.
//!
//! Internals: a hash map from content hash to entry, with recency
//! tracked by an intrusive doubly-linked list threaded *through* the
//! map — each entry stores the hashes of its recency neighbours, so
//! every operation (hit, insert, evict) is O(1) map work with no
//! per-operation allocation and no linear scans. The earlier `Vec`
//! implementation paid an O(n) scan per lookup and an O(n) shift per
//! eviction (`Vec::remove(0)`), which turned churn-heavy workloads
//! quadratic once capacities grew past a handful of cases.

use depcase::assurance::{ConfidenceReport, EvalPlan, Incremental};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything derivable from a case that requests reuse.
#[derive(Debug)]
pub struct CompiledCase {
    /// The flat evaluation plan, shared by `mc` runs.
    pub plan: EvalPlan,
    /// The analytic propagation report, shared by `eval` and `bands`.
    pub report: ConfidenceReport,
    /// The incremental session (IR + subtree-hash memo) `edit` clones
    /// and mutates; its plan/report agree bit-for-bit with the fields
    /// above.
    pub session: Incremental,
}

/// Counter snapshot for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a compiled entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

/// One cached entry plus its links in the recency list. `prev` points
/// toward the least-recently-used end, `next` toward the most recent;
/// `None` marks the ends.
#[derive(Debug)]
struct Node {
    compiled: Arc<CompiledCase>,
    prev: Option<u64>,
    next: Option<u64>,
}

/// A least-recently-used map from content hash to [`CompiledCase`] with
/// O(1) lookup, insertion, and eviction.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<u64, Node>,
    /// Least recently used entry (the eviction candidate).
    lru: Option<u64>,
    /// Most recently used entry.
    mru: Option<u64>,
    counters: CacheCounters,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` compiled cases
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PlanCache {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            lru: None,
            mru: None,
            counters: CacheCounters::default(),
        }
    }

    /// Looks a compiled case up, refreshing its recency on hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<CompiledCase>> {
        if !self.entries.contains_key(&hash) {
            self.counters.misses += 1;
            return None;
        }
        self.counters.hits += 1;
        self.unlink(hash);
        self.link_mru(hash);
        Some(Arc::clone(&self.entries[&hash].compiled))
    }

    /// Inserts a freshly compiled case, evicting the least recently used
    /// entry if the cache is full. Re-inserting an existing hash just
    /// refreshes the entry.
    pub fn insert(&mut self, hash: u64, compiled: Arc<CompiledCase>) {
        if let Some(node) = self.entries.get_mut(&hash) {
            node.compiled = compiled;
            self.unlink(hash);
            self.link_mru(hash);
            return;
        }
        if self.entries.len() >= self.capacity {
            let victim = self.lru.expect("a full cache has an LRU entry");
            self.unlink(victim);
            self.entries.remove(&victim);
            self.counters.evictions += 1;
        }
        self.entries.insert(hash, Node { compiled, prev: None, next: None });
        self.link_mru(hash);
    }

    /// Detaches `hash` from the recency list (it must be present),
    /// leaving its own links stale for `link_mru` to overwrite.
    fn unlink(&mut self, hash: u64) {
        let (prev, next) = {
            let node = &self.entries[&hash];
            (node.prev, node.next)
        };
        match prev {
            Some(p) => self.entries.get_mut(&p).expect("linked neighbour exists").next = next,
            None => self.lru = next,
        }
        match next {
            Some(n) => self.entries.get_mut(&n).expect("linked neighbour exists").prev = prev,
            None => self.mru = prev,
        }
    }

    /// Appends `hash` (already in the map, currently detached) at the
    /// most-recently-used end.
    fn link_mru(&mut self, hash: u64) {
        let old_mru = self.mru;
        {
            let node = self.entries.get_mut(&hash).expect("entry was just inserted or unlinked");
            node.prev = old_mru;
            node.next = None;
        }
        match old_mru {
            Some(m) => self.entries.get_mut(&m).expect("old MRU exists").next = Some(hash),
            None => self.lru = Some(hash),
        }
        self.mru = Some(hash);
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase::prelude::*;

    fn compiled(confidence: f64) -> Arc<CompiledCase> {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "claim").unwrap();
        let e = case.add_evidence("E", "evidence", confidence).unwrap();
        case.support(g, e).unwrap();
        let session = Incremental::new(case).unwrap();
        let plan = session.plan().clone();
        let report = session.report();
        Arc::new(CompiledCase { plan, report, session })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = PlanCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, compiled(0.9));
        assert!(cache.get(1).is_some());
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn least_recently_used_entry_is_evicted_first() {
        let mut cache = PlanCache::new(2);
        cache.insert(1, compiled(0.9));
        cache.insert(2, compiled(0.8));
        assert!(cache.get(1).is_some()); // 2 is now least recent
        cache.insert(3, compiled(0.7)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut cache = PlanCache::new(2);
        cache.insert(1, compiled(0.9));
        cache.insert(2, compiled(0.8));
        cache.insert(1, compiled(0.9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 0);
        // 2 is now the LRU entry despite being inserted after 1.
        cache.insert(3, compiled(0.7));
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
    }

    #[test]
    fn churn_matches_a_reference_recency_model() {
        // Drive the linked-list implementation against a brute-force
        // recency Vec through a deterministic mixed workload; counters
        // and membership must agree at every step.
        let mut cache = PlanCache::new(4);
        let mut model: Vec<u64> = Vec::new(); // most recent last
        let mut model_counters = CacheCounters::default();
        let mut state = 0x1234_5678_u64;
        let entry = compiled(0.9);
        for _ in 0..2000 {
            // xorshift: cheap deterministic op/key stream.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 11;
            if state & 1 == 0 {
                let got = cache.get(key);
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model_counters.hits += 1;
                    let k = model.remove(pos);
                    model.push(k);
                    assert!(got.is_some(), "model has {key}, cache does not");
                } else {
                    model_counters.misses += 1;
                    assert!(got.is_none(), "cache has {key}, model does not");
                }
            } else {
                cache.insert(key, Arc::clone(&entry));
                if let Some(pos) = model.iter().position(|&k| k == key) {
                    model.remove(pos);
                } else if model.len() >= 4 {
                    model.remove(0);
                    model_counters.evictions += 1;
                }
                model.push(key);
            }
            assert_eq!(cache.len(), model.len());
        }
        assert_eq!(cache.counters(), model_counters);
        // Final membership matches exactly.
        for key in 0..11 {
            assert_eq!(cache.entries.contains_key(&key), model.contains(&key), "key {key}");
        }
    }
}
