//! LRU cache of compiled evaluation artefacts, keyed by case content.
//!
//! Compiling a [`Case`](depcase::assurance::Case) into an
//! [`EvalPlan`](depcase::assurance::EvalPlan) and propagating the
//! analytic confidences both walk the whole graph; a long-running
//! service answering repeated `eval`/`mc`/`rank`/`bands` requests
//! against the same handful of cases should pay that walk once. The key
//! is [`Case::content_hash`](depcase::assurance::Case::content_hash) —
//! a hash of exactly the evaluation-relevant state — so a reloaded but
//! unchanged case still hits, while any edit to structure or confidence
//! misses and recompiles.
//!
//! Entries are plan-*plus-memo*: alongside the flat plan and report,
//! each entry carries the live [`Incremental`] session whose
//! subtree-hash memo makes the `edit` op O(depth). An edit clones the
//! session, applies the mutation, and inserts the result under the new
//! content hash — the pre-edit entry stays cached, so an undo (editing
//! back) is a pure cache hit.

use depcase::assurance::{ConfidenceReport, EvalPlan, Incremental};
use std::sync::Arc;

/// Everything derivable from a case that requests reuse.
#[derive(Debug)]
pub struct CompiledCase {
    /// The flat evaluation plan, shared by `mc` runs.
    pub plan: EvalPlan,
    /// The analytic propagation report, shared by `eval` and `bands`.
    pub report: ConfidenceReport,
    /// The incremental session (IR + subtree-hash memo) `edit` clones
    /// and mutates; its plan/report agree bit-for-bit with the fields
    /// above.
    pub session: Incremental,
}

/// Counter snapshot for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a compiled entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

/// A least-recently-used map from content hash to [`CompiledCase`].
///
/// Entries are kept in recency order in a `Vec` (most recent last);
/// capacities are small — tens of cases — so linear scans beat the
/// constant factors of anything cleverer.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: Vec<(u64, Arc<CompiledCase>)>,
    counters: CacheCounters,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` compiled cases
    /// (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            counters: CacheCounters::default(),
        }
    }

    /// Looks a compiled case up, refreshing its recency on hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<CompiledCase>> {
        match self.entries.iter().position(|(h, _)| *h == hash) {
            Some(idx) => {
                self.counters.hits += 1;
                let entry = self.entries.remove(idx);
                let compiled = Arc::clone(&entry.1);
                self.entries.push(entry);
                Some(compiled)
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled case, evicting the least recently used
    /// entry if the cache is full. Re-inserting an existing hash just
    /// refreshes the entry.
    pub fn insert(&mut self, hash: u64, compiled: Arc<CompiledCase>) {
        if let Some(idx) = self.entries.iter().position(|(h, _)| *h == hash) {
            self.entries.remove(idx);
        } else if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.counters.evictions += 1;
        }
        self.entries.push((hash, compiled));
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase::prelude::*;

    fn compiled(confidence: f64) -> Arc<CompiledCase> {
        let mut case = Case::new("t");
        let g = case.add_goal("G", "claim").unwrap();
        let e = case.add_evidence("E", "evidence", confidence).unwrap();
        case.support(g, e).unwrap();
        let session = Incremental::new(case).unwrap();
        let plan = session.plan().clone();
        let report = session.report();
        Arc::new(CompiledCase { plan, report, session })
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = PlanCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, compiled(0.9));
        assert!(cache.get(1).is_some());
        assert_eq!(cache.counters(), CacheCounters { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn least_recently_used_entry_is_evicted_first() {
        let mut cache = PlanCache::new(2);
        cache.insert(1, compiled(0.9));
        cache.insert(2, compiled(0.8));
        assert!(cache.get(1).is_some()); // 2 is now least recent
        cache.insert(3, compiled(0.7)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_evicting() {
        let mut cache = PlanCache::new(2);
        cache.insert(1, compiled(0.9));
        cache.insert(2, compiled(0.8));
        cache.insert(1, compiled(0.9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 0);
    }
}
