//! Write-ahead log of registry mutations.
//!
//! Every acknowledged `load` and `edit` appends one record **before**
//! the response goes out, so a restart can rebuild exactly the acked
//! state: replay is O(mutations since the last snapshot), never
//! O(cases × size). The on-disk format is length-prefixed, checksummed
//! NDJSON — one record per line:
//!
//! ```text
//! W1 <payload-bytes> <fnv64-hex> <payload-json>\n
//! ```
//!
//! The prefix makes framing self-describing (a reader never has to
//! guess where a record ends), the FNV-1a checksum catches torn writes
//! and bit rot, and the payload stays human-greppable JSON. A crash can
//! leave at most one torn record at the tail; [`Wal::open`] detects it
//! (bad frame, short payload, or checksum mismatch), truncates the file
//! back to the last good record, and reports the drop — recovery is
//! then a pure replay of intact records.
//!
//! Fsync policy is configurable: [`FsyncPolicy::Always`] makes every
//! acked mutation durable against power loss at one `fdatasync` per
//! append; [`FsyncPolicy::Never`] leaves flushing to the OS page cache
//! (still safe against process crashes — each record is a single
//! `write(2)` — but not against power failure). Graceful drain calls
//! [`Wal::sync`] regardless of policy.
//!
//! Payloads carry everything replay needs and nothing it must invent:
//! the mutation sequence number, the wall-clock timestamp recorded at
//! append time (replay reuses it, so `history` timestamps survive
//! restarts), and for edits the **base** content hash the action was
//! applied to — replay re-applies the action to that exact stored
//! version, so concurrent-edit interleavings recover bit-identically —
//! plus the resulting hash, which doubles as an end-to-end check that
//! replay reproduced the original state.

use crate::protocol::{format_hash, parse_hash, EditAction, ErrorCode, Json, WireError};
use crate::storage_io::{AppendFile, RealIo, StorageIo};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic + version tag opening every record line.
const MAGIC: &str = "W1";

/// When the WAL flushes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record: acked mutations survive
    /// power loss.
    Always,
    /// Never sync on append; the OS flushes when it pleases. Acked
    /// mutations survive a process kill (the bytes are in the page
    /// cache) but not a power failure.
    Never,
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Never => "never",
        })
    }
}

impl FsyncPolicy {
    /// Parses the wire/CLI spelling (`always` | `never`).
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted spellings.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("fsync policy must be \"always\" or \"never\", got \"{other}\"")),
        }
    }
}

/// The mutation a WAL record describes.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A `load`: the full case document as received on the wire.
    Load {
        /// The raw case document; replay deserializes it exactly like
        /// the original request did.
        doc: Value,
    },
    /// An `edit`: the action, plus the content hash of the case state
    /// it was applied to.
    Edit {
        /// Content hash of the pre-edit case (the replay base).
        base_hash: u64,
        /// The mutation, in its wire spelling.
        action: EditAction,
    },
}

/// One durable registry mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotonic mutation sequence number (1-based, never reused).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at append time.
    pub ts_ms: u64,
    /// Registry name of the mutated case.
    pub name: String,
    /// Registry version this mutation produced.
    pub version: u64,
    /// Content hash of the resulting case state.
    pub hash: u64,
    /// What happened.
    pub op: WalOp,
}

impl WalRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("ts_ms".to_string(), Value::U64(self.ts_ms)),
            (
                "op".to_string(),
                Value::Str(
                    match self.op {
                        WalOp::Load { .. } => "load",
                        WalOp::Edit { .. } => "edit",
                    }
                    .to_string(),
                ),
            ),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("version".to_string(), Value::U64(self.version)),
            ("hash".to_string(), Value::Str(format_hash(self.hash))),
        ];
        match &self.op {
            WalOp::Load { doc } => fields.push(("case".to_string(), doc.clone())),
            WalOp::Edit { base_hash, action } => {
                fields.push(("base_hash".to_string(), Value::Str(format_hash(*base_hash))));
                fields.push(("action".to_string(), action.to_value()));
            }
        }
        Value::Object(fields)
    }

    fn from_value(value: &Value) -> Result<WalRecord, String> {
        let field = |name: &str| value.get(name).ok_or_else(|| format!("missing `{name}`"));
        let u64_field = |name: &str| {
            field(name)?.as_u64().ok_or_else(|| format!("`{name}` must be a non-negative integer"))
        };
        let hash_field = |name: &str| {
            field(name)?
                .as_str()
                .and_then(parse_hash)
                .ok_or_else(|| format!("`{name}` must be a 16-hex-digit hash"))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| "`name` must be a string".to_string())?
            .to_string();
        let op = match field("op")?.as_str() {
            Some("load") => WalOp::Load { doc: field("case")?.clone() },
            Some("edit") => WalOp::Edit {
                base_hash: hash_field("base_hash")?,
                action: EditAction::from_fields(
                    field("action")?
                        .as_object()
                        .ok_or_else(|| "`action` not an object".to_string())?,
                )
                .map_err(|e| e.message)?,
            },
            _ => return Err("`op` must be \"load\" or \"edit\"".to_string()),
        };
        Ok(WalRecord {
            seq: u64_field("seq")?,
            ts_ms: u64_field("ts_ms")?,
            name,
            version: u64_field("version")?,
            hash: hash_field("hash")?,
            op,
        })
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalReplay {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// True when a torn or corrupt tail was truncated away.
    pub torn_tail_dropped: bool,
    /// Bytes removed by the truncation (0 when the log was clean).
    pub bytes_dropped: u64,
}

/// An open, append-ready write-ahead log.
///
/// The log tracks its own logical length so a *partial* append — a
/// write that failed after landing a prefix (EIO mid-write, ENOSPC,
/// short write) — can be rolled back with a truncation. Without the
/// rollback, garbage bytes would sit between intact records; a later
/// successful append would land *after* them, and recovery's
/// longest-valid-prefix scan would stop at the garbage, silently
/// dropping acked records. When the rollback itself fails the log is
/// marked dirty and every subsequent append retries the rollback
/// first, refusing new records until the tail is clean again.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn AppendFile>,
    path: PathBuf,
    policy: FsyncPolicy,
    appended: u64,
    fsyncs: u64,
    /// Logical length of the intact log: every byte at or past this
    /// offset is rollback debt, not data.
    len: u64,
    /// True when a failed append's partial bytes could not be truncated
    /// away; cleared once a retry succeeds.
    dirty: bool,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Maps a durability I/O failure to its stable wire code.
pub fn storage_error(context: &str, e: &std::io::Error) -> WireError {
    WireError::new(ErrorCode::StorageError, format!("{context}: {e}"))
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scans every intact
    /// record, truncates a torn tail if the last crash left one, and
    /// positions the file for appending.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the file cannot be read, created, or
    /// truncated.
    pub fn open(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> std::io::Result<(Wal, WalReplay)> {
        Wal::open_with_io(path, policy, &RealIo::shared())
    }

    /// [`Wal::open`] against an explicit [`StorageIo`] — the hook the
    /// fault-injecting and crash-simulating disks plug into.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the file cannot be read, created, or
    /// truncated.
    pub fn open_with_io(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
        io: &Arc<dyn StorageIo>,
    ) -> std::io::Result<(Wal, WalReplay)> {
        let path = path.into();
        let bytes = match io.read_file(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, good_len) = scan(&bytes);
        let torn = good_len < bytes.len();
        let mut file = io.open_append(&path)?;
        if torn {
            // Drop the torn tail once, for good: the next open sees a
            // clean log ending at the last intact record.
            file.truncate(good_len as u64)?;
        }
        let replay = WalReplay {
            records,
            torn_tail_dropped: torn,
            bytes_dropped: (bytes.len() - good_len) as u64,
        };
        let wal =
            Wal { file, path, policy, appended: 0, fsyncs: 0, len: good_len as u64, dirty: false };
        Ok((wal, replay))
    }

    /// Appends one record (a single `write(2)`), then syncs per policy.
    /// Returns whether this append was fsynced.
    ///
    /// A failed append rolls its partial bytes back out (see the type
    /// docs), so the log never holds garbage between records: either
    /// the whole record is in the log, or none of it is. A failed
    /// *fsync* rolls the record back too — a record we cannot promise
    /// is durable must not reach a state where its sequence number gets
    /// reused by the next mutation.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the write or sync fails; the caller must
    /// not ack the mutation (the engine answers `read_only` with a
    /// retry hint and flips to read-only mode until an append lands).
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<bool> {
        if self.dirty {
            // A previous rollback failed; clean the tail before letting
            // anything new in, or the scan would stop at the garbage.
            self.file.truncate(self.len)?;
            self.dirty = false;
        }
        let payload = serde_json::to_string(&Json(record.to_value()))
            .expect("record serialization is infallible");
        let line =
            format!("{MAGIC} {} {:016x} {payload}\n", payload.len(), fnv64(payload.as_bytes()));
        let started = std::time::Instant::now();
        if let Err(e) = self.file.append(line.as_bytes()) {
            self.rollback();
            return Err(e);
        }
        crate::telemetry::phase_event("wal_append", started.elapsed());
        let synced = self.policy == FsyncPolicy::Always;
        if synced {
            let started = std::time::Instant::now();
            if let Err(e) = self.file.sync() {
                self.rollback();
                return Err(e);
            }
            crate::telemetry::phase_event("fsync", started.elapsed());
            self.fsyncs += 1;
        }
        self.len += line.len() as u64;
        self.appended += 1;
        Ok(synced)
    }

    /// Truncates a failed append's partial bytes back out; a failed
    /// truncation marks the log dirty for the next append to retry.
    fn rollback(&mut self) {
        if self.file.truncate(self.len).is_err() {
            self.dirty = true;
        }
    }

    /// Forces everything appended so far to stable storage, regardless
    /// of policy (graceful drain calls this).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the sync fails.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync()?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Empties the log after a snapshot has captured everything in it.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the truncation fails.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.truncate(0)?;
        self.len = 0;
        self.dirty = false;
        Ok(())
    }

    /// Records appended through this handle (not counting replay).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Fsyncs issued through this handle.
    #[must_use]
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The log's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Parses intact records off the front of `bytes`; returns them plus
/// the byte length of the intact prefix. Anything after the first bad
/// frame — torn write, checksum mismatch, unparseable payload,
/// non-monotonic sequence — is untrusted and excluded.
fn scan(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_seq = 0u64;
    while pos < bytes.len() {
        let Some(record_len) = parse_record(&bytes[pos..], &mut records, &mut last_seq) else {
            break;
        };
        pos += record_len;
    }
    (records, pos)
}

/// Parses one record at the start of `bytes`, pushing it on success and
/// returning its total byte length (`None` = bad frame, stop here).
fn parse_record(bytes: &[u8], records: &mut Vec<WalRecord>, last_seq: &mut u64) -> Option<usize> {
    // "W1 <len> <checksum> " — header fields are space-delimited ASCII.
    let header_end = bytes.iter().position(|&b| b == b' ')?;
    if &bytes[..header_end] != MAGIC.as_bytes() {
        return None;
    }
    let rest = &bytes[header_end + 1..];
    let len_end = rest.iter().position(|&b| b == b' ')?;
    let len: usize = std::str::from_utf8(&rest[..len_end]).ok()?.parse().ok()?;
    let rest = &rest[len_end + 1..];
    let sum_end = rest.iter().position(|&b| b == b' ')?;
    let checksum = parse_hash(std::str::from_utf8(&rest[..sum_end]).ok()?)?;
    let payload_start = header_end + 1 + len_end + 1 + sum_end + 1;
    // Payload + trailing newline must both be present and intact.
    let total = payload_start + len + 1;
    if bytes.len() < total || bytes[total - 1] != b'\n' {
        return None;
    }
    let payload = &bytes[payload_start..payload_start + len];
    if fnv64(payload) != checksum {
        return None;
    }
    let Json(value) = serde_json::from_str::<Json>(std::str::from_utf8(payload).ok()?).ok()?;
    let record = WalRecord::from_value(&value).ok()?;
    if record.seq <= *last_seq {
        return None;
    }
    *last_seq = record.seq;
    records.push(record);
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("depcase_wal_{tag}_{}", std::process::id()));
        path
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                ts_ms: 1_700_000_000_000,
                name: "reactor".into(),
                version: 1,
                hash: 0xaaaa_bbbb_cccc_dddd,
                op: WalOp::Load {
                    doc: Value::Object(vec![("title".into(), Value::Str("t".into()))]),
                },
            },
            WalRecord {
                seq: 2,
                ts_ms: 1_700_000_000_123,
                name: "reactor".into(),
                version: 2,
                hash: 0x1111_2222_3333_4444,
                op: WalOp::Edit {
                    base_hash: 0xaaaa_bbbb_cccc_dddd,
                    action: EditAction::SetConfidence { node: "E1".into(), confidence: 0.97 },
                },
            },
            WalRecord {
                seq: 3,
                ts_ms: 1_700_000_000_456,
                name: "reactor".into(),
                version: 3,
                hash: 0x5555_6666_7777_8888,
                op: WalOp::Edit {
                    base_hash: 0x1111_2222_3333_4444,
                    action: EditAction::AddLeaf {
                        parent: "G".into(),
                        node: "E9".into(),
                        statement: None,
                        kind: crate::protocol::WireLeafKind::Evidence,
                        confidence: 0.8,
                    },
                },
            },
        ]
    }

    #[test]
    fn records_round_trip_through_append_and_replay() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert!(replay.records.is_empty() && !replay.torn_tail_dropped);
        for record in sample_records() {
            assert!(wal.append(&record).unwrap(), "Always policy must fsync");
        }
        assert_eq!((wal.appended(), wal.fsyncs()), (3, 3));
        drop(wal);

        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(!replay.torn_tail_dropped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_exactly_once() {
        let path = tmp_path("torn");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for record in sample_records() {
            assert!(!wal.append(&record).unwrap(), "Never policy must not fsync");
        }
        drop(wal);

        // Tear the final record mid-payload, as a crash mid-write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records, sample_records()[..2]);
        assert!(replay.torn_tail_dropped);
        assert!(replay.bytes_dropped > 0);

        // The truncation already happened: a second open is clean.
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.torn_tail_dropped, "the torn tail must be dropped exactly once");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_and_garbage_tails_are_dropped() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        drop(wal);

        // Flip one payload byte of the last record: frame intact,
        // checksum wrong.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.torn_tail_dropped);

        // Pure garbage appended after good records is dropped too.
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&sample_records()[2]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"not a record at all");
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert!(replay.torn_tail_dropped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = tmp_path("trunc");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for record in sample_records() {
            wal.append(&record).unwrap();
        }
        wal.truncate().unwrap();
        wal.append(&WalRecord { seq: 9, ..sample_records()[0].clone() }).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].seq, 9);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_monotonic_sequences_stop_the_scan() {
        let path = tmp_path("seq");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let records = sample_records();
        wal.append(&records[1]).unwrap(); // seq 2
        wal.append(&records[0]).unwrap(); // seq 1 — must not replay
        drop(wal);
        let (_, replay) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].seq, 2);
        assert!(replay.torn_tail_dropped);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_appends_roll_their_partial_bytes_back_out() {
        use crate::storage_io::{FaultyIo, SimIo};
        let sim = SimIo::new();
        let faulty =
            FaultyIo::parse(Arc::new(sim.clone()), "seed=3,short_write=1.0,short_write_cap=1")
                .unwrap();
        let io: Arc<dyn StorageIo> = Arc::new(faulty);
        let path = PathBuf::from("/wal.log");
        let (mut wal, _) = Wal::open_with_io(&path, FsyncPolicy::Never, &io).unwrap();
        let records = sample_records();
        let err = wal.append(&records[0]).unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        // The partial prefix was rolled back: retries land cleanly and
        // the log holds exactly the acked records, no garbage between.
        wal.append(&records[0]).unwrap();
        wal.append(&records[1]).unwrap();
        drop(wal);
        let (_, replay) = Wal::open_with_io(&path, FsyncPolicy::Never, &io).unwrap();
        assert_eq!(replay.records, records[..2]);
        assert!(!replay.torn_tail_dropped, "rollback must leave nothing to truncate");
    }

    #[test]
    fn fsync_policy_parses_its_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
