//! Per-request span trees and the ring buffers that retain them.
//!
//! Every request the service traces gets a [`TraceBuilder`]: a trace
//! id, a monotonic epoch (the instant the request line was accepted),
//! and a growing list of [`SpanRecord`]s forming a tree — `queue_wait`,
//! `parse`, `engine` and `reply_flush` at the root, with engine phases
//! (`plan_compile`, `mc_sample_loop`, `wal_append`, `fsync`, …) nested
//! under `engine`. Timestamps are nanosecond offsets from the epoch, so
//! a span tree is self-contained and immune to wall-clock steps; one
//! wall-clock microsecond stamp taken at the epoch anchors the whole
//! tree for Chrome trace-event export.
//!
//! Completed traces are published into [`TraceRing`]s as `Arc<Trace>`
//! in a single pointer swap — a reader can never observe a torn or
//! half-built span tree, because the tree is immutable before it
//! becomes reachable. The ring is fixed-capacity and overwrites the
//! oldest entry; pushing allocates nothing beyond the `Arc` the caller
//! already built.

use crate::lock_unpoisoned;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel duration of a span that has begun but not ended. Builders
/// close every open span before publishing, so exported trees never
/// contain it; [`Trace::is_well_formed`] checks anyway.
pub const OPEN_NS: u64 = u64::MAX;

/// One node of a span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stable phase name (`"queue_wait"`, `"engine"`, `"fsync"`, …).
    pub name: &'static str,
    /// Index of the parent span in the trace's span list, or `None`
    /// for a root phase. Parents always precede children.
    pub parent: Option<u32>,
    /// Start offset from the trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds ([`OPEN_NS`] while still open).
    pub dur_ns: u64,
}

impl SpanRecord {
    /// End offset from the trace epoch in nanoseconds (saturating).
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// A completed, immutable span tree for one request.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Service-unique trace id (monotonic).
    pub id: u64,
    /// Wire op name of the request (`"?"` until parsing named it).
    pub op: &'static str,
    /// Whether the request answered `"ok": true`.
    pub ok: bool,
    /// Wall-clock microseconds since the Unix epoch at the trace
    /// epoch — the anchor Chrome trace-event timestamps hang from.
    pub start_unix_us: u64,
    /// End-to-end duration (epoch → publication) in nanoseconds.
    pub total_ns: u64,
    /// The span tree, parents before children.
    pub spans: Vec<SpanRecord>,
    /// Named quantities observed along the way (`mc_samples`,
    /// `spine_nodes`, …), in report order.
    pub counts: Vec<(&'static str, u64)>,
}

impl Trace {
    /// Structural invariants every exported trace must satisfy: no
    /// open (torn) spans, parents precede their children, every child
    /// completes no later than its parent, and no span outlives the
    /// trace total. The ring-buffer proptest drives this under
    /// concurrent overwrite.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.spans.iter().enumerate().all(|(i, s)| {
            if s.dur_ns == OPEN_NS {
                return false;
            }
            match s.parent {
                None => s.end_ns() <= self.total_ns,
                Some(p) => {
                    (p as usize) < i
                        && self.spans[p as usize].end_ns() >= s.end_ns()
                        && self.spans[p as usize].start_ns <= s.start_ns
                }
            }
        })
    }

    /// Sum of root-phase durations in nanoseconds — the decomposition
    /// side of the "phase sums reconcile with the end-to-end total"
    /// invariant (root phases are contiguous by construction).
    #[must_use]
    pub fn root_phase_sum_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .fold(0u64, |acc, s| acc.saturating_add(s.dur_ns))
    }
}

/// Builds one request's span tree as the request moves through the
/// pipeline. Not thread-safe by design — it travels *with* the request
/// (worker thread, then the reply path) and is owned by exactly one
/// stage at a time.
#[derive(Debug)]
pub struct TraceBuilder {
    id: u64,
    epoch: Instant,
    start_unix_us: u64,
    op: &'static str,
    ok: bool,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    counts: Vec<(&'static str, u64)>,
}

impl TraceBuilder {
    /// Starts a trace whose epoch is `accepted` — the instant the
    /// request line was framed, so the first span (`queue_wait`) starts
    /// at offset zero.
    #[must_use]
    pub fn new(id: u64, accepted: Instant) -> Self {
        let since_accept = accepted.elapsed();
        let now_unix =
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap_or_default();
        let start_unix_us = (now_unix.as_micros().min(u128::from(u64::MAX)) as u64)
            .saturating_sub(since_accept.as_micros().min(u128::from(u64::MAX)) as u64);
        TraceBuilder {
            id,
            epoch: accepted,
            start_unix_us,
            op: "?",
            ok: false,
            spans: Vec::with_capacity(8),
            stack: Vec::with_capacity(4),
            counts: Vec::new(),
        }
    }

    /// The trace id (for error paths that want to log it).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Names the wire op once parsing has identified it.
    pub fn set_op(&mut self, op: &'static str) {
        self.op = op;
    }

    /// Records whether the request ultimately succeeded.
    pub fn set_ok(&mut self, ok: bool) {
        self.ok = ok;
    }

    /// Nanoseconds from the epoch to `at` (0 for instants before it).
    fn offset_ns(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// Opens a span starting now, child of the innermost open span.
    pub fn begin(&mut self, name: &'static str) {
        self.begin_at(name, Instant::now());
    }

    /// Opens a span that started at `at` (used for `queue_wait`, whose
    /// start predates the worker picking the job up).
    pub fn begin_at(&mut self, name: &'static str, at: Instant) {
        let idx = self.spans.len() as u32;
        self.spans.push(SpanRecord {
            name,
            parent: self.stack.last().copied(),
            start_ns: self.offset_ns(at),
            dur_ns: OPEN_NS,
        });
        self.stack.push(idx);
    }

    /// Closes the innermost open span at now. No-op with nothing open.
    pub fn end(&mut self) {
        if let Some(idx) = self.stack.pop() {
            let now = self.offset_ns(Instant::now());
            let span = &mut self.spans[idx as usize];
            span.dur_ns = now.saturating_sub(span.start_ns);
        }
    }

    /// Closes every open span at now — used after `catch_unwind`,
    /// where a panic may have unwound past any number of open child
    /// spans, so the next root phase opens at depth zero.
    pub fn end_open(&mut self) {
        while !self.stack.is_empty() {
            self.end();
        }
    }

    /// Records an already-completed phase of duration `dur_ns` ending
    /// now, as a child of the innermost open span — how the assurance
    /// kernels' [`Tracer`](depcase::assurance::trace::Tracer) phase
    /// reports land in the tree.
    pub fn event_ns(&mut self, name: &'static str, dur_ns: u64) {
        let end = self.offset_ns(Instant::now());
        let parent = self.stack.last().copied();
        // An over-reported elapsed (clock skew, instrumentation drift)
        // must not backdate the phase past its parent's start — clamp
        // so the exported tree stays well-formed.
        let floor = parent.map_or(0, |p| self.spans[p as usize].start_ns);
        let start_ns = end.saturating_sub(dur_ns).max(floor);
        self.spans.push(SpanRecord { name, parent, start_ns, dur_ns: end - start_ns });
    }

    /// Records a named count against the trace.
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.counts.push((name, n));
    }

    /// Closes every open span and freezes the tree. The total spans
    /// epoch → now, which is also the end instant of the last root
    /// phase when the builder was driven phase-to-phase.
    #[must_use]
    pub fn finish(mut self) -> Trace {
        while !self.stack.is_empty() {
            self.end();
        }
        let total_ns = self.offset_ns(Instant::now());
        // Clamp span ends to the total so late clock reads inside
        // `end()` cannot make a child outlive the trace.
        for span in &mut self.spans {
            if span.dur_ns != OPEN_NS {
                span.dur_ns = span.dur_ns.min(total_ns.saturating_sub(span.start_ns));
            }
        }
        Trace {
            id: self.id,
            op: self.op,
            ok: self.ok,
            start_unix_us: self.start_unix_us,
            total_ns,
            spans: self.spans,
            counts: self.counts,
        }
    }
}

/// Fixed-capacity overwrite-oldest retention of completed traces.
///
/// Writers claim a slot with one `fetch_add` and swap the `Arc` in
/// under the slot's own mutex — uncontended in practice (two writers
/// collide only when they land on the same slot), never held across
/// anything slower than a pointer swap, and allocation-free. Snapshots
/// clone the `Arc`s out; because a trace is immutable before it is
/// published, a snapshot can contain complete trees only.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<Arc<Trace>>>>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// An empty ring retaining up to `capacity` traces (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Publishes one completed trace, overwriting the oldest entry
    /// once the ring is full.
    pub fn push(&self, trace: Arc<Trace>) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *lock_unpoisoned(&self.slots[i]) = Some(trace);
    }

    /// Clones out every retained trace, unordered; callers sort by
    /// trace id when recency matters.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<Trace>> {
        self.slots.iter().filter_map(|s| lock_unpoisoned(s).clone()).collect()
    }

    /// The retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_a_well_formed_tree() {
        let accepted = Instant::now();
        let mut tb = TraceBuilder::new(7, accepted);
        tb.set_op("eval");
        tb.begin_at("queue_wait", accepted);
        tb.end();
        tb.begin("engine");
        tb.event_ns("plan_compile", 10);
        tb.count("plan_steps", 3);
        tb.end();
        tb.set_ok(true);
        let trace = tb.finish();
        assert!(trace.is_well_formed(), "{trace:?}");
        assert_eq!(trace.id, 7);
        assert_eq!(trace.op, "eval");
        assert!(trace.ok);
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].name, "queue_wait");
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[2].name, "plan_compile");
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.counts, vec![("plan_steps", 3)]);
        assert!(trace.root_phase_sum_ns() <= trace.total_ns);
    }

    #[test]
    fn finish_closes_abandoned_spans() {
        let mut tb = TraceBuilder::new(1, Instant::now());
        tb.begin("engine");
        tb.begin("inner");
        let trace = tb.finish(); // both still open
        assert!(trace.is_well_formed(), "{trace:?}");
        assert!(trace.spans.iter().all(|s| s.dur_ns != OPEN_NS));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = TraceRing::new(2);
        for id in 0..5u64 {
            let tb = TraceBuilder::new(id, Instant::now());
            ring.push(Arc::new(tb.finish()));
        }
        let mut ids: Vec<u64> = ring.snapshot().iter().map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(ring.capacity(), 2);
    }
}
