//! Content-addressed snapshots of the registry.
//!
//! A snapshot is a **manifest** (`manifest.json`) naming every
//! registered case — its full version history, each version's content
//! hash and timestamp — plus an **object store** (`objects/<hash>.json`)
//! holding one serialized case document per distinct content hash.
//! Because objects are keyed by `Case::content_hash()`, a case that did
//! not change between snapshots is written once, ever: successive
//! snapshots re-reference the same object file instead of copying the
//! document again, and two names registering identical documents share
//! one object.
//!
//! The write protocol keeps every intermediate state recoverable:
//!
//! 1. write each *missing* object to `objects/<hash>.json.tmp`, sync,
//!    rename into place (objects are immutable once named — a rename
//!    either lands the whole document or leaves the old state);
//! 2. write the manifest the same tmp-then-rename way, recording the
//!    WAL sequence number it covers;
//! 3. only then does the caller truncate the WAL.
//!
//! A crash between (2) and (3) leaves WAL records the manifest already
//! covers; replay skips records with `seq` at or below the manifest's,
//! so double-application is impossible. A crash before (2) leaves the
//! previous manifest intact and the WAL untouched — the new objects
//! are garbage that the next snapshot simply reuses.

use crate::protocol::{format_hash, parse_hash, Json};
use crate::storage_io::{RealIo, StorageIo};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One recorded version of a named case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionRecord {
    /// Registry version (1-based, monotonic per name).
    pub version: u64,
    /// Content hash of the case at that version.
    pub hash: u64,
    /// Wall-clock milliseconds when the version was created.
    pub ts_ms: u64,
}

/// A named case's entry in the manifest: its whole history, oldest
/// first; the last record is the current version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestCase {
    /// Registry name.
    pub name: String,
    /// Every version ever recorded, oldest first.
    pub history: Vec<VersionRecord>,
}

/// The snapshot manifest: which cases existed, at which versions, as of
/// which WAL sequence number.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Highest WAL sequence number this snapshot covers; replay skips
    /// records at or below it.
    pub seq: u64,
    /// Every registered case, sorted by name for stable output.
    pub cases: Vec<ManifestCase>,
}

impl Manifest {
    fn to_value(&self) -> Value {
        let cases = self
            .cases
            .iter()
            .map(|c| {
                let history = c
                    .history
                    .iter()
                    .map(|v| {
                        Value::Object(vec![
                            ("version".to_string(), Value::U64(v.version)),
                            ("hash".to_string(), Value::Str(format_hash(v.hash))),
                            ("ts_ms".to_string(), Value::U64(v.ts_ms)),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("history".to_string(), Value::Array(history)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("cases".to_string(), Value::Array(cases)),
        ])
    }

    fn from_value(value: &Value) -> Result<Manifest, String> {
        let seq = value
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| "manifest `seq` must be a non-negative integer".to_string())?;
        let cases_value = value
            .get("cases")
            .and_then(Value::as_array)
            .ok_or_else(|| "manifest `cases` must be an array".to_string())?;
        let mut cases = Vec::with_capacity(cases_value.len());
        for case in cases_value {
            let name = case
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| "case `name` must be a string".to_string())?
                .to_string();
            let history_value = case
                .get("history")
                .and_then(Value::as_array)
                .ok_or_else(|| format!("case `{name}` history must be an array"))?;
            let mut history = Vec::with_capacity(history_value.len());
            for entry in history_value {
                history.push(VersionRecord {
                    version: entry
                        .get("version")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("case `{name}` has a bad version"))?,
                    hash: entry
                        .get("hash")
                        .and_then(Value::as_str)
                        .and_then(parse_hash)
                        .ok_or_else(|| format!("case `{name}` has a bad hash"))?,
                    ts_ms: entry
                        .get("ts_ms")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("case `{name}` has a bad timestamp"))?,
                });
            }
            if history.is_empty() {
                return Err(format!("case `{name}` has an empty history"));
            }
            cases.push(ManifestCase { name, history });
        }
        Ok(Manifest { seq, cases })
    }
}

/// The on-disk layout rooted at `--data-dir`: WAL, manifest, objects,
/// and a `quarantine/` pen for corrupt objects awaiting repair.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    objects: PathBuf,
    io: Arc<dyn StorageIo>,
}

fn invalid(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

impl Store {
    /// Opens (creating directories as needed) the store rooted at
    /// `root`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        Store::open_with_io(root, RealIo::shared())
    }

    /// [`Store::open`] against an explicit [`StorageIo`] — the hook the
    /// fault-injecting and crash-simulating disks plug into.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the directories cannot be created.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        io: Arc<dyn StorageIo>,
    ) -> std::io::Result<Store> {
        let root = root.into();
        let objects = root.join("objects");
        io.create_dir_all(&objects)?;
        Ok(Store { root, objects, io })
    }

    /// The [`StorageIo`] this store (and its WAL) runs against.
    #[must_use]
    pub fn io(&self) -> &Arc<dyn StorageIo> {
        &self.io
    }

    /// Path of the write-ahead log inside this store.
    #[must_use]
    pub fn wal_path(&self) -> PathBuf {
        self.root.join("wal.log")
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    fn object_path(&self, hash: u64) -> PathBuf {
        self.objects.join(format!("{}.json", format_hash(hash)))
    }

    /// Reads the manifest, or `None` when no snapshot has been taken.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on read failure, with kind `InvalidData` when
    /// the manifest exists but does not parse — a store that corrupt
    /// needs operator attention, not silent re-initialization.
    pub fn load_manifest(&self) -> std::io::Result<Option<Manifest>> {
        let bytes = match self.io.read_file(&self.manifest_path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let text =
            String::from_utf8(bytes).map_err(|e| invalid(format!("manifest is not UTF-8: {e}")))?;
        let Json(value) = serde_json::from_str::<Json>(&text)
            .map_err(|e| invalid(format!("manifest does not parse: {e}")))?;
        Manifest::from_value(&value).map(Some).map_err(invalid)
    }

    /// Writes the manifest atomically (tmp, sync, rename).
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on write failure.
    pub fn write_manifest(&self, manifest: &Manifest) -> std::io::Result<()> {
        let text = serde_json::to_string(&Json(manifest.to_value()))
            .expect("manifest serialization is infallible");
        write_atomic(&self.io, &self.manifest_path(), text.as_bytes())
    }

    /// True when the object for `hash` is already stored.
    #[must_use]
    pub fn has_object(&self, hash: u64) -> bool {
        self.io.exists(&self.object_path(hash))
    }

    /// Writes one case document under its content hash, atomically.
    /// Returns `false` without touching disk when the object already
    /// exists — that is the deduplication: identical content is stored
    /// once no matter how many names or snapshots reference it.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on write failure.
    pub fn write_object(&self, hash: u64, doc: &Value) -> std::io::Result<bool> {
        let path = self.object_path(hash);
        if self.io.exists(&path) {
            return Ok(false);
        }
        self.rewrite_object(hash, doc)?;
        Ok(true)
    }

    /// Writes one case document under its content hash *unconditionally*
    /// — the repair path, which must replace a corrupt object rather
    /// than dedup against its existence.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on write failure.
    pub fn rewrite_object(&self, hash: u64, doc: &Value) -> std::io::Result<()> {
        let text = serde_json::to_string(&Json(doc.clone()))
            .expect("document serialization is infallible");
        write_atomic(&self.io, &self.object_path(hash), text.as_bytes())
    }

    /// Reads the case document stored under `hash`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the object is missing or unreadable,
    /// with kind `InvalidData` when it does not parse.
    pub fn read_object(&self, hash: u64) -> std::io::Result<Value> {
        let bytes = self.io.read_file(&self.object_path(hash))?;
        let text = String::from_utf8(bytes)
            .map_err(|e| invalid(format!("object {} is not UTF-8: {e}", format_hash(hash))))?;
        let Json(value) = serde_json::from_str::<Json>(&text)
            .map_err(|e| invalid(format!("object {} does not parse: {e}", format_hash(hash))))?;
        Ok(value)
    }

    /// Every content hash with an object file currently stored, parsed
    /// from the `objects/` listing — what scrub iterates. Files that do
    /// not look like `<16-hex>.json` (stray tmp files, editor droppings)
    /// are ignored.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the directory cannot be listed.
    pub fn object_hashes(&self) -> std::io::Result<Vec<u64>> {
        let mut hashes = Vec::new();
        for path in self.io.list_dir(&self.objects)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(stem) = name.strip_suffix(".json") else { continue };
            if let Some(hash) = parse_hash(stem) {
                hashes.push(hash);
            }
        }
        hashes.sort_unstable();
        Ok(hashes)
    }

    /// Moves a corrupt object file into `quarantine/`, where it stops
    /// being served but stays available for forensics. Returns the
    /// quarantine path.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the rename fails.
    pub fn quarantine_object(&self, hash: u64) -> std::io::Result<PathBuf> {
        let pen = self.root.join("quarantine");
        self.io.create_dir_all(&pen)?;
        let target = pen.join(format!("{}.json", format_hash(hash)));
        self.io.rename(&self.object_path(hash), &target)?;
        Ok(target)
    }
}

/// Write-to-tmp, sync, rename-into-place. The rename is atomic on every
/// platform the service targets, so readers see either the old file or
/// the complete new one, never a prefix.
fn write_atomic(io: &Arc<dyn StorageIo>, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    io.write_new(&tmp, bytes)?;
    io.rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let mut root = std::env::temp_dir();
        root.push(format!("depcase_snap_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(&root).unwrap();
        (root, store)
    }

    fn sample_manifest() -> Manifest {
        Manifest {
            seq: 17,
            cases: vec![
                ManifestCase {
                    name: "pump".into(),
                    history: vec![VersionRecord { version: 1, hash: 0xdead_beef, ts_ms: 5 }],
                },
                ManifestCase {
                    name: "reactor".into(),
                    history: vec![
                        VersionRecord { version: 1, hash: 0xdead_beef, ts_ms: 1 },
                        VersionRecord { version: 2, hash: 0xcafe_f00d, ts_ms: 2 },
                    ],
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let (root, store) = tmp_store("manifest");
        assert!(store.load_manifest().unwrap().is_none(), "fresh store has no manifest");
        store.write_manifest(&sample_manifest()).unwrap();
        assert_eq!(store.load_manifest().unwrap().unwrap(), sample_manifest());
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn corrupt_manifests_are_an_error_not_a_reset() {
        let (root, store) = tmp_store("corrupt");
        std::fs::write(root.join("manifest.json"), b"{ not json").unwrap();
        let err = store.load_manifest().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn object_listings_quarantine_and_rewrite_support_scrub() {
        let (root, store) = tmp_store("scrub");
        let doc = Value::Object(vec![("title".into(), Value::Str("t".into()))]);
        store.write_object(0xaa, &doc).unwrap();
        store.write_object(0xbb, &doc).unwrap();
        // A stray tmp file must not confuse the listing.
        std::fs::write(root.join("objects").join("leftover.tmp"), b"junk").unwrap();
        assert_eq!(store.object_hashes().unwrap(), vec![0xaa, 0xbb]);

        let pen = store.quarantine_object(0xaa).unwrap();
        assert!(pen.to_string_lossy().contains("quarantine"));
        assert!(!store.has_object(0xaa), "a quarantined object is no longer served");
        assert_eq!(store.object_hashes().unwrap(), vec![0xbb]);

        let repaired = Value::Object(vec![("title".into(), Value::Str("fixed".into()))]);
        store.rewrite_object(0xbb, &repaired).unwrap();
        assert_eq!(store.read_object(0xbb).unwrap(), repaired, "rewrite must replace, not dedup");
        std::fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn objects_deduplicate_by_content_hash() {
        let (root, store) = tmp_store("objects");
        let doc = Value::Object(vec![("title".into(), Value::Str("t".into()))]);
        assert!(!store.has_object(42));
        assert!(store.write_object(42, &doc).unwrap(), "first write stores the object");
        assert!(!store.write_object(42, &doc).unwrap(), "second write is a dedup no-op");
        assert!(store.has_object(42));
        assert_eq!(store.read_object(42).unwrap(), doc);
        assert!(store.read_object(7).is_err(), "missing objects are an error");
        std::fs::remove_dir_all(root).unwrap();
    }
}
