//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, always in request order
//! even when the engine completes them out of order. Every request is a
//! JSON object with an `"op"` field and an optional client-chosen
//! `"id"`, echoed verbatim in the response so pipelined clients can
//! match answers to questions:
//!
//! ```text
//! → {"id":1,"op":"load","name":"reactor","case":{...}}
//! ← {"id":1,"ok":true,"result":{"name":"reactor","version":1,"hash":"9f2d…","nodes":5}}
//! → {"id":2,"op":"eval","name":"reactor"}
//! ← {"id":2,"ok":true,"result":{...per-node confidences...}}
//! → {"id":3,"op":"nope"}
//! ← {"id":3,"ok":false,"error":{"code":"unknown_op","message":"unknown op `nope`"}}
//! ```
//!
//! Failures carry a stable machine-readable `code`; codes originating in
//! the library map one-to-one from [`depcase::Error`] variants (`case`,
//! `confidence`, `distribution`, `numerics`), while the transport adds
//! `bad_json`, `bad_request`, `unknown_op`, `unknown_case`, and
//! `bad_case`.

use serde::{Deserialize, Serialize, Value};

/// A raw [`Value`] viewed as a (de)serializable document.
///
/// The vendored `serde` implements its traits on typed data, not on
/// `Value` itself; this newtype closes the gap so the service can parse
/// and print request/response lines it assembles by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct Json(pub Value);

impl Serialize for Json {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for Json {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Json(v.clone()))
    }
}

/// Default Monte-Carlo sample count when a `mc` request omits it.
pub const DEFAULT_MC_SAMPLES: u32 = 65_536;

/// Machine-readable failure category on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was valid but the request shape was not.
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The named case has never been loaded.
    UnknownCase,
    /// The case document in a `load` did not deserialize.
    BadCase,
    /// The library rejected the argument graph ([`depcase::Error::Case`]).
    Case,
    /// The claim calculus failed ([`depcase::Error::Confidence`]).
    Confidence,
    /// A belief distribution failed ([`depcase::Error::Distribution`]).
    Distribution,
    /// A numerical routine failed ([`depcase::Error::Numerics`]).
    Numerics,
}

impl ErrorCode {
    /// The stable wire spelling of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownCase => "unknown_case",
            ErrorCode::BadCase => "bad_case",
            ErrorCode::Case => "case",
            ErrorCode::Confidence => "confidence",
            ErrorCode::Distribution => "distribution",
            ErrorCode::Numerics => "numerics",
        }
    }
}

/// A wire-reportable failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds a wire error from a code and any displayable message.
    pub fn new(code: ErrorCode, message: impl std::fmt::Display) -> Self {
        WireError { code, message: message.to_string() }
    }
}

impl From<depcase::Error> for WireError {
    fn from(e: depcase::Error) -> Self {
        let code = match &e {
            depcase::Error::Case(_) => ErrorCode::Case,
            depcase::Error::Confidence(_) => ErrorCode::Confidence,
            depcase::Error::Distribution(_) => ErrorCode::Distribution,
            depcase::Error::Numerics(_) => ErrorCode::Numerics,
        };
        WireError::new(code, e)
    }
}

/// SIL demand mode named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDemandMode {
    /// `"low_demand"` — bands constrain pfd.
    LowDemand,
    /// `"high_demand"` — bands constrain pfh.
    HighDemand,
}

impl WireDemandMode {
    fn parse(s: &str) -> Result<Self, WireError> {
        match s {
            "low_demand" => Ok(WireDemandMode::LowDemand),
            "high_demand" => Ok(WireDemandMode::HighDemand),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!("mode must be \"low_demand\" or \"high_demand\", got \"{other}\""),
            )),
        }
    }

    /// The library's demand mode for this wire spelling.
    #[must_use]
    pub fn to_lib(self) -> depcase::sil::DemandMode {
        match self {
            WireDemandMode::LowDemand => depcase::sil::DemandMode::LowDemand,
            WireDemandMode::HighDemand => depcase::sil::DemandMode::HighDemand,
        }
    }
}

/// A parsed request, ready for the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or replace) a named case from an inline JSON document.
    Load {
        /// Registry name for the case.
        name: String,
        /// The case document, still raw; the engine deserializes it.
        case: Value,
    },
    /// Analytic confidence propagation over a named case.
    Eval {
        /// Registry name of the case.
        name: String,
    },
    /// Evidence ranked by Birnbaum importance and gain-if-certain.
    Rank {
        /// Registry name of the case.
        name: String,
    },
    /// Monte-Carlo cross-check with the deterministic parallel engine.
    Mc {
        /// Registry name of the case.
        name: String,
        /// Sample count (default [`DEFAULT_MC_SAMPLES`]).
        samples: u32,
        /// RNG seed (default 0); fixes every estimate bit-for-bit.
        seed: u64,
        /// Worker threads, 0 = auto (default 0).
        threads: usize,
    },
    /// SIL band membership for the root claim confidence.
    Bands {
        /// Registry name of the case.
        name: String,
        /// The claimed failure-measure bound (pfd or pfh).
        pfd_bound: f64,
        /// Which IEC 61508 band table applies.
        mode: WireDemandMode,
    },
    /// Observability snapshot: per-op latency, cache counters.
    Stats,
    /// Stop the service; the response carries the final stats snapshot.
    Shutdown,
}

/// The client-supplied `id`, echoed back verbatim (any JSON scalar).
pub type RequestId = Option<Value>;

fn str_field(obj: &[(String, Value)], name: &str) -> Result<String, WireError> {
    match serde::field(obj, name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(_) => {
            Err(WireError::new(ErrorCode::BadRequest, format!("field `{name}` must be a string")))
        }
        Err(e) => Err(WireError::new(ErrorCode::BadRequest, e)),
    }
}

fn opt_u64(obj: &[(String, Value)], name: &str, default: u64) -> Result<u64, WireError> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, v)) => v.as_u64().ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("field `{name}` must be a non-negative integer"),
            )
        }),
    }
}

/// Parses one request line into its id and operation.
///
/// # Errors
///
/// [`WireError`] with code `bad_json`, `bad_request`, or `unknown_op`,
/// paired with whatever `id` could be recovered from the line so the
/// error response still echoes it ([`None`] when the line was not even
/// a JSON object).
pub fn parse_request(line: &str) -> Result<(RequestId, Request), (RequestId, WireError)> {
    let Json(value) = serde_json::from_str::<Json>(line)
        .map_err(|e| (None, WireError::new(ErrorCode::BadJson, e)))?;
    let Some(obj) = value.as_object() else {
        return Err((None, WireError::new(ErrorCode::BadRequest, "request must be a JSON object")));
    };
    let id = value.get("id").cloned();
    match parse_op(&value, obj) {
        Ok(request) => Ok((id, request)),
        Err(err) => Err((id, err)),
    }
}

fn parse_op(value: &Value, obj: &[(String, Value)]) -> Result<Request, WireError> {
    let op = str_field(obj, "op")?;
    let request = match op.as_str() {
        "load" => {
            let case = serde::field(obj, "case")
                .map_err(|e| WireError::new(ErrorCode::BadRequest, e))?
                .clone();
            Request::Load { name: str_field(obj, "name")?, case }
        }
        "eval" => Request::Eval { name: str_field(obj, "name")? },
        "rank" => Request::Rank { name: str_field(obj, "name")? },
        "mc" => Request::Mc {
            name: str_field(obj, "name")?,
            samples: u32::try_from(opt_u64(obj, "samples", u64::from(DEFAULT_MC_SAMPLES))?)
                .map_err(|_| WireError::new(ErrorCode::BadRequest, "field `samples` too large"))?,
            seed: opt_u64(obj, "seed", 0)?,
            threads: usize::try_from(opt_u64(obj, "threads", 0)?)
                .map_err(|_| WireError::new(ErrorCode::BadRequest, "field `threads` too large"))?,
        },
        "bands" => {
            let pfd_bound = match obj.iter().find(|(k, _)| k == "pfd_bound") {
                Some((_, v)) => v.as_f64().ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "field `pfd_bound` must be a number")
                })?,
                None => {
                    return Err(WireError::new(ErrorCode::BadRequest, "missing field `pfd_bound`"))
                }
            };
            let mode = match value.get("mode") {
                None => WireDemandMode::LowDemand,
                Some(Value::Str(s)) => WireDemandMode::parse(s)?,
                Some(_) => {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        "field `mode` must be a string",
                    ))
                }
            };
            Request::Bands { name: str_field(obj, "name")?, pfd_bound, mode }
        }
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(WireError::new(ErrorCode::UnknownOp, format!("unknown op `{other}`"))),
    };
    Ok(request)
}

impl Request {
    /// The operation name, as spelled on the wire (for stats bucketing).
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Eval { .. } => "eval",
            Request::Rank { .. } => "rank",
            Request::Mc { .. } => "mc",
            Request::Bands { .. } => "bands",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

fn with_id(id: &RequestId, mut fields: Vec<(String, Value)>) -> Value {
    let mut out = Vec::with_capacity(fields.len() + 1);
    if let Some(id) = id {
        out.push(("id".to_string(), id.clone()));
    }
    out.append(&mut fields);
    Value::Object(out)
}

/// Renders a success response line (no trailing newline).
#[must_use]
pub fn ok_line(id: &RequestId, result: Value) -> String {
    let body =
        with_id(id, vec![("ok".to_string(), Value::Bool(true)), ("result".to_string(), result)]);
    serde_json::to_string(&Json(body)).expect("response serialization is infallible")
}

/// Renders a failure response line (no trailing newline).
#[must_use]
pub fn err_line(id: &RequestId, err: &WireError) -> String {
    let body = with_id(
        id,
        vec![
            ("ok".to_string(), Value::Bool(false)),
            (
                "error".to_string(),
                Value::Object(vec![
                    ("code".to_string(), Value::Str(err.code.as_str().to_string())),
                    ("message".to_string(), Value::Str(err.message.clone())),
                ]),
            ),
        ],
    );
    serde_json::to_string(&Json(body)).expect("response serialization is infallible")
}

/// Formats a case content hash the way every response spells it.
#[must_use]
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults() {
        let (id, req) = parse_request(r#"{"id":7,"op":"mc","name":"c"}"#).unwrap();
        assert_eq!(id, Some(Value::I64(7)));
        assert_eq!(
            req,
            Request::Mc { name: "c".into(), samples: DEFAULT_MC_SAMPLES, seed: 0, threads: 0 }
        );

        let (id, req) = parse_request(r#"{"op":"bands","name":"c","pfd_bound":1e-3}"#).unwrap();
        assert_eq!(id, None);
        assert_eq!(
            req,
            Request::Bands { name: "c".into(), pfd_bound: 1e-3, mode: WireDemandMode::LowDemand }
        );
    }

    #[test]
    fn bad_lines_carry_stable_codes() {
        let (id, err) = parse_request("not json").unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadJson));
        let (id, err) = parse_request("[1,2]").unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
        let (id, err) = parse_request(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::UnknownOp));
        let (id, err) = parse_request(r#"{"op":"eval"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
        let (id, err) = parse_request(r#"{"op":"bands","name":"c"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
    }

    #[test]
    fn errors_after_the_id_parsed_still_echo_it() {
        // The docs promise the id comes back even on failure, so
        // pipelined clients can match error responses to requests.
        let (id, err) = parse_request(r#"{"id":3,"op":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(Value::I64(3)));
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let line = err_line(&id, &err);
        assert!(line.starts_with(r#"{"id":3,"ok":false"#), "{line}");
    }

    #[test]
    fn library_errors_map_to_their_layer_code() {
        let case_err: depcase::Error =
            depcase::assurance::CaseError::DuplicateName("G".into()).into();
        assert_eq!(WireError::from(case_err).code, ErrorCode::Case);
        let num_err: depcase::Error = depcase::numerics::NumericsError::Domain("x".into()).into();
        assert_eq!(WireError::from(num_err).code, ErrorCode::Numerics);
    }

    #[test]
    fn response_lines_echo_the_id() {
        let id = Some(Value::Str("req-1".into()));
        let line = ok_line(&id, Value::Object(vec![("n".into(), Value::U64(1))]));
        assert_eq!(line, r#"{"id":"req-1","ok":true,"result":{"n":1}}"#);
        let line = err_line(&None, &WireError::new(ErrorCode::UnknownCase, "no such case"));
        assert_eq!(
            line,
            r#"{"ok":false,"error":{"code":"unknown_case","message":"no such case"}}"#
        );
    }
}
