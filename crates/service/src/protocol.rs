//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, always in request order
//! even when the engine completes them out of order. Every request is a
//! JSON object with an `"op"` field and an optional client-chosen
//! `"id"`, echoed verbatim in the response so pipelined clients can
//! match answers to questions:
//!
//! ```text
//! → {"id":1,"op":"load","name":"reactor","case":{...}}
//! ← {"id":1,"ok":true,"result":{"name":"reactor","version":1,"hash":"9f2d…","nodes":5}}
//! → {"id":2,"op":"eval","name":"reactor"}
//! ← {"id":2,"ok":true,"result":{...per-node confidences...}}
//! → {"id":3,"op":"edit","name":"reactor","action":"set_confidence","node":"E1","confidence":0.97}
//! ← {"id":3,"ok":true,"result":{"name":"reactor","version":2,...,"nodes_recomputed":3,"nodes_reused":0}}
//! → {"id":4,"op":"nope"}
//! ← {"id":4,"ok":false,"error":{"code":"unknown_op","message":"unknown op `nope`"}}
//! ```
//!
//! Failures carry a stable machine-readable `code`; codes originating in
//! the library map one-to-one from [`depcase::Error`] variants (`case`,
//! `confidence`, `distribution`, `numerics`), while the transport adds
//! `bad_json`, `bad_request`, `unknown_op`, `unknown_case`, `bad_case`,
//! the fault-tolerance codes `internal_error`, `deadline_exceeded`,
//! `overloaded` (with a `retry_after_ms` hint), and `request_too_large`,
//! and the durability codes `no_such_version` (a `history`/time-travel
//! lookup named an unrecorded version), `storage_error` (a WAL or
//! snapshot write failed; the mutation is not durable), `read_only`
//! (the engine degraded to read-only after an unrecoverable append
//! failure — retry after the attached `retry_after_ms`), and
//! `data_corrupted` (the requested version's stored object failed its
//! content-hash check and could not be repaired; it is quarantined,
//! never served silently).
//!
//! Observability rides the same grammar: `stats` snapshots per-op
//! latency (with interpolated p50/p90/p99/p999 summaries next to the
//! raw log2-µs buckets) and a `build` block (version, schema, uptime,
//! transport); `trace` returns the most recent traced requests as span
//! trees plus the per-op latency decomposition (queue wait vs parse vs
//! engine phases vs fsync vs reply flush); `metrics` dumps the unified
//! metrics registry as JSON, or as Prometheus text exposition with
//! `"format":"prometheus"`.
//!
//! The parser is strict about request framing: a line must hold exactly
//! one JSON object — trailing garbage after the object and duplicate
//! keys anywhere in it are rejected as `bad_request`, with whatever `id`
//! could be recovered still echoed so pipelined clients never lose their
//! place. Any request may carry a `"deadline_ms"` budget; the service
//! answers `deadline_exceeded` once it is spent.
//!
//! # Protocol versions
//!
//! A request may stamp a protocol version with `"v": N`. Lines without
//! the stamp (or with `"v": 1`) speak **v1** — the grammar above,
//! answered byte-for-byte as every pre-versioning release did. `"v": 2`
//! selects **v2**: responses echo the stamp (`{"id":…,"v":2,"ok":…}`)
//! and the `batch` op becomes available, carrying up to
//! [`MAX_BATCH_ITEMS`] sub-requests under one id with per-item
//! results and errors:
//!
//! ```text
//! → {"id":5,"v":2,"op":"batch","items":[{"op":"eval","name":"reactor"},{"op":"stats"}]}
//! ← {"id":5,"v":2,"ok":true,"result":{"items":[{"ok":true,"result":{…}},{"ok":true,"result":{…}}]}}
//! ```
//!
//! Any other version answers the `unsupported_version` error code, so
//! old servers and new clients fail loudly instead of misparsing each
//! other.

use serde::{Deserialize, Serialize, Value};

/// A raw [`Value`] viewed as a (de)serializable document.
///
/// The vendored `serde` implements its traits on typed data, not on
/// `Value` itself; this newtype closes the gap so the service can parse
/// and print request/response lines it assembles by hand.
#[derive(Debug, Clone, PartialEq)]
pub struct Json(pub Value);

impl Serialize for Json {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl Deserialize for Json {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Json(v.clone()))
    }
}

/// Default Monte-Carlo sample count when a `mc` request omits it.
pub const DEFAULT_MC_SAMPLES: u32 = 65_536;

/// Machine-readable failure category on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was valid but the request shape was not.
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The named case has never been loaded.
    UnknownCase,
    /// The case document in a `load` did not deserialize.
    BadCase,
    /// The library rejected the argument graph ([`depcase::Error::Case`]).
    Case,
    /// The claim calculus failed ([`depcase::Error::Confidence`]).
    Confidence,
    /// A belief distribution failed ([`depcase::Error::Distribution`]).
    Distribution,
    /// A numerical routine failed ([`depcase::Error::Numerics`]).
    Numerics,
    /// The worker handling the request panicked; the request may or may
    /// not have taken effect. The service survives and the worker is
    /// respawned.
    InternalError,
    /// The request's time budget (`deadline_ms` or the server default)
    /// was spent before the answer was ready.
    DeadlineExceeded,
    /// The service shed the request under load (full queue or connection
    /// cap); the error carries a `retry_after_ms` hint.
    Overloaded,
    /// The request line exceeded the configured maximum length; the
    /// oversized line was discarded but the connection survives.
    RequestTooLarge,
    /// A `history` lookup or time-travel `eval` named a version (or
    /// content hash) the registry has never recorded for that case.
    NoSuchVersion,
    /// The durability layer failed (WAL append, fsync, or snapshot
    /// I/O); the mutation was **not** acknowledged as durable.
    StorageError,
    /// The request stamped a protocol version (`"v"`) this server does
    /// not speak; only versions 1 and 2 exist.
    UnsupportedVersion,
    /// The engine is in read-only degraded mode after an unrecoverable
    /// append failure (disk full, dead disk): mutations are refused
    /// with a `retry_after_ms` hint while evals keep being served from
    /// memory. The engine probes the log on every refused mutation and
    /// exits read-only mode by itself once appends land again.
    ReadOnly,
    /// The requested version's stored object failed its content-hash
    /// check and could not be repaired; it is quarantined, never served
    /// silently. Not retryable — operator attention (or a fresh `load`)
    /// is required.
    DataCorrupted,
}

impl ErrorCode {
    /// Every code the service can put on the wire, in documentation
    /// order. Chaos tests assert observed codes stay inside this set.
    pub const ALL: [ErrorCode; 18] = [
        ErrorCode::BadJson,
        ErrorCode::BadRequest,
        ErrorCode::UnknownOp,
        ErrorCode::UnknownCase,
        ErrorCode::BadCase,
        ErrorCode::Case,
        ErrorCode::Confidence,
        ErrorCode::Distribution,
        ErrorCode::Numerics,
        ErrorCode::InternalError,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Overloaded,
        ErrorCode::RequestTooLarge,
        ErrorCode::NoSuchVersion,
        ErrorCode::StorageError,
        ErrorCode::UnsupportedVersion,
        ErrorCode::ReadOnly,
        ErrorCode::DataCorrupted,
    ];

    /// The stable wire spelling of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownCase => "unknown_case",
            ErrorCode::BadCase => "bad_case",
            ErrorCode::Case => "case",
            ErrorCode::Confidence => "confidence",
            ErrorCode::Distribution => "distribution",
            ErrorCode::Numerics => "numerics",
            ErrorCode::InternalError => "internal_error",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RequestTooLarge => "request_too_large",
            ErrorCode::NoSuchVersion => "no_such_version",
            ErrorCode::StorageError => "storage_error",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::ReadOnly => "read_only",
            ErrorCode::DataCorrupted => "data_corrupted",
        }
    }

    /// The code whose wire spelling is `s`, if any.
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|code| code.as_str() == s)
    }
}

/// A wire-reportable failure: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Backoff hint for load-shedding errors, serialized when present.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Builds a wire error from a code and any displayable message.
    pub fn new(code: ErrorCode, message: impl std::fmt::Display) -> Self {
        WireError { code, message: message.to_string(), retry_after_ms: None }
    }

    /// Attaches a `retry_after_ms` backoff hint.
    #[must_use]
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl From<depcase::Error> for WireError {
    fn from(e: depcase::Error) -> Self {
        let code = match &e {
            depcase::Error::Case(_) => ErrorCode::Case,
            depcase::Error::Confidence(_) => ErrorCode::Confidence,
            depcase::Error::Distribution(_) => ErrorCode::Distribution,
            depcase::Error::Numerics(_) => ErrorCode::Numerics,
            // A service error round-trips its own wire code when it has
            // one; anything else is a transport-level bad exchange.
            depcase::Error::Service { code, .. } => {
                ErrorCode::parse(code).unwrap_or(ErrorCode::BadJson)
            }
        };
        WireError::new(code, e)
    }
}

/// Leaf kind named on the wire by `edit`'s `add_leaf` action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireLeafKind {
    /// `"evidence"` — an evidence leaf (the default).
    Evidence,
    /// `"assumption"` — an assumption leaf.
    Assumption,
}

impl WireLeafKind {
    fn parse(s: &str) -> Result<Self, WireError> {
        match s {
            "evidence" => Ok(WireLeafKind::Evidence),
            "assumption" => Ok(WireLeafKind::Assumption),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!("kind must be \"evidence\" or \"assumption\", got \"{other}\""),
            )),
        }
    }

    /// The library's leaf kind for this wire spelling.
    #[must_use]
    pub fn to_lib(self) -> depcase::assurance::LeafKind {
        match self {
            WireLeafKind::Evidence => depcase::assurance::LeafKind::Evidence,
            WireLeafKind::Assumption => depcase::assurance::LeafKind::Assumption,
        }
    }
}

/// One mutation applied by the `edit` op, named by its `action` field.
#[derive(Debug, Clone, PartialEq)]
pub enum EditAction {
    /// `"set_confidence"` — replace a leaf's elicited confidence.
    SetConfidence {
        /// Name of the evidence or assumption leaf.
        node: String,
        /// The new confidence in `[0, 1]`.
        confidence: f64,
    },
    /// `"add_leaf"` — grow a new leaf under an existing claim.
    AddLeaf {
        /// Name of the goal or strategy gaining the leaf.
        parent: String,
        /// Name for the new leaf (must be unused).
        node: String,
        /// Statement text; defaults to empty when omitted.
        statement: Option<String>,
        /// Evidence (default) or assumption.
        kind: WireLeafKind,
        /// Elicited confidence in `[0, 1]`.
        confidence: f64,
    },
    /// `"retarget"` — replace the support edge `parent → from` with
    /// `parent → to`, preserving the edge's position.
    Retarget {
        /// Name of the supported claim.
        parent: String,
        /// Name of the current supporter.
        from: String,
        /// Name of the replacement supporter.
        to: String,
    },
}

impl EditAction {
    /// Parses the action fields out of a JSON object carrying the same
    /// spellings as the `edit` op (`action`, `node`, `confidence`, …).
    /// Shared by the request parser and the WAL replay path, so a
    /// logged edit round-trips through exactly the wire grammar.
    ///
    /// # Errors
    ///
    /// `bad_request` for unknown actions or missing/mistyped fields.
    pub fn from_fields(obj: &[(String, Value)]) -> Result<EditAction, WireError> {
        match str_field(obj, "action")?.as_str() {
            "set_confidence" => Ok(EditAction::SetConfidence {
                node: str_field(obj, "node")?,
                confidence: f64_field(obj, "confidence")?,
            }),
            "add_leaf" => Ok(EditAction::AddLeaf {
                parent: str_field(obj, "parent")?,
                node: str_field(obj, "node")?,
                statement: opt_str_field(obj, "statement")?,
                kind: match opt_str_field(obj, "kind")? {
                    None => WireLeafKind::Evidence,
                    Some(s) => WireLeafKind::parse(&s)?,
                },
                confidence: f64_field(obj, "confidence")?,
            }),
            "retarget" => Ok(EditAction::Retarget {
                parent: str_field(obj, "parent")?,
                from: str_field(obj, "from")?,
                to: str_field(obj, "to")?,
            }),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!(
                    "action must be \"set_confidence\", \"add_leaf\" or \
                     \"retarget\", got \"{other}\""
                ),
            )),
        }
    }

    /// The action as a standalone JSON object in the wire spelling;
    /// [`EditAction::from_fields`] on the result is the identity.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let s = |v: &str| Value::Str(v.to_string());
        match self {
            EditAction::SetConfidence { node, confidence } => Value::Object(vec![
                ("action".to_string(), s("set_confidence")),
                ("node".to_string(), s(node)),
                ("confidence".to_string(), Value::F64(*confidence)),
            ]),
            EditAction::AddLeaf { parent, node, statement, kind, confidence } => {
                let mut fields = vec![
                    ("action".to_string(), s("add_leaf")),
                    ("parent".to_string(), s(parent)),
                    ("node".to_string(), s(node)),
                ];
                if let Some(statement) = statement {
                    fields.push(("statement".to_string(), s(statement)));
                }
                fields.push((
                    "kind".to_string(),
                    s(match kind {
                        WireLeafKind::Evidence => "evidence",
                        WireLeafKind::Assumption => "assumption",
                    }),
                ));
                fields.push(("confidence".to_string(), Value::F64(*confidence)));
                Value::Object(fields)
            }
            EditAction::Retarget { parent, from, to } => Value::Object(vec![
                ("action".to_string(), s("retarget")),
                ("parent".to_string(), s(parent)),
                ("from".to_string(), s(from)),
                ("to".to_string(), s(to)),
            ]),
        }
    }
}

/// SIL demand mode named on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDemandMode {
    /// `"low_demand"` — bands constrain pfd.
    LowDemand,
    /// `"high_demand"` — bands constrain pfh.
    HighDemand,
}

impl WireDemandMode {
    fn parse(s: &str) -> Result<Self, WireError> {
        match s {
            "low_demand" => Ok(WireDemandMode::LowDemand),
            "high_demand" => Ok(WireDemandMode::HighDemand),
            other => Err(WireError::new(
                ErrorCode::BadRequest,
                format!("mode must be \"low_demand\" or \"high_demand\", got \"{other}\""),
            )),
        }
    }

    /// The library's demand mode for this wire spelling.
    #[must_use]
    pub fn to_lib(self) -> depcase::sil::DemandMode {
        match self {
            WireDemandMode::LowDemand => depcase::sil::DemandMode::LowDemand,
            WireDemandMode::HighDemand => depcase::sil::DemandMode::HighDemand,
        }
    }
}

/// Most sub-requests one `batch` envelope may carry.
pub const MAX_BATCH_ITEMS: usize = 64;

/// The protocol generation a request line speaks, from its `"v"` stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolVersion {
    /// No stamp or `"v": 1`: the legacy line grammar, answered
    /// byte-for-byte as before versioning existed.
    #[default]
    V1,
    /// `"v": 2`: responses echo the stamp and `batch` is available.
    V2,
}

/// One sub-request inside a `batch` envelope. Shape problems are kept
/// *per item* — a bad sibling answers its own error entry instead of
/// poisoning the whole batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// Per-item deadline override, like the envelope's `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// The parsed sub-request, or the shape error to report in its slot.
    pub request: Result<Box<Request>, WireError>,
}

/// Which stored state of a case a time-travel `eval` addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalAt {
    /// `"version": N` — the registry version number.
    Version(u64),
    /// `"at_hash": "…"` — the 16-hex-digit content hash.
    Hash(u64),
}

/// A parsed request, ready for the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register (or replace) a named case from an inline JSON document.
    Load {
        /// Registry name for the case.
        name: String,
        /// The case document, still raw; the engine deserializes it.
        case: Value,
    },
    /// Analytic confidence propagation over a named case — the current
    /// version, or any recorded version via `version`/`at_hash`.
    Eval {
        /// Registry name of the case.
        name: String,
        /// Historical version to assess instead of the current one.
        at: Option<EvalAt>,
    },
    /// Incremental mutation of a loaded case, bumping its version.
    Edit {
        /// Registry name of the case.
        name: String,
        /// The mutation to apply.
        action: EditAction,
    },
    /// Version history (versions, content hashes, timestamps) of a
    /// named case, oldest first.
    History {
        /// Registry name of the case.
        name: String,
    },
    /// Evidence ranked by Birnbaum importance and gain-if-certain.
    Rank {
        /// Registry name of the case.
        name: String,
    },
    /// Monte-Carlo cross-check with the deterministic parallel engine.
    Mc {
        /// Registry name of the case.
        name: String,
        /// Sample count (default [`DEFAULT_MC_SAMPLES`]).
        samples: u32,
        /// RNG seed (default 0); fixes every estimate bit-for-bit.
        seed: u64,
        /// Worker threads, 0 = auto (default 0).
        threads: usize,
    },
    /// SIL band membership for the root claim confidence.
    Bands {
        /// Registry name of the case.
        name: String,
        /// The claimed failure-measure bound (pfd or pfh).
        pfd_bound: f64,
        /// Which IEC 61508 band table applies.
        mode: WireDemandMode,
    },
    /// Observability snapshot: per-op latency, cache counters.
    Stats,
    /// The most recent traced requests as span trees, plus the per-op
    /// latency decomposition accumulated since startup.
    Trace {
        /// Most traces to return (clamped to the ring capacity).
        limit: usize,
    },
    /// The unified metrics registry — every counter, gauge, and
    /// histogram the service tracks.
    Metrics {
        /// `true` renders Prometheus text exposition instead of JSON.
        prometheus: bool,
    },
    /// Re-hash every stored snapshot object against its content
    /// address, quarantining and repairing corrupt ones; the response
    /// reports what was checked, repaired, and quarantined (durable
    /// engines only).
    Scrub,
    /// Stop the service; the response carries the final stats snapshot.
    Shutdown,
    /// Up to [`MAX_BATCH_ITEMS`] sub-requests under one id, answered
    /// with per-item results/errors in item order (v2 only).
    Batch {
        /// The sub-requests, in wire order.
        items: Vec<BatchItem>,
    },
}

/// The client-supplied `id`, echoed back verbatim (any JSON scalar).
pub type RequestId = Option<Value>;

/// A fully parsed request line: the echoed id, the per-request time
/// budget, and the operation itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen id, echoed in the response.
    pub id: RequestId,
    /// The protocol generation the line spoke; responses must answer in
    /// the same generation.
    pub version: ProtocolVersion,
    /// Per-request deadline in milliseconds, when the client set one;
    /// overrides the server's configured default.
    pub deadline_ms: Option<u64>,
    /// The operation to execute.
    pub request: Request,
}

fn str_field(obj: &[(String, Value)], name: &str) -> Result<String, WireError> {
    match serde::field(obj, name) {
        Ok(Value::Str(s)) => Ok(s.clone()),
        Ok(_) => {
            Err(WireError::new(ErrorCode::BadRequest, format!("field `{name}` must be a string")))
        }
        Err(e) => Err(WireError::new(ErrorCode::BadRequest, e)),
    }
}

fn f64_field(obj: &[(String, Value)], name: &str) -> Result<f64, WireError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => v.as_f64().ok_or_else(|| {
            WireError::new(ErrorCode::BadRequest, format!("field `{name}` must be a number"))
        }),
        None => Err(WireError::new(ErrorCode::BadRequest, format!("missing field `{name}`"))),
    }
}

fn opt_str_field(obj: &[(String, Value)], name: &str) -> Result<Option<String>, WireError> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(None),
        Some((_, Value::Str(s))) => Ok(Some(s.clone())),
        Some(_) => {
            Err(WireError::new(ErrorCode::BadRequest, format!("field `{name}` must be a string")))
        }
    }
}

fn opt_u64(obj: &[(String, Value)], name: &str, default: u64) -> Result<u64, WireError> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, v)) => v.as_u64().ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("field `{name}` must be a non-negative integer"),
            )
        }),
    }
}

/// First duplicated key anywhere in `value`, searched depth-first.
///
/// JSON with duplicate keys is ambiguous — parsers disagree on which
/// copy wins — so the protocol rejects it outright rather than letting
/// a smuggled second `op` or `id` silently shadow the first.
fn find_duplicate_key(value: &Value) -> Option<&str> {
    match value {
        Value::Object(entries) => {
            let mut seen = std::collections::HashSet::with_capacity(entries.len());
            for (key, child) in entries {
                if !seen.insert(key.as_str()) {
                    return Some(key);
                }
                if let Some(dup) = find_duplicate_key(child) {
                    return Some(dup);
                }
            }
            None
        }
        Value::Array(items) => items.iter().find_map(find_duplicate_key),
        _ => None,
    }
}

/// Best-effort recovery of the `id` from a request line, for error
/// paths that must echo it without a full (or successful) parse.
#[must_use]
pub fn recover_id(line: &str) -> RequestId {
    serde_json::from_str_prefix::<Json>(line)
        .ok()
        .and_then(|(Json(value), _)| value.get("id").cloned())
}

/// Parses one request line into its envelope (id, deadline, operation).
///
/// # Errors
///
/// [`WireError`] with code `bad_json`, `bad_request`, or `unknown_op`,
/// paired with whatever `id` could be recovered from the line so the
/// error response still echoes it ([`None`] when the line was not even
/// a JSON object).
pub fn parse_request(line: &str) -> Result<Envelope, (RequestId, WireError)> {
    let (Json(value), consumed) = serde_json::from_str_prefix::<Json>(line)
        .map_err(|e| (None, WireError::new(ErrorCode::BadJson, e)))?;
    let id = value.get("id").cloned();
    if !line[consumed..].trim().is_empty() {
        return Err((
            id,
            WireError::new(
                ErrorCode::BadRequest,
                "trailing garbage after the request object on this line",
            ),
        ));
    }
    let Some(obj) = value.as_object() else {
        return Err((id, WireError::new(ErrorCode::BadRequest, "request must be a JSON object")));
    };
    if let Some(key) = find_duplicate_key(&value) {
        return Err((
            id,
            WireError::new(ErrorCode::BadRequest, format!("duplicate key `{key}` in request")),
        ));
    }
    let parsed = parse_version(obj).and_then(|version| {
        let request = parse_op(&value, obj, version)?;
        let deadline_ms = match obj.iter().find(|(k, _)| k == "deadline_ms") {
            None => None,
            Some((_, v)) => Some(v.as_u64().ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    "field `deadline_ms` must be a non-negative integer",
                )
            })?),
        };
        Ok(Envelope { id: id.clone(), version, deadline_ms, request })
    });
    parsed.map_err(|err| (id, err))
}

/// Reads the `"v"` protocol stamp: absent/1 → v1, 2 → v2, anything
/// else → `unsupported_version`.
fn parse_version(obj: &[(String, Value)]) -> Result<ProtocolVersion, WireError> {
    match obj.iter().find(|(k, _)| k == "v") {
        None => Ok(ProtocolVersion::V1),
        Some((_, v)) => match v.as_u64() {
            Some(1) => Ok(ProtocolVersion::V1),
            Some(2) => Ok(ProtocolVersion::V2),
            _ => Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                "this server speaks protocol versions 1 and 2 only",
            )),
        },
    }
}

fn parse_op(
    value: &Value,
    obj: &[(String, Value)],
    version: ProtocolVersion,
) -> Result<Request, WireError> {
    let op = str_field(obj, "op")?;
    let request = match op.as_str() {
        // `batch` exists only in v2 — v1 keeps its exact op surface, so
        // the spelling stays `unknown_op` there.
        "batch" if version == ProtocolVersion::V2 => parse_batch(obj)?,
        "load" => {
            let case = serde::field(obj, "case")
                .map_err(|e| WireError::new(ErrorCode::BadRequest, e))?
                .clone();
            Request::Load { name: str_field(obj, "name")?, case }
        }
        "eval" => {
            let version = obj.iter().find(|(k, _)| k == "version");
            let at_hash = obj.iter().find(|(k, _)| k == "at_hash");
            let at = match (version, at_hash) {
                (Some(_), Some(_)) => {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        "give `version` or `at_hash`, not both",
                    ))
                }
                (Some((_, v)), None) => Some(EvalAt::Version(v.as_u64().ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        "field `version` must be a non-negative integer",
                    )
                })?)),
                (None, Some((_, v))) => {
                    let text = v.as_str().ok_or_else(|| {
                        WireError::new(ErrorCode::BadRequest, "field `at_hash` must be a string")
                    })?;
                    Some(EvalAt::Hash(parse_hash(text).ok_or_else(|| {
                        WireError::new(
                            ErrorCode::BadRequest,
                            "field `at_hash` must be a 16-hex-digit content hash",
                        )
                    })?))
                }
                (None, None) => None,
            };
            Request::Eval { name: str_field(obj, "name")?, at }
        }
        "edit" => {
            Request::Edit { name: str_field(obj, "name")?, action: EditAction::from_fields(obj)? }
        }
        "history" => Request::History { name: str_field(obj, "name")? },
        "rank" => Request::Rank { name: str_field(obj, "name")? },
        "mc" => Request::Mc {
            name: str_field(obj, "name")?,
            samples: u32::try_from(opt_u64(obj, "samples", u64::from(DEFAULT_MC_SAMPLES))?)
                .map_err(|_| WireError::new(ErrorCode::BadRequest, "field `samples` too large"))?,
            seed: opt_u64(obj, "seed", 0)?,
            threads: usize::try_from(opt_u64(obj, "threads", 0)?)
                .map_err(|_| WireError::new(ErrorCode::BadRequest, "field `threads` too large"))?,
        },
        "bands" => {
            let pfd_bound = match obj.iter().find(|(k, _)| k == "pfd_bound") {
                Some((_, v)) => v.as_f64().ok_or_else(|| {
                    WireError::new(ErrorCode::BadRequest, "field `pfd_bound` must be a number")
                })?,
                None => {
                    return Err(WireError::new(ErrorCode::BadRequest, "missing field `pfd_bound`"))
                }
            };
            let mode = match value.get("mode") {
                None => WireDemandMode::LowDemand,
                Some(Value::Str(s)) => WireDemandMode::parse(s)?,
                Some(_) => {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        "field `mode` must be a string",
                    ))
                }
            };
            Request::Bands { name: str_field(obj, "name")?, pfd_bound, mode }
        }
        "stats" => Request::Stats,
        "trace" => Request::Trace {
            limit: usize::try_from(opt_u64(
                obj,
                "limit",
                crate::telemetry::DEFAULT_TRACE_LIMIT as u64,
            )?)
            .map_err(|_| WireError::new(ErrorCode::BadRequest, "field `limit` too large"))?,
        },
        "metrics" => Request::Metrics {
            prometheus: match opt_str_field(obj, "format")?.as_deref() {
                None | Some("json") => false,
                Some("prometheus") => true,
                Some(other) => {
                    return Err(WireError::new(
                        ErrorCode::BadRequest,
                        format!("unknown metrics format `{other}` (json|prometheus)"),
                    ))
                }
            },
        },
        "scrub" => Request::Scrub,
        "shutdown" => Request::Shutdown,
        other => return Err(WireError::new(ErrorCode::UnknownOp, format!("unknown op `{other}`"))),
    };
    Ok(request)
}

/// Parses the `items` of a v2 `batch` request. The batch shape itself
/// (array present, non-empty, within [`MAX_BATCH_ITEMS`]) must be
/// right; each item then parses independently, with its failures stored
/// in its own slot.
fn parse_batch(obj: &[(String, Value)]) -> Result<Request, WireError> {
    let items = match serde::field(obj, "items") {
        Ok(Value::Array(items)) => items,
        Ok(_) => {
            return Err(WireError::new(ErrorCode::BadRequest, "field `items` must be an array"))
        }
        Err(e) => return Err(WireError::new(ErrorCode::BadRequest, e)),
    };
    if items.is_empty() {
        return Err(WireError::new(ErrorCode::BadRequest, "a batch needs at least one item"));
    }
    if items.len() > MAX_BATCH_ITEMS {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            format!("a batch carries at most {MAX_BATCH_ITEMS} items, got {}", items.len()),
        ));
    }
    let items = items.iter().map(parse_batch_item).collect();
    Ok(Request::Batch { items })
}

fn parse_batch_item(item: &Value) -> BatchItem {
    let failed = |err: WireError| BatchItem { deadline_ms: None, request: Err(err) };
    let Some(obj) = item.as_object() else {
        return failed(WireError::new(ErrorCode::BadRequest, "batch items must be JSON objects"));
    };
    if obj.iter().any(|(k, _)| k == "id") {
        // The batch id covers every item; per-item ids would make the
        // response's positional matching ambiguous.
        return failed(WireError::new(ErrorCode::BadRequest, "batch items must not carry ids"));
    }
    let deadline_ms = match obj.iter().find(|(k, _)| k == "deadline_ms") {
        None => None,
        Some((_, v)) => match v.as_u64() {
            Some(ms) => Some(ms),
            None => {
                return failed(WireError::new(
                    ErrorCode::BadRequest,
                    "field `deadline_ms` must be a non-negative integer",
                ))
            }
        },
    };
    let request = match str_field(obj, "op").as_deref() {
        Ok("batch") => Err(WireError::new(ErrorCode::BadRequest, "batches do not nest")),
        _ => parse_op(item, obj, ProtocolVersion::V2).map(Box::new),
    };
    BatchItem { deadline_ms, request }
}

impl Request {
    /// The operation name, as spelled on the wire (for stats bucketing).
    #[must_use]
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Eval { .. } => "eval",
            Request::Edit { .. } => "edit",
            Request::History { .. } => "history",
            Request::Rank { .. } => "rank",
            Request::Mc { .. } => "mc",
            Request::Bands { .. } => "bands",
            Request::Stats => "stats",
            Request::Trace { .. } => "trace",
            Request::Metrics { .. } => "metrics",
            Request::Scrub => "scrub",
            Request::Shutdown => "shutdown",
            Request::Batch { .. } => "batch",
        }
    }
}

/// A typed response, ready to render in either protocol generation.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `"ok": true` with a result document.
    Ok(Value),
    /// `"ok": false` with a wire error.
    Err(WireError),
}

impl Response {
    /// Renders the response as one wire line (no trailing newline):
    /// `{"id":…,"ok":…}` for v1 — byte-identical to the pre-versioning
    /// grammar — and `{"id":…,"v":2,"ok":…}` for v2.
    #[must_use]
    pub fn render(&self, version: ProtocolVersion, id: &RequestId) -> String {
        let mut fields = Vec::with_capacity(4);
        if let Some(id) = id {
            fields.push(("id".to_string(), id.clone()));
        }
        if version == ProtocolVersion::V2 {
            fields.push(("v".to_string(), Value::U64(2)));
        }
        match self {
            Response::Ok(result) => {
                fields.push(("ok".to_string(), Value::Bool(true)));
                fields.push(("result".to_string(), result.clone()));
            }
            Response::Err(err) => {
                fields.push(("ok".to_string(), Value::Bool(false)));
                fields.push(("error".to_string(), error_value(err)));
            }
        }
        serde_json::to_string(&Json(Value::Object(fields)))
            .expect("response serialization is infallible")
    }

    /// The response as a bare `{"ok":…}` object — the per-item shape
    /// inside a `batch` result's `items` array.
    #[must_use]
    pub fn to_item_value(&self) -> Value {
        match self {
            Response::Ok(result) => Value::Object(vec![
                ("ok".to_string(), Value::Bool(true)),
                ("result".to_string(), result.clone()),
            ]),
            Response::Err(err) => Value::Object(vec![
                ("ok".to_string(), Value::Bool(false)),
                ("error".to_string(), error_value(err)),
            ]),
        }
    }
}

impl From<Result<Value, WireError>> for Response {
    fn from(outcome: Result<Value, WireError>) -> Self {
        match outcome {
            Ok(result) => Response::Ok(result),
            Err(err) => Response::Err(err),
        }
    }
}

/// The `{"code":…,"message":…[,"retry_after_ms":…]}` error object.
fn error_value(err: &WireError) -> Value {
    let mut error_fields = vec![
        ("code".to_string(), Value::Str(err.code.as_str().to_string())),
        ("message".to_string(), Value::Str(err.message.clone())),
    ];
    if let Some(ms) = err.retry_after_ms {
        error_fields.push(("retry_after_ms".to_string(), Value::U64(ms)));
    }
    Value::Object(error_fields)
}

/// Renders a success response line in the v1 grammar (no trailing
/// newline). Version-aware callers use [`Response::render`].
#[must_use]
pub fn ok_line(id: &RequestId, result: Value) -> String {
    Response::Ok(result).render(ProtocolVersion::V1, id)
}

/// Renders a failure response line in the v1 grammar (no trailing
/// newline). Version-aware callers use [`Response::render`].
#[must_use]
pub fn err_line(id: &RequestId, err: &WireError) -> String {
    Response::Err(err.clone()).render(ProtocolVersion::V1, id)
}

/// Formats a case content hash the way every response spells it.
#[must_use]
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a content hash in its wire spelling ([`format_hash`]): exactly
/// 16 lowercase hex digits.
#[must_use]
pub fn parse_hash(text: &str) -> Option<u64> {
    if text.len() != 16 || !text.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_defaults() {
        let env = parse_request(r#"{"id":7,"op":"mc","name":"c"}"#).unwrap();
        assert_eq!(env.id, Some(Value::I64(7)));
        assert_eq!(env.deadline_ms, None);
        assert_eq!(
            env.request,
            Request::Mc { name: "c".into(), samples: DEFAULT_MC_SAMPLES, seed: 0, threads: 0 }
        );

        let env = parse_request(r#"{"op":"bands","name":"c","pfd_bound":1e-3}"#).unwrap();
        assert_eq!(env.id, None);
        assert_eq!(
            env.request,
            Request::Bands { name: "c".into(), pfd_bound: 1e-3, mode: WireDemandMode::LowDemand }
        );
    }

    #[test]
    fn edit_requests_parse_each_action() {
        let env = parse_request(
            r#"{"op":"edit","name":"c","action":"set_confidence","node":"E1","confidence":0.97}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::Edit {
                name: "c".into(),
                action: EditAction::SetConfidence { node: "E1".into(), confidence: 0.97 },
            }
        );

        let env = parse_request(
            r#"{"op":"edit","name":"c","action":"add_leaf","parent":"G","node":"E9","kind":"assumption","confidence":0.8}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::Edit {
                name: "c".into(),
                action: EditAction::AddLeaf {
                    parent: "G".into(),
                    node: "E9".into(),
                    statement: None,
                    kind: WireLeafKind::Assumption,
                    confidence: 0.8,
                },
            }
        );

        let env = parse_request(
            r#"{"op":"edit","name":"c","action":"retarget","parent":"G","from":"E1","to":"E2"}"#,
        )
        .unwrap();
        assert_eq!(
            env.request,
            Request::Edit {
                name: "c".into(),
                action: EditAction::Retarget {
                    parent: "G".into(),
                    from: "E1".into(),
                    to: "E2".into(),
                },
            }
        );
    }

    #[test]
    fn eval_parses_time_travel_addressing() {
        let env = parse_request(r#"{"op":"eval","name":"c"}"#).unwrap();
        assert_eq!(env.request, Request::Eval { name: "c".into(), at: None });

        let env = parse_request(r#"{"op":"eval","name":"c","version":3}"#).unwrap();
        assert_eq!(env.request, Request::Eval { name: "c".into(), at: Some(EvalAt::Version(3)) });

        let env =
            parse_request(r#"{"op":"eval","name":"c","at_hash":"00ff00ff00ff00ff"}"#).unwrap();
        assert_eq!(
            env.request,
            Request::Eval { name: "c".into(), at: Some(EvalAt::Hash(0x00ff_00ff_00ff_00ff)) }
        );

        // Both addresses at once, malformed hashes, mistyped versions.
        for line in [
            r#"{"op":"eval","name":"c","version":1,"at_hash":"00ff00ff00ff00ff"}"#,
            r#"{"op":"eval","name":"c","at_hash":"zz"}"#,
            r#"{"op":"eval","name":"c","at_hash":"00FF00FF00FF00FF"}"#,
            r#"{"op":"eval","name":"c","version":-1}"#,
        ] {
            let (_, err) = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn history_parses_and_needs_a_name() {
        let env = parse_request(r#"{"id":1,"op":"history","name":"c"}"#).unwrap();
        assert_eq!(env.request, Request::History { name: "c".into() });
        let (_, err) = parse_request(r#"{"op":"history"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn edit_actions_round_trip_through_their_wire_value() {
        let actions = [
            EditAction::SetConfidence { node: "E1".into(), confidence: 0.97 },
            EditAction::AddLeaf {
                parent: "G".into(),
                node: "E9".into(),
                statement: Some("field data".into()),
                kind: WireLeafKind::Assumption,
                confidence: 0.8,
            },
            EditAction::AddLeaf {
                parent: "G".into(),
                node: "E9".into(),
                statement: None,
                kind: WireLeafKind::Evidence,
                confidence: 0.8,
            },
            EditAction::Retarget { parent: "G".into(), from: "E1".into(), to: "E2".into() },
        ];
        for action in actions {
            let value = action.to_value();
            let obj = value.as_object().unwrap();
            assert_eq!(EditAction::from_fields(obj).unwrap(), action);
        }
    }

    #[test]
    fn hashes_round_trip_and_reject_sloppy_spellings() {
        for hash in [0u64, 1, 0xdead_beef_dead_beef, u64::MAX] {
            assert_eq!(parse_hash(&format_hash(hash)), Some(hash));
        }
        for bad in ["", "abc", "00FF00FF00FF00FF", "0123456789abcdef0", "xyzw456789abcdef"] {
            assert_eq!(parse_hash(bad), None, "{bad}");
        }
    }

    #[test]
    fn malformed_edits_are_bad_request() {
        // Unknown action, missing confidence, bad leaf kind.
        for line in [
            r#"{"op":"edit","name":"c","action":"rename","node":"E1"}"#,
            r#"{"op":"edit","name":"c","action":"set_confidence","node":"E1"}"#,
            r#"{"op":"edit","name":"c","action":"add_leaf","parent":"G","node":"E9","kind":"goal","confidence":0.8}"#,
        ] {
            let (_, err) = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn deadline_ms_is_parsed_on_any_request() {
        let env = parse_request(r#"{"id":1,"op":"eval","name":"c","deadline_ms":250}"#).unwrap();
        assert_eq!(env.deadline_ms, Some(250));
        let (id, err) =
            parse_request(r#"{"id":1,"op":"eval","name":"c","deadline_ms":"soon"}"#).unwrap_err();
        assert_eq!((id, err.code), (Some(Value::I64(1)), ErrorCode::BadRequest));
    }

    #[test]
    fn trailing_garbage_is_bad_request_and_echoes_the_id() {
        // One full object then junk: the object parsed, so the id is
        // recoverable and the error pins the stable `bad_request` code.
        let (id, err) = parse_request(r#"{"id":9,"op":"stats"} extra"#).unwrap_err();
        assert_eq!(id, Some(Value::I64(9)));
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("trailing garbage"), "{}", err.message);

        // A second object on the same line is trailing garbage too.
        let (id, err) = parse_request(r#"{"id":9,"op":"stats"}{"op":"shutdown"}"#).unwrap_err();
        assert_eq!((id, err.code), (Some(Value::I64(9)), ErrorCode::BadRequest));

        // Pure trailing whitespace is fine.
        let env = parse_request("{\"id\":9,\"op\":\"stats\"}  \t").unwrap();
        assert_eq!(env.request, Request::Stats);
    }

    #[test]
    fn duplicate_keys_are_bad_request_and_echo_the_id() {
        let (id, err) = parse_request(r#"{"id":4,"op":"stats","op":"shutdown"}"#).unwrap_err();
        assert_eq!(id, Some(Value::I64(4)));
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("duplicate key `op`"), "{}", err.message);

        // Nested duplicates (e.g. inside a `load` case document) are
        // caught too — ambiguity anywhere poisons the whole request.
        let (_, err) =
            parse_request(r#"{"id":4,"op":"load","name":"c","case":{"a":1,"a":2}}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("duplicate key `a`"), "{}", err.message);
    }

    #[test]
    fn recover_id_survives_malformed_tails() {
        assert_eq!(recover_id(r#"{"id":3,"op":"stats"} junk"#), Some(Value::I64(3)));
        assert_eq!(recover_id("not json"), None);
        assert_eq!(recover_id(r#"{"op":"stats"}"#), None);
    }

    #[test]
    fn bad_lines_carry_stable_codes() {
        let (id, err) = parse_request("not json").unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadJson));
        let (id, err) = parse_request("[1,2]").unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
        let (id, err) = parse_request(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::UnknownOp));
        let (id, err) = parse_request(r#"{"op":"eval"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
        let (id, err) = parse_request(r#"{"op":"bands","name":"c"}"#).unwrap_err();
        assert_eq!((id, err.code), (None, ErrorCode::BadRequest));
    }

    #[test]
    fn errors_after_the_id_parsed_still_echo_it() {
        // The docs promise the id comes back even on failure, so
        // pipelined clients can match error responses to requests.
        let (id, err) = parse_request(r#"{"id":3,"op":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(Value::I64(3)));
        assert_eq!(err.code, ErrorCode::UnknownOp);
        let line = err_line(&id, &err);
        assert!(line.starts_with(r#"{"id":3,"ok":false"#), "{line}");
    }

    #[test]
    fn retry_after_hint_is_serialized_when_present() {
        let err = WireError::new(ErrorCode::Overloaded, "queue full").with_retry_after(25);
        let line = err_line(&None, &err);
        assert!(line.contains(r#""retry_after_ms":25"#), "{line}");
        // And stays out when absent.
        let err = WireError::new(ErrorCode::Overloaded, "queue full");
        assert!(!err_line(&None, &err).contains("retry_after_ms"));
    }

    #[test]
    fn every_wire_code_round_trips_through_its_spelling() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
        // Service-layer facade errors keep their wire code.
        let e = depcase::Error::service("overloaded", "try later");
        assert_eq!(WireError::from(e).code, ErrorCode::Overloaded);
    }

    #[test]
    fn library_errors_map_to_their_layer_code() {
        let case_err: depcase::Error =
            depcase::assurance::CaseError::DuplicateName("G".into()).into();
        assert_eq!(WireError::from(case_err).code, ErrorCode::Case);
        let num_err: depcase::Error = depcase::numerics::NumericsError::Domain("x".into()).into();
        assert_eq!(WireError::from(num_err).code, ErrorCode::Numerics);
    }

    #[test]
    fn version_stamp_selects_the_generation() {
        let env = parse_request(r#"{"op":"stats"}"#).unwrap();
        assert_eq!(env.version, ProtocolVersion::V1);
        let env = parse_request(r#"{"v":1,"op":"stats"}"#).unwrap();
        assert_eq!(env.version, ProtocolVersion::V1);
        let env = parse_request(r#"{"v":2,"op":"stats"}"#).unwrap();
        assert_eq!(env.version, ProtocolVersion::V2);

        for line in [
            r#"{"id":8,"v":3,"op":"stats"}"#,
            r#"{"id":8,"v":0,"op":"stats"}"#,
            r#"{"id":8,"v":"2","op":"stats"}"#,
            r#"{"id":8,"v":-1,"op":"stats"}"#,
        ] {
            let (id, err) = parse_request(line).unwrap_err();
            assert_eq!(id, Some(Value::I64(8)), "{line}");
            assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{line}");
        }
    }

    #[test]
    fn batch_is_v2_only_and_parses_items_independently() {
        // In v1 the op does not exist at all.
        let (_, err) = parse_request(r#"{"op":"batch","items":[]}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownOp);

        let env = parse_request(
            r#"{"id":1,"v":2,"op":"batch","items":[{"op":"stats"},{"op":"nope"},{"op":"eval","name":"c","deadline_ms":40}]}"#,
        )
        .unwrap();
        let Request::Batch { items } = env.request else { panic!("not a batch") };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].request.as_deref(), Ok(&Request::Stats));
        assert_eq!(items[1].request.as_ref().unwrap_err().code, ErrorCode::UnknownOp);
        assert_eq!(items[2].deadline_ms, Some(40));
        assert_eq!(items[2].request.as_deref(), Ok(&Request::Eval { name: "c".into(), at: None }));
    }

    #[test]
    fn batch_shape_errors_reject_the_whole_request() {
        for line in [
            r#"{"v":2,"op":"batch"}"#,
            r#"{"v":2,"op":"batch","items":{}}"#,
            r#"{"v":2,"op":"batch","items":[]}"#,
        ] {
            let (_, err) = parse_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
        let too_many = format!(
            r#"{{"v":2,"op":"batch","items":[{}]}}"#,
            vec![r#"{"op":"stats"}"#; MAX_BATCH_ITEMS + 1].join(",")
        );
        let (_, err) = parse_request(&too_many).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("at most"), "{}", err.message);
    }

    #[test]
    fn batch_items_must_be_plain_idless_requests() {
        let env = parse_request(
            r#"{"v":2,"op":"batch","items":[7,{"id":1,"op":"stats"},{"op":"batch","items":[{"op":"stats"}]}]}"#,
        )
        .unwrap();
        let Request::Batch { items } = env.request else { panic!("not a batch") };
        let messages: Vec<&str> =
            items.iter().map(|i| i.request.as_ref().unwrap_err().message.as_str()).collect();
        assert!(messages[0].contains("JSON objects"), "{}", messages[0]);
        assert!(messages[1].contains("must not carry ids"), "{}", messages[1]);
        assert!(messages[2].contains("do not nest"), "{}", messages[2]);
    }

    #[test]
    fn v2_responses_carry_the_stamp_and_v1_stays_byte_identical() {
        let id = Some(Value::I64(7));
        let result = Value::Object(vec![("n".into(), Value::U64(1))]);
        assert_eq!(
            Response::Ok(result.clone()).render(ProtocolVersion::V1, &id),
            r#"{"id":7,"ok":true,"result":{"n":1}}"#
        );
        assert_eq!(
            Response::Ok(result).render(ProtocolVersion::V2, &id),
            r#"{"id":7,"v":2,"ok":true,"result":{"n":1}}"#
        );
        let err = WireError::new(ErrorCode::Overloaded, "shed").with_retry_after(25);
        assert_eq!(
            Response::Err(err).render(ProtocolVersion::V2, &None),
            r#"{"v":2,"ok":false,"error":{"code":"overloaded","message":"shed","retry_after_ms":25}}"#
        );
    }

    #[test]
    fn batch_item_values_mirror_response_bodies() {
        let ok = Response::Ok(Value::U64(3)).to_item_value();
        assert_eq!(serde_json::to_string(&Json(ok)).unwrap(), r#"{"ok":true,"result":3}"#);
        let err = Response::Err(WireError::new(ErrorCode::UnknownCase, "nope")).to_item_value();
        assert_eq!(
            serde_json::to_string(&Json(err)).unwrap(),
            r#"{"ok":false,"error":{"code":"unknown_case","message":"nope"}}"#
        );
    }

    #[test]
    fn response_lines_echo_the_id() {
        let id = Some(Value::Str("req-1".into()));
        let line = ok_line(&id, Value::Object(vec![("n".into(), Value::U64(1))]));
        assert_eq!(line, r#"{"id":"req-1","ok":true,"result":{"n":1}}"#);
        let line = err_line(&None, &WireError::new(ErrorCode::UnknownCase, "no such case"));
        assert_eq!(
            line,
            r#"{"ok":false,"error":{"code":"unknown_case","message":"no such case"}}"#
        );
    }
}
