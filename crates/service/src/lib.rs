//! Long-running assessment service for `depcase` dependability cases.
//!
//! A risk-assessment workflow rarely evaluates a case once: the same
//! argument graph is propagated, ranked, Monte-Carlo cross-checked, and
//! banded over and over as evidence firms up. This crate turns the
//! library into a resident engine so those repeat evaluations amortise
//! the per-case compilation work:
//!
//! - **Registry** — cases are loaded under client-chosen names and
//!   versioned on every reload ([`Engine`]).
//! - **Plan cache** — compiled [`EvalPlan`](depcase::assurance::EvalPlan)s,
//!   analytic reports, and live
//!   [`Incremental`](depcase::assurance::Incremental) sessions are kept
//!   in an LRU keyed by
//!   [`Case::content_hash`](depcase::assurance::Case::content_hash), so
//!   an unchanged case never recompiles ([`PlanCache`]).
//! - **Incremental edits** — the `edit` op mutates a loaded case (set a
//!   leaf confidence, add a leaf, retarget a support edge) and bumps its
//!   version, recomputing only the edited node's ancestor spine via the
//!   cached session's subtree-hash memo; `stats` reports the
//!   `nodes_recomputed` / `nodes_reused` tally ([`IncrementalCounters`]).
//! - **Durability** — with `--data-dir`, every acked `load`/`edit` is
//!   written ahead to a checksummed WAL before the response is
//!   released, periodic content-addressed snapshots bound replay time,
//!   and a restart (or `kill -9`) recovers exactly the acked state —
//!   including the full version history behind time-travel `eval`
//!   ([`wal`], [`snapshot`], [`Engine::open`]).
//! - **Wire protocol** — newline-delimited JSON over a localhost TCP
//!   listener or stdin/stdout, with stable machine-readable error codes
//!   ([`protocol`]).
//! - **Worker pool** — requests are claimed dynamically by a pool of
//!   workers, the same discipline as the parallel Monte-Carlo engine's
//!   chunk claiming ([`Server`]).
//! - **Observability** — per-operation latency histograms and cache
//!   hit/miss counters, dumped by the `stats` op and on shutdown
//!   ([`ServiceStats`]).
//!
//! Start it from the command line with `case_tool serve`, or embed it:
//!
//! ```
//! use depcase_service::{Client, Engine, Server};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(16));
//! let server = Server::bind(engine, ("127.0.0.1", 0), 2)?;
//! let mut client = Client::connect(server.local_addr())?;
//!
//! let response = client.round_trip(r#"{"id":1,"op":"stats"}"#).unwrap();
//! assert!(response.contains(r#""ok":true"#));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Determinism note: the engine adds caching and transport around the
//! library, never arithmetic. Every confidence, estimate, and band
//! probability in a response is bit-identical to the value the same
//! library call returns in-process — the integration tests hold the
//! service to that with `f64::to_bits` comparisons.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod engine;
pub(crate) mod epoll;
pub mod faults;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod storage_io;
pub mod telemetry;
pub mod trace;
pub mod wal;

pub use cache::{CacheCounters, CompiledCase, PlanCache};
pub use client::{code_is_retryable, Client, RetryPolicy, RetryingClient};
pub use engine::{DurabilityConfig, Engine, EngineConfig, DEFAULT_MEMO_ENTRIES, DEFAULT_SHARDS};
pub use faults::{FaultPlan, InjectedCounts};
pub use protocol::{EditAction, Envelope, ErrorCode, EvalAt, Request, WireError, WireLeafKind};
pub use server::{serve_stdio, serve_stdio_with, IoModel, Server, ServerConfig};
pub use stats::{
    CompileCounters, DurabilityCounters, Histogram, IncrementalCounters, RobustnessCounters,
    RobustnessEvent, ServiceStats, StorageHealthCounters,
};
pub use storage_io::{
    AppendFile, CrashImage, FaultyIo, RealIo, SimIo, StorageFaultPlan, StorageInjectedCounts,
    StorageIo, TailVariant,
};
pub use telemetry::{MetricsRegistry, Telemetry, TlsTracer};
pub use trace::{SpanRecord, Trace, TraceBuilder, TraceRing};
pub use wal::FsyncPolicy;

/// Locks a mutex, recovering the guard from a poisoned lock.
///
/// A panicking request handler is isolated with `catch_unwind`, so a
/// worker can die while holding (or after poisoning) a shared lock.
/// Every shared structure in this crate holds only counters, caches,
/// and registry entries whose invariants are re-established before any
/// lock is released, so the data behind a poisoned mutex is still
/// consistent — recovering it is what keeps one panic from turning
/// into a service-wide outage.
pub(crate) fn lock_unpoisoned<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
