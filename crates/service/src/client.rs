//! Service clients: the plain one-line-in, one-line-out [`Client`] and
//! a [`RetryingClient`] that rides out transient faults.
//!
//! Transport failures surface as typed [`depcase::Error::Service`]
//! values with stable codes — `io` for socket errors, and
//! `connection_closed` when the server hangs up mid-exchange — so
//! callers can branch on the failure class instead of string-matching
//! an `io::Error`.
//!
//! [`RetryingClient`] implements the client half of the fault model
//! (DESIGN §11): reconnect on transport errors, resend on the
//! retryable wire codes (`overloaded`, `internal_error`,
//! `deadline_exceeded`, `read_only` — the full classification lives in
//! [`code_is_retryable`]), honor the server's `retry_after_ms` hint when
//! present, and otherwise back off with exponential, decorrelated
//! jitter so a thundering herd of retries does not re-create the
//! overload it is retrying around. The jitter is seeded — the same
//! seed replays the same backoff schedule, matching the determinism
//! discipline of the rest of the crate.

use crate::protocol::{ErrorCode, Json, MAX_BATCH_ITEMS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Blocking NDJSON client for the assessment service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer: BufWriter::new(write_half) })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// [`depcase::Error::Service`] with code `io` when the transport
    /// fails, or `connection_closed` when the server closes the
    /// connection before answering.
    pub fn round_trip(&mut self, line: &str) -> depcase::Result<String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| depcase::Error::service("io", format!("send failed: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| depcase::Error::service("io", format!("receive failed: {e}")))?;
        if n == 0 {
            return Err(depcase::Error::service(
                "connection_closed",
                "server closed the connection before answering",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// [`Client::round_trip`], then parses the response: `Ok(result)`
    /// for a success line, or the wire error mapped back to a typed
    /// [`depcase::Error::Service`] carrying its stable code.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; `bad_response`
    /// when the line is not a well-formed response; otherwise the wire
    /// error's own code and message.
    pub fn round_trip_value(&mut self, line: &str) -> depcase::Result<Value> {
        let response = self.round_trip(line)?;
        let Json(value) = serde_json::from_str::<Json>(&response).map_err(|e| {
            depcase::Error::service("bad_response", format!("unparseable response line: {e}"))
        })?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => value.get("result").cloned().ok_or_else(|| {
                depcase::Error::service("bad_response", "success line without a result")
            }),
            Some(false) => {
                let error = value.get("error");
                let code = error
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .unwrap_or("bad_response");
                let message = error
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("error line without a message");
                Err(depcase::Error::service(code, message))
            }
            None => Err(depcase::Error::service(
                "bad_response",
                "response line carries no boolean `ok`",
            )),
        }
    }

    /// Fetches the server's recent span trees plus the per-op latency
    /// decomposition (the `trace` op). `limit` caps how many trace
    /// trees come back, newest first.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; the wire error
    /// (e.g. `bad_request` for an out-of-range limit) otherwise.
    pub fn trace(&mut self, limit: usize) -> depcase::Result<Value> {
        let request = Value::Object(vec![
            ("op".to_string(), Value::Str("trace".to_string())),
            ("limit".to_string(), Value::U64(limit as u64)),
        ]);
        let line = serde_json::to_string(&Json(request))
            .map_err(|e| depcase::Error::service("bad_request", format!("unserializable: {e}")))?;
        self.round_trip_value(&line)
    }

    /// Fetches the unified metrics registry as structured JSON (the
    /// `metrics` op without a format override).
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; the wire error
    /// otherwise.
    pub fn metrics(&mut self) -> depcase::Result<Value> {
        self.round_trip_value(r#"{"op":"metrics"}"#)
    }

    /// Fetches the metrics registry rendered as Prometheus text
    /// exposition, ready to serve to a scraper.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; `bad_response`
    /// when the reply does not carry the expected `text` field.
    pub fn metrics_prometheus(&mut self) -> depcase::Result<String> {
        let value = self.round_trip_value(r#"{"op":"metrics","format":"prometheus"}"#)?;
        value.get("text").and_then(Value::as_str).map(str::to_string).ok_or_else(|| {
            depcase::Error::service("bad_response", "metrics reply without a text field")
        })
    }

    /// Evaluates many cases in one wire exchange: the names are packed
    /// into `"v":2` `batch` requests ([`MAX_BATCH_ITEMS`] per line, so
    /// any number of names works), sent with **one write syscall per
    /// batch**, and answered positionally — `result[i]` is the eval of
    /// `names[i]`, success or its own typed error.
    ///
    /// Identical names in one batch coalesce server-side into a single
    /// evaluation, and distinct same-shape cases run the vectorized
    /// batch kernel; either way the answers are bit-identical to
    /// one-at-a-time `eval` calls.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; `bad_response`
    /// when the batch envelope itself cannot be parsed. Per-item
    /// failures (e.g. `unknown_case`) land in their own slot instead of
    /// failing the call.
    pub fn eval_many(&mut self, names: &[&str]) -> depcase::Result<Vec<depcase::Result<Value>>> {
        let mut results = Vec::with_capacity(names.len());
        for chunk in names.chunks(MAX_BATCH_ITEMS.max(1)) {
            let items: Vec<Value> = chunk.iter().map(|name| eval_item(name)).collect();
            results.extend(self.batch_round_trip(&items)?);
        }
        Ok(results)
    }

    /// Sends one `"v":2` `batch` of raw item objects (each shaped like
    /// a request body without an id, e.g. `{"op":"eval","name":"x"}`)
    /// in a single write syscall, and returns the per-item outcomes in
    /// item order.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; the batch-level
    /// wire error (e.g. `invalid_batch`, `overloaded`) when the server
    /// rejects the envelope as a whole.
    pub fn batch_round_trip(
        &mut self,
        items: &[Value],
    ) -> depcase::Result<Vec<depcase::Result<Value>>> {
        Ok(self.batch_raw(items)?.iter().map(item_outcome).collect())
    }

    /// One batch exchange returning the raw per-item objects, so
    /// callers that need wire detail (the retrying client reads each
    /// item's `retry_after_ms` hint) can keep it.
    pub(crate) fn batch_raw(&mut self, items: &[Value]) -> depcase::Result<Vec<Value>> {
        let envelope = Value::Object(vec![
            ("v".to_string(), Value::U64(2)),
            ("op".to_string(), Value::Str("batch".to_string())),
            ("items".to_string(), Value::Array(items.to_vec())),
        ]);
        let line = serde_json::to_string(&Json(envelope))
            .map_err(|e| depcase::Error::service("bad_request", format!("unserializable: {e}")))?;
        let response = self.round_trip(&line)?;
        parse_batch_response(&response, items.len())
    }
}

/// One positional `eval` item for a batch envelope.
fn eval_item(name: &str) -> Value {
    Value::Object(vec![
        ("op".to_string(), Value::Str("eval".to_string())),
        ("name".to_string(), Value::Str(name.to_string())),
    ])
}

/// Splits a batch response line into raw per-item objects, enforcing
/// that the server answered every item positionally.
fn parse_batch_response(response: &str, expected: usize) -> depcase::Result<Vec<Value>> {
    let Json(value) = serde_json::from_str::<Json>(response).map_err(|e| {
        depcase::Error::service("bad_response", format!("unparseable response line: {e}"))
    })?;
    match value.get("ok").and_then(Value::as_bool) {
        Some(true) => {}
        Some(false) => {
            let error = value.get("error");
            let code =
                error.and_then(|e| e.get("code")).and_then(Value::as_str).unwrap_or("bad_response");
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("error line without a message");
            return Err(depcase::Error::service(code, message));
        }
        None => {
            return Err(depcase::Error::service(
                "bad_response",
                "response line carries no boolean `ok`",
            ))
        }
    }
    let items =
        value.get("result").and_then(|r| r.get("items")).and_then(Value::as_array).ok_or_else(
            || depcase::Error::service("bad_response", "batch success line without an items array"),
        )?;
    if items.len() != expected {
        return Err(depcase::Error::service(
            "bad_response",
            format!("batch answered {} items for {expected} requests", items.len()),
        ));
    }
    Ok(items.to_vec())
}

/// Maps one batch item object to the outcome its standalone request
/// would have produced.
fn item_outcome(item: &Value) -> depcase::Result<Value> {
    match item.get("ok").and_then(Value::as_bool) {
        Some(true) => item.get("result").cloned().ok_or_else(|| {
            depcase::Error::service("bad_response", "success item without a result")
        }),
        Some(false) => {
            let error = item.get("error");
            let code =
                error.and_then(|e| e.get("code")).and_then(Value::as_str).unwrap_or("bad_response");
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("error item without a message");
            Err(depcase::Error::service(code, message))
        }
        None => Err(depcase::Error::service("bad_response", "item carries no boolean `ok`")),
    }
}

/// Retry tunables for [`RetryingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Smallest backoff sleep in milliseconds.
    pub base_ms: u64,
    /// Largest backoff sleep in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream; a fixed seed replays a fixed
    /// backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 8, base_ms: 5, cap_ms: 500, seed: 0x5EED }
    }
}

/// A [`Client`] wrapper that retries transient failures.
///
/// Retries happen on transport errors (the connection is re-dialed)
/// and on the wire codes [`code_is_retryable`] marks transient —
/// `overloaded`, `internal_error`, `deadline_exceeded`, and the
/// storage-degradation signal `read_only`. Anything else — application
/// errors like `unknown_case`, but also `storage_error` and
/// `data_corrupted`, which a resend cannot fix — returns to the caller
/// untouched on the first attempt.
pub struct RetryingClient {
    addr: SocketAddr,
    client: Option<Client>,
    policy: RetryPolicy,
    rng: StdRng,
    retries: u64,
    retried_codes: Vec<String>,
}

impl RetryingClient {
    /// Resolves `addr` and prepares a client; the first connection is
    /// dialed lazily on the first request.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when `addr` does not resolve.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(RetryingClient {
            addr,
            client: None,
            rng: StdRng::seed_from_u64(policy.seed),
            policy,
            retries: 0,
            retried_codes: Vec::new(),
        })
    }

    /// How many retry attempts (beyond first sends) this client has
    /// made across all requests so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Every wire error code (or transport pseudo-code) that triggered
    /// a retry, in order.
    #[must_use]
    pub fn retried_codes(&self) -> &[String] {
        &self.retried_codes
    }

    /// Sends one request line, retrying transient failures, and
    /// returns the final response line.
    ///
    /// # Errors
    ///
    /// The last transient [`depcase::Error::Service`] once the attempt
    /// budget is exhausted.
    pub fn round_trip(&mut self, line: &str) -> depcase::Result<String> {
        let mut prev_sleep = self.policy.base_ms;
        let mut last_err =
            depcase::Error::service("retry_exhausted", "no attempt was made (max_attempts = 0)");
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.retries += 1;
            }
            match self.try_once(line) {
                Ok(response) => match retryable(&response) {
                    None => return Ok(response),
                    Some((code, retry_after_ms)) => {
                        self.retried_codes.push(code.clone());
                        last_err = depcase::Error::service(
                            code,
                            "service answered a retryable error on the final attempt",
                        );
                        let backoff = self.next_backoff(&mut prev_sleep);
                        thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(backoff)));
                    }
                },
                Err(err) => {
                    // Transport trouble: whatever the socket state is,
                    // it is not worth diagnosing — drop it and re-dial
                    // on the next attempt.
                    self.client = None;
                    if let depcase::Error::Service { code, .. } = &err {
                        self.retried_codes.push(code.clone());
                    }
                    last_err = err;
                    let backoff = self.next_backoff(&mut prev_sleep);
                    thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
        Err(last_err)
    }

    /// [`Client::eval_many`] with the retry discipline applied **per
    /// item**: each round resends only the items that answered a
    /// retryable code, sleeping the largest `retry_after_ms` hint any
    /// retried item carried (decorrelated backoff when no item offered
    /// a hint). Settled items keep their first final answer — a
    /// `unknown_case` in slot 2 never causes slot 3 to be re-sent.
    ///
    /// # Errors
    ///
    /// A batch-level or transport error that is not transient; or, once
    /// the attempt budget is exhausted, the last transient error (items
    /// already settled are lost with it — the call is all-or-nothing).
    pub fn eval_many(&mut self, names: &[&str]) -> depcase::Result<Vec<depcase::Result<Value>>> {
        let mut slots: Vec<Option<depcase::Result<Value>>> = names.iter().map(|_| None).collect();
        let mut open: Vec<usize> = (0..names.len()).collect();
        let mut prev_sleep = self.policy.base_ms;
        let mut last_err =
            depcase::Error::service("retry_exhausted", "no attempt was made (max_attempts = 0)");
        for attempt in 0..self.policy.max_attempts.max(1) {
            if open.is_empty() {
                break;
            }
            if attempt > 0 {
                self.retries += 1;
            }
            match self.try_eval_batch(names, &open) {
                Ok(raw_items) => {
                    let mut still_open = Vec::new();
                    let mut hint: Option<u64> = None;
                    for (&slot, item) in open.iter().zip(&raw_items) {
                        if let Some((code, item_hint)) = retryable_item(item) {
                            self.retried_codes.push(code.clone());
                            hint = hint.max(item_hint);
                            last_err = depcase::Error::service(
                                code,
                                "service answered a retryable error on the final attempt",
                            );
                            still_open.push(slot);
                        } else {
                            slots[slot] = Some(item_outcome(item));
                        }
                    }
                    open = still_open;
                    if open.is_empty() {
                        break;
                    }
                    let backoff = self.next_backoff(&mut prev_sleep);
                    thread::sleep(Duration::from_millis(hint.unwrap_or(backoff)));
                }
                Err(err) => {
                    let code = match &err {
                        depcase::Error::Service { code, .. } => code.clone(),
                        _ => return Err(err),
                    };
                    let transport = transport_code(&code);
                    let transient =
                        transport || ErrorCode::parse(&code).is_some_and(code_is_retryable);
                    if !transient {
                        return Err(err);
                    }
                    if transport {
                        self.client = None;
                    }
                    self.retried_codes.push(code);
                    last_err = err;
                    let backoff = self.next_backoff(&mut prev_sleep);
                    thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
        if !open.is_empty() {
            return Err(last_err);
        }
        Ok(slots.into_iter().map(|slot| slot.expect("every settled slot is filled")).collect())
    }

    /// One chunked batch exchange covering exactly the open slots,
    /// returning their raw item objects in `open` order.
    fn try_eval_batch(&mut self, names: &[&str], open: &[usize]) -> depcase::Result<Vec<Value>> {
        if self.client.is_none() {
            let client = Client::connect(self.addr)
                .map_err(|e| depcase::Error::service("io", format!("connect failed: {e}")))?;
            self.client = Some(client);
        }
        let client = self.client.as_mut().expect("client was just connected");
        let mut raw = Vec::with_capacity(open.len());
        for chunk in open.chunks(MAX_BATCH_ITEMS.max(1)) {
            let items: Vec<Value> = chunk.iter().map(|&slot| eval_item(names[slot])).collect();
            raw.extend(client.batch_raw(&items)?);
        }
        Ok(raw)
    }

    fn try_once(&mut self, line: &str) -> depcase::Result<String> {
        if self.client.is_none() {
            let client = Client::connect(self.addr)
                .map_err(|e| depcase::Error::service("io", format!("connect failed: {e}")))?;
            self.client = Some(client);
        }
        self.client.as_mut().expect("client was just connected").round_trip(line)
    }

    /// Decorrelated jitter: sleep a uniform draw from
    /// `[base, prev * 3]`, capped. Independent clients seeded
    /// differently spread out instead of retrying in lockstep.
    fn next_backoff(&mut self, prev_sleep: &mut u64) -> u64 {
        let base = self.policy.base_ms.max(1);
        let high = (prev_sleep.saturating_mul(3)).clamp(base, self.policy.cap_ms.max(base));
        let span = (high - base) as f64;
        let sleep = base + (self.rng.gen::<f64>() * span).round() as u64;
        *prev_sleep = sleep;
        sleep
    }
}

/// The retryability table: whether a resend can possibly change the
/// answer for each wire code. This is the **single** classification
/// every retry path in this module consults — [`RetryingClient::round_trip`],
/// [`RetryingClient::eval_many`]'s per-item loop, and its batch-level
/// error handling — so a code can never be retryable in one path and
/// final in another. The match is exhaustive on purpose: adding an
/// [`ErrorCode`] forces a classification decision here.
#[must_use]
pub const fn code_is_retryable(code: ErrorCode) -> bool {
    match code {
        // Transient server states: shed load, a caught panic, a spent
        // budget, and the read-only degradation window (every mutation
        // attempt probes the disk, so retrying after `retry_after_ms`
        // is exactly how the client rides the window out).
        ErrorCode::Overloaded
        | ErrorCode::InternalError
        | ErrorCode::DeadlineExceeded
        | ErrorCode::ReadOnly => true,
        // Final: the request itself is wrong, the named state does not
        // exist, or the stored bytes are damaged — `storage_error` and
        // `data_corrupted` need an operator (or a scrub), not a resend.
        ErrorCode::BadJson
        | ErrorCode::BadRequest
        | ErrorCode::UnknownOp
        | ErrorCode::UnknownCase
        | ErrorCode::BadCase
        | ErrorCode::Case
        | ErrorCode::Confidence
        | ErrorCode::Distribution
        | ErrorCode::Numerics
        | ErrorCode::RequestTooLarge
        | ErrorCode::NoSuchVersion
        | ErrorCode::StorageError
        | ErrorCode::UnsupportedVersion
        | ErrorCode::DataCorrupted => false,
    }
}

/// The transport pseudo-codes this crate's clients emit ([`Client`]
/// docs): both mean the socket, not the request, failed — retryable
/// after a re-dial.
fn transport_code(code: &str) -> bool {
    matches!(code, "io" | "connection_closed")
}

/// Extracts `(code, retry_after_ms)` from one wire error object when
/// its code is retryable per [`code_is_retryable`].
fn retryable_error(error: &Value) -> Option<(String, Option<u64>)> {
    let code = error.get("code").and_then(Value::as_str)?;
    if !ErrorCode::parse(code).is_some_and(code_is_retryable) {
        return None;
    }
    Some((code.to_string(), error.get("retry_after_ms").and_then(Value::as_u64)))
}

/// Extracts `(code, retry_after_ms)` when `response` is an error reply
/// carrying one of the retryable wire codes; `None` means the response
/// is final (success or a non-transient error).
fn retryable(response: &str) -> Option<(String, Option<u64>)> {
    let Json(value) = serde_json::from_str::<Json>(response).ok()?;
    if value.get("ok").and_then(Value::as_bool) != Some(false) {
        return None;
    }
    retryable_error(value.get("error")?)
}

/// The per-item spelling of [`retryable`]: extracts
/// `(code, retry_after_ms)` when a batch item answered a retryable
/// error; `None` means the item is settled (success or final error).
fn retryable_item(item: &Value) -> Option<(String, Option<u64>)> {
    if item.get("ok").and_then(Value::as_bool) != Some(false) {
        return None;
    }
    retryable_error(item.get("error")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_spots_transient_codes_and_the_hint() {
        let overloaded = r#"{"id":1,"ok":false,"error":{"code":"overloaded","message":"m","retry_after_ms":40}}"#;
        assert_eq!(retryable(overloaded), Some(("overloaded".to_string(), Some(40))));
        let panic = r#"{"id":1,"ok":false,"error":{"code":"internal_error","message":"m"}}"#;
        assert_eq!(retryable(panic), Some(("internal_error".to_string(), None)));
        let fatal = r#"{"id":1,"ok":false,"error":{"code":"unknown_case","message":"m"}}"#;
        assert_eq!(retryable(fatal), None);
        let success = r#"{"id":1,"ok":true,"result":{}}"#;
        assert_eq!(retryable(success), None);
        // The storage triple: `read_only` retries on the server's hint,
        // while damaged-data answers are final.
        let degraded = r#"{"id":1,"ok":false,"error":{"code":"read_only","message":"m","retry_after_ms":250}}"#;
        assert_eq!(retryable(degraded), Some(("read_only".to_string(), Some(250))));
        let rot = r#"{"id":1,"ok":false,"error":{"code":"data_corrupted","message":"m"}}"#;
        assert_eq!(retryable(rot), None);
        let disk = r#"{"id":1,"ok":false,"error":{"code":"storage_error","message":"m"}}"#;
        assert_eq!(retryable(disk), None);
    }

    #[test]
    fn the_retryability_table_classifies_every_wire_code() {
        // Pin the table's full output: exactly these four codes are
        // worth a resend, every other code is final. `ErrorCode::ALL`
        // makes this sweep — and the `const fn`'s exhaustive match —
        // break loudly whenever a code is added without classifying it.
        let transient = [
            ErrorCode::Overloaded,
            ErrorCode::InternalError,
            ErrorCode::DeadlineExceeded,
            ErrorCode::ReadOnly,
        ];
        for code in ErrorCode::ALL {
            assert_eq!(
                code_is_retryable(code),
                transient.contains(&code),
                "{} is misclassified",
                code.as_str()
            );
        }
        // Transport pseudo-codes are retryable too (with a re-dial),
        // but only the two this crate's clients emit.
        assert!(transport_code("io"));
        assert!(transport_code("connection_closed"));
        assert!(!transport_code("overloaded"));
        assert!(!transport_code("read_only"));
    }

    #[test]
    fn retryable_item_reads_batch_items_not_response_lines() {
        let parse = |s: &str| {
            let Json(v) = serde_json::from_str::<Json>(s).unwrap();
            v
        };
        let shed = parse(
            r#"{"ok":false,"error":{"code":"overloaded","message":"m","retry_after_ms":15}}"#,
        );
        assert_eq!(retryable_item(&shed), Some(("overloaded".to_string(), Some(15))));
        let fatal = parse(r#"{"ok":false,"error":{"code":"unknown_case","message":"m"}}"#);
        assert_eq!(retryable_item(&fatal), None);
        let settled = parse(r#"{"ok":true,"result":{"root_confidence":0.5}}"#);
        assert_eq!(retryable_item(&settled), None);
    }

    #[test]
    fn batch_responses_must_answer_positionally() {
        let two_for_three = r#"{"id":1,"v":2,"ok":true,"result":{"items":[{"ok":true,"result":1},{"ok":true,"result":2}]}}"#;
        let err = parse_batch_response(two_for_three, 3).unwrap_err();
        assert!(matches!(err, depcase::Error::Service { ref code, .. } if code == "bad_response"));
        let envelope_error =
            r#"{"id":1,"ok":false,"error":{"code":"invalid_batch","message":"m"}}"#;
        let err = parse_batch_response(envelope_error, 1).unwrap_err();
        assert!(matches!(err, depcase::Error::Service { ref code, .. } if code == "invalid_batch"));
    }

    #[test]
    fn backoff_is_seeded_bounded_and_reproducible() {
        let policy = RetryPolicy { max_attempts: 4, base_ms: 10, cap_ms: 120, seed: 99 };
        let schedule = |policy: RetryPolicy| {
            let mut client = RetryingClient::connect(("127.0.0.1", 1), policy).unwrap();
            let mut prev = policy.base_ms;
            (0..6).map(|_| client.next_backoff(&mut prev)).collect::<Vec<_>>()
        };
        let first = schedule(policy);
        let second = schedule(policy);
        assert_eq!(first, second, "same seed must replay the same backoff schedule");
        assert!(first.iter().all(|&ms| (10..=120).contains(&ms)), "backoff must stay in bounds");
        let other = schedule(RetryPolicy { seed: 100, ..policy });
        assert_ne!(first, other, "different seeds should decorrelate retry timing");
    }
}
