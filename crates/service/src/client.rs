//! Service clients: the plain one-line-in, one-line-out [`Client`] and
//! a [`RetryingClient`] that rides out transient faults.
//!
//! Transport failures surface as typed [`depcase::Error::Service`]
//! values with stable codes — `io` for socket errors, and
//! `connection_closed` when the server hangs up mid-exchange — so
//! callers can branch on the failure class instead of string-matching
//! an `io::Error`.
//!
//! [`RetryingClient`] implements the client half of the fault model
//! (DESIGN §11): reconnect on transport errors, resend on the
//! retryable wire codes (`overloaded`, `internal_error`,
//! `deadline_exceeded`), honor the server's `retry_after_ms` hint when
//! present, and otherwise back off with exponential, decorrelated
//! jitter so a thundering herd of retries does not re-create the
//! overload it is retrying around. The jitter is seeded — the same
//! seed replays the same backoff schedule, matching the determinism
//! discipline of the rest of the crate.

use crate::protocol::{ErrorCode, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// Blocking NDJSON client for the assessment service.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer: BufWriter::new(write_half) })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// [`depcase::Error::Service`] with code `io` when the transport
    /// fails, or `connection_closed` when the server closes the
    /// connection before answering.
    pub fn round_trip(&mut self, line: &str) -> depcase::Result<String> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| depcase::Error::service("io", format!("send failed: {e}")))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| depcase::Error::service("io", format!("receive failed: {e}")))?;
        if n == 0 {
            return Err(depcase::Error::service(
                "connection_closed",
                "server closed the connection before answering",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// [`Client::round_trip`], then parses the response: `Ok(result)`
    /// for a success line, or the wire error mapped back to a typed
    /// [`depcase::Error::Service`] carrying its stable code.
    ///
    /// # Errors
    ///
    /// Transport failures as in [`Client::round_trip`]; `bad_response`
    /// when the line is not a well-formed response; otherwise the wire
    /// error's own code and message.
    pub fn round_trip_value(&mut self, line: &str) -> depcase::Result<Value> {
        let response = self.round_trip(line)?;
        let Json(value) = serde_json::from_str::<Json>(&response).map_err(|e| {
            depcase::Error::service("bad_response", format!("unparseable response line: {e}"))
        })?;
        match value.get("ok").and_then(Value::as_bool) {
            Some(true) => value.get("result").cloned().ok_or_else(|| {
                depcase::Error::service("bad_response", "success line without a result")
            }),
            Some(false) => {
                let error = value.get("error");
                let code = error
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str)
                    .unwrap_or("bad_response");
                let message = error
                    .and_then(|e| e.get("message"))
                    .and_then(Value::as_str)
                    .unwrap_or("error line without a message");
                Err(depcase::Error::service(code, message))
            }
            None => Err(depcase::Error::service(
                "bad_response",
                "response line carries no boolean `ok`",
            )),
        }
    }
}

/// Retry tunables for [`RetryingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (minimum 1).
    pub max_attempts: u32,
    /// Smallest backoff sleep in milliseconds.
    pub base_ms: u64,
    /// Largest backoff sleep in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream; a fixed seed replays a fixed
    /// backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 8, base_ms: 5, cap_ms: 500, seed: 0x5EED }
    }
}

/// A [`Client`] wrapper that retries transient failures.
///
/// Retries happen on transport errors (the connection is re-dialed)
/// and on the retryable wire codes `overloaded`, `internal_error`, and
/// `deadline_exceeded`. Anything else — including application errors
/// like `unknown_case` — returns to the caller untouched on the first
/// attempt.
pub struct RetryingClient {
    addr: SocketAddr,
    client: Option<Client>,
    policy: RetryPolicy,
    rng: StdRng,
    retries: u64,
    retried_codes: Vec<String>,
}

impl RetryingClient {
    /// Resolves `addr` and prepares a client; the first connection is
    /// dialed lazily on the first request.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when `addr` does not resolve.
    pub fn connect(addr: impl ToSocketAddrs, policy: RetryPolicy) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(RetryingClient {
            addr,
            client: None,
            rng: StdRng::seed_from_u64(policy.seed),
            policy,
            retries: 0,
            retried_codes: Vec::new(),
        })
    }

    /// How many retry attempts (beyond first sends) this client has
    /// made across all requests so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Every wire error code (or transport pseudo-code) that triggered
    /// a retry, in order.
    #[must_use]
    pub fn retried_codes(&self) -> &[String] {
        &self.retried_codes
    }

    /// Sends one request line, retrying transient failures, and
    /// returns the final response line.
    ///
    /// # Errors
    ///
    /// The last transient [`depcase::Error::Service`] once the attempt
    /// budget is exhausted.
    pub fn round_trip(&mut self, line: &str) -> depcase::Result<String> {
        let mut prev_sleep = self.policy.base_ms;
        let mut last_err =
            depcase::Error::service("retry_exhausted", "no attempt was made (max_attempts = 0)");
        for attempt in 0..self.policy.max_attempts.max(1) {
            if attempt > 0 {
                self.retries += 1;
            }
            match self.try_once(line) {
                Ok(response) => match retryable(&response) {
                    None => return Ok(response),
                    Some((code, retry_after_ms)) => {
                        self.retried_codes.push(code.clone());
                        last_err = depcase::Error::service(
                            code,
                            "service answered a retryable error on the final attempt",
                        );
                        let backoff = self.next_backoff(&mut prev_sleep);
                        thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(backoff)));
                    }
                },
                Err(err) => {
                    // Transport trouble: whatever the socket state is,
                    // it is not worth diagnosing — drop it and re-dial
                    // on the next attempt.
                    self.client = None;
                    if let depcase::Error::Service { code, .. } = &err {
                        self.retried_codes.push(code.clone());
                    }
                    last_err = err;
                    let backoff = self.next_backoff(&mut prev_sleep);
                    thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
        Err(last_err)
    }

    fn try_once(&mut self, line: &str) -> depcase::Result<String> {
        if self.client.is_none() {
            let client = Client::connect(self.addr)
                .map_err(|e| depcase::Error::service("io", format!("connect failed: {e}")))?;
            self.client = Some(client);
        }
        self.client.as_mut().expect("client was just connected").round_trip(line)
    }

    /// Decorrelated jitter: sleep a uniform draw from
    /// `[base, prev * 3]`, capped. Independent clients seeded
    /// differently spread out instead of retrying in lockstep.
    fn next_backoff(&mut self, prev_sleep: &mut u64) -> u64 {
        let base = self.policy.base_ms.max(1);
        let high = (prev_sleep.saturating_mul(3)).clamp(base, self.policy.cap_ms.max(base));
        let span = (high - base) as f64;
        let sleep = base + (self.rng.gen::<f64>() * span).round() as u64;
        *prev_sleep = sleep;
        sleep
    }
}

/// Extracts `(code, retry_after_ms)` when `response` is an error reply
/// carrying one of the retryable wire codes; `None` means the response
/// is final (success or a non-transient error).
fn retryable(response: &str) -> Option<(String, Option<u64>)> {
    let Json(value) = serde_json::from_str::<Json>(response).ok()?;
    if value.get("ok").and_then(Value::as_bool) != Some(false) {
        return None;
    }
    let error = value.get("error")?;
    let code = error.get("code").and_then(Value::as_str)?;
    let transient = matches!(
        ErrorCode::parse(code),
        Some(ErrorCode::Overloaded | ErrorCode::InternalError | ErrorCode::DeadlineExceeded)
    );
    if !transient {
        return None;
    }
    let retry_after_ms = error.get("retry_after_ms").and_then(Value::as_u64);
    Some((code.to_string(), retry_after_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_spots_transient_codes_and_the_hint() {
        let overloaded = r#"{"id":1,"ok":false,"error":{"code":"overloaded","message":"m","retry_after_ms":40}}"#;
        assert_eq!(retryable(overloaded), Some(("overloaded".to_string(), Some(40))));
        let panic = r#"{"id":1,"ok":false,"error":{"code":"internal_error","message":"m"}}"#;
        assert_eq!(retryable(panic), Some(("internal_error".to_string(), None)));
        let fatal = r#"{"id":1,"ok":false,"error":{"code":"unknown_case","message":"m"}}"#;
        assert_eq!(retryable(fatal), None);
        let success = r#"{"id":1,"ok":true,"result":{}}"#;
        assert_eq!(retryable(success), None);
    }

    #[test]
    fn backoff_is_seeded_bounded_and_reproducible() {
        let policy = RetryPolicy { max_attempts: 4, base_ms: 10, cap_ms: 120, seed: 99 };
        let schedule = |policy: RetryPolicy| {
            let mut client = RetryingClient::connect(("127.0.0.1", 1), policy).unwrap();
            let mut prev = policy.base_ms;
            (0..6).map(|_| client.next_backoff(&mut prev)).collect::<Vec<_>>()
        };
        let first = schedule(policy);
        let second = schedule(policy);
        assert_eq!(first, second, "same seed must replay the same backoff schedule");
        assert!(first.iter().all(|&ms| (10..=120).contains(&ms)), "backoff must stay in bounds");
        let other = schedule(RetryPolicy { seed: 100, ..policy });
        assert_ne!(first, other, "different seeds should decorrelate retry timing");
    }
}
