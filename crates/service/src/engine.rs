//! The assessment engine: a sharded, named, versioned case registry in
//! front of sharded compiled-plan caches and an optional global
//! content-addressed memo store, optionally backed by a durability
//! layer.
//!
//! [`Engine::handle`] is the single entry point; it is `&self` and
//! thread-safe, so any number of server workers can call it
//! concurrently. Registry and cache state is split across
//! [`EngineConfig::shards`] independent shards — names route by FNV-1a
//! hash, compiled plans by content hash — so tenants working on
//! different names contend only when their names collide on a shard,
//! not on one global mutex. Locks are held only around registry/cache
//! bookkeeping — the expensive work (plan compilation, Monte-Carlo
//! sampling) runs outside every lock, on the worker's own thread. The
//! one exception is the mutation commit path: a dedicated durability
//! mutex serializes `load`/`edit` commits **across all shards** so the
//! WAL's sequence order always equals the registry's commit order —
//! sharding changes who contends on reads, never the recovery
//! semantics — and readers never touch that lock.
//!
//! Compilation shares work across tenants: when the engine's global
//! memo store is enabled ([`EngineConfig::memo_entries`]), every
//! compile memoises per-subtree results keyed by the IR's Merkle
//! subtree hashes, so ten thousand stamped variants of one case
//! template each compute only the few subtrees their stamp actually
//! changed — bit-identically to compiling each from scratch (the memo
//! stores exact `f64` results keyed by exact content, never
//! approximations).
//!
//! The registry keeps **every** version of every named case reachable:
//! each mutation appends a [`VersionRecord`] to the name's history and
//! parks the resulting case in a content-addressed object map, so
//! `history` is a map lookup and time-travel `eval` (by `version` or
//! `at_hash`) is O(1) to resolve plus at most one compile — repeated
//! historical evals are pure plan-cache hits.
//!
//! With [`Engine::open`], every acked mutation is written ahead to a
//! WAL before the response is released, periodic content-addressed
//! snapshots bound replay time, and a restart replays snapshot + WAL
//! tail back to exactly the acked state (see the [`crate::wal`] and
//! [`crate::snapshot`] docs for the formats and crash-ordering rules).
//!
//! Numeric discipline: every number in a response is produced by exactly
//! the same library call a direct user would make — the engine adds
//! caching, durability, and transport, never arithmetic — so responses
//! are bit-identical to in-process evaluation (the integration tests
//! assert this via `f64::to_bits`).

use crate::cache::{CacheCounters, CompiledCase, PlanCache};
use crate::lock_unpoisoned;
use crate::protocol::{
    format_hash, BatchItem, EditAction, ErrorCode, EvalAt, Json, Request, Response, WireError,
};
use crate::snapshot::{Manifest, ManifestCase, Store, VersionRecord};
use crate::stats::{CompileCounters, RobustnessCounters, RobustnessEvent, ServiceStats};
use crate::storage_io::{RealIo, StorageIo};
use crate::telemetry::{self, MetricsRegistry, Telemetry, TlsTracer};
use crate::wal::{FsyncPolicy, Wal, WalOp, WalRecord};
use depcase::assurance::{
    importance, Case, ConfidenceReport, EditStats, EvalPlan, Incremental, MemoStore,
    MemoStoreStats, MonteCarlo, NodeId, NodeKind, SharedMemo,
};
use depcase::distributions::TwoPoint;
use depcase::sil::{SilAssessment, SilLevel};
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Fails with `deadline_exceeded` once `deadline` has passed. Called
/// between pipeline stages (after parse, after lookup/compile, before
/// heavy math), so a request that runs over budget stops at the next
/// stage boundary instead of holding a worker indefinitely. `mc`
/// additionally polls the deadline between sample chunks, so even a
/// huge sampling request overshoots by at most one chunk.
fn check_deadline(deadline: Option<Instant>) -> Result<(), WireError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(WireError::new(
            ErrorCode::DeadlineExceeded,
            "request deadline exceeded before the answer was ready",
        )),
        _ => Ok(()),
    }
}

/// Backoff hint attached to `read_only` answers: long enough for an
/// operator (or the fault window) to clear a transient disk problem,
/// short enough that a retrying client probes the disk promptly once
/// space returns.
const READ_ONLY_RETRY_MS: u64 = 250;

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// A registry-parked case object in its compact cold form: the
/// canonical serialized document plus the title the response headers
/// need. The registry keeps tens of thousands of tenants resident, but
/// the hot path reads cases out of the plan cache (whose sessions own
/// their graphs) — the registry copy exists for recompiles after cache
/// eviction, time-travel reads, snapshots, and scrub repair, all of
/// which tolerate a parse. Storing the document instead of the parsed
/// graph cuts resident bytes per tenant several-fold, and rehydration
/// is the exact round-trip the snapshot store already performs, so it
/// is bit-identical by the same argument the crash matrix proves.
#[derive(Debug, Clone)]
struct PackedCase {
    /// Canonical serialized case document (the snapshot object form).
    doc: Arc<str>,
    /// Case title, kept unpacked for response headers.
    title: Arc<str>,
}

impl PackedCase {
    /// Packs a live case into its canonical serialized form.
    fn pack(case: &Case) -> PackedCase {
        let doc = serde_json::to_string(&Json(Serialize::to_value(case)))
            .expect("a live case always serializes");
        PackedCase { doc: doc.into(), title: case.title().into() }
    }

    /// Parses the packed bytes back to the document value.
    fn doc_value(&self) -> Result<Value, String> {
        serde_json::from_str::<Json>(&self.doc)
            .map(|Json(value)| value)
            .map_err(|e| format!("packed case document failed to parse: {e}"))
    }

    /// Rehydrates the full case graph.
    fn unpack(&self) -> Result<Case, String> {
        Case::from_value(&self.doc_value()?)
            .map_err(|e| format!("packed case document failed to rebuild: {e}"))
    }

    /// [`PackedCase::unpack`] with the failure mapped to a wire error.
    /// The engine packed these bytes itself, so a failure here is an
    /// internal invariant break, not bad client input.
    fn unpack_wire(&self) -> Result<Case, WireError> {
        self.unpack().map_err(|e| WireError::new(ErrorCode::InternalError, e))
    }
}

/// A registered case at one version: the packed graph plus registry
/// metadata.
#[derive(Debug, Clone)]
struct CaseEntry {
    case: PackedCase,
    /// 1-based, bumped by every `load`/`edit` under this name.
    version: u64,
    /// Content hash of this version (plan-cache and object-store key).
    hash: u64,
}

/// A registry name: its current version plus the full version history.
#[derive(Debug)]
struct NamedCase {
    current: CaseEntry,
    /// Every version ever recorded, oldest first (the last record
    /// mirrors `current`).
    history: Vec<VersionRecord>,
}

#[derive(Debug, Default)]
struct Registry {
    cases: HashMap<String, NamedCase>,
    /// Every case version ever committed, packed, keyed by content
    /// hash — identical content is stored once no matter how many
    /// names or versions reference it.
    objects: HashMap<u64, PackedCase>,
}

impl Registry {
    /// Commits one mutation: parks the packed object, replaces the
    /// name's current entry, and appends to its history.
    fn commit(&mut self, name: &str, case: PackedCase, record: VersionRecord) {
        self.objects.entry(record.hash).or_insert_with(|| case.clone());
        let entry = CaseEntry { case, version: record.version, hash: record.hash };
        match self.cases.get_mut(name) {
            Some(named) => {
                named.current = entry;
                named.history.push(record);
            }
            None => {
                self.cases
                    .insert(name.to_string(), NamedCase { current: entry, history: vec![record] });
            }
        }
    }
}

/// FNV-1a over a case name: the shard router. Deliberately *not*
/// persisted — recovery re-routes every name by hashing it again, so
/// the shard map is a pure function of the name and the shard count,
/// and restarting with a different `--shards` is always safe.
fn shard_of(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    usize::try_from(h % shards as u64).expect("shard index fits usize")
}

/// Default shard count for registry and plan-cache state.
pub const DEFAULT_SHARDS: usize = 8;

/// Default capacity of the global content-addressed memo store
/// (entries, not bytes; one entry is a subtree hash plus three `f64`s).
pub const DEFAULT_MEMO_ENTRIES: usize = 1 << 18;

/// Construction-time tuning for [`Engine::with_config`]: how much
/// compiled state to keep and how widely to stripe it.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total compiled cases kept across all plan-cache shards
    /// (`--cache`).
    pub cache_capacity: usize,
    /// Registry/cache shards (`--shards`). Clamped to
    /// `[1, cache_capacity]` so a tiny cache is never striped thinner
    /// than one entry per shard.
    pub shards: usize,
    /// Capacity of the global content-addressed memo store shared by
    /// every compile (`--memo-cap`); 0 disables it, giving each
    /// compile a private per-session memo instead.
    pub memo_entries: usize,
}

impl EngineConfig {
    /// Defaults for `cache_capacity`: [`DEFAULT_SHARDS`] shards and a
    /// [`DEFAULT_MEMO_ENTRIES`]-entry global memo store.
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        EngineConfig { cache_capacity, shards: DEFAULT_SHARDS, memo_entries: DEFAULT_MEMO_ENTRIES }
    }
}

/// Configuration for [`Engine::open`]'s durability layer.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL, manifest, and object store; created
    /// if absent.
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Take a snapshot and truncate the WAL every this many mutations
    /// (`--snapshot-every`); 0 disables periodic snapshots.
    pub snapshot_every: u64,
}

impl DurabilityConfig {
    /// Defaults for `data_dir`: no per-append fsync, snapshot every 256
    /// mutations.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Never,
            snapshot_every: 256,
        }
    }
}

/// The open durability state, guarded by one mutex so mutations commit
/// in WAL-sequence order.
#[derive(Debug)]
struct Durability {
    store: Store,
    wal: Wal,
    snapshot_every: u64,
    /// WAL records appended since the last snapshot (or startup replay
    /// tail length), the periodic-snapshot trigger.
    since_snapshot: u64,
    /// Next WAL sequence number to assign.
    next_seq: u64,
}

/// What the scrub/repair pipeline knows to be damaged: object hashes
/// whose stored bytes failed verification (quarantined on disk, absent
/// from the registry's object map), and case names whose recovered
/// state could not be reconstructed faithfully. Reads that resolve to
/// either answer `data_corrupted` — corrupt state is never served as
/// if it were healthy.
#[derive(Debug, Default)]
struct CorruptState {
    hashes: HashSet<u64>,
    names: HashSet<String>,
}

/// Everything a Monte-Carlo response depends on, used to coalesce
/// concurrent identical runs into one flight. `threads` is deliberately
/// absent: chunked sampling is bit-identical at any thread count, so
/// requests differing only in `threads` produce the same bytes and may
/// share one run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct McKey {
    name: String,
    version: u64,
    hash: u64,
    samples: u32,
    seed: u64,
}

/// The shared state of one in-flight coalesced run: followers block on
/// the condvar until the leader publishes the outcome.
#[derive(Debug)]
enum FlightSlot {
    Running,
    Done(Result<Value, WireError>),
}

type Flight = Arc<(Mutex<FlightSlot>, Condvar)>;

/// Publishes the leader's outcome even on unwind: dropping the guard
/// removes the flight from the table and wakes every follower — with
/// `internal_error` if the leader never stored a real result — so a
/// panicking sampler (the server's worker isolation catches the panic
/// itself) can never strand followers on the condvar.
struct FlightGuard<'a> {
    flights: &'a Mutex<HashMap<McKey, Flight>>,
    key: &'a McKey,
    flight: &'a Flight,
    outcome: Option<Result<Value, WireError>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let outcome = self.outcome.take().unwrap_or_else(|| {
            Err(WireError::new(
                ErrorCode::InternalError,
                "the coalesced sampling run did not complete",
            ))
        });
        lock_unpoisoned(self.flights).remove(self.key);
        let (slot, signal) = &**self.flight;
        *lock_unpoisoned(slot) = FlightSlot::Done(outcome);
        signal.notify_all();
    }
}

/// Blocks until the flight completes or `deadline` passes; `None` means
/// the wait timed out with the leader still running.
fn wait_for_flight(flight: &Flight, deadline: Option<Instant>) -> Option<Result<Value, WireError>> {
    let (slot, signal) = &**flight;
    let mut state = lock_unpoisoned(slot);
    loop {
        if let FlightSlot::Done(result) = &*state {
            return Some(result.clone());
        }
        state = match deadline {
            None => signal.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner),
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return None;
                }
                signal
                    .wait_timeout(state, d - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0
            }
        };
    }
}

/// The long-running assessment engine.
#[derive(Debug)]
pub struct Engine {
    /// Registry shards, indexed by [`shard_of`] the case name. Each
    /// shard has its own lock; no operation holds two at once.
    registries: Vec<Mutex<Registry>>,
    /// Plan-cache shards, indexed by content hash (decoupled from the
    /// name shard: every cache access site already has the hash).
    caches: Vec<Mutex<PlanCache>>,
    /// The global content-addressed memo store shared by every compile;
    /// `None` when disabled (`memo_entries: 0`).
    memo: Option<Arc<SharedMemo>>,
    stats: Mutex<ServiceStats>,
    /// `Some` for durable engines. Also taken (even when `None`) to
    /// serialize mutation commits.
    durability: Mutex<Option<Durability>>,
    /// In-flight Monte-Carlo runs, keyed by everything the response
    /// depends on; a request arriving while an identical run is already
    /// sampling joins it instead of re-sampling.
    mc_flights: Mutex<HashMap<McKey, Flight>>,
    /// Requests answered by joining another request's in-flight run.
    coalesced: AtomicU64,
    /// Set while the WAL cannot take appends (disk full, IO errors):
    /// mutations answer `read_only` + `retry_after_ms` while reads keep
    /// being served from memory. Every mutation attempt still probes
    /// the disk, so the flag clears itself on the first append that
    /// lands — no operator action needed once space returns.
    read_only: AtomicBool,
    /// Objects and names the scrub/repair pipeline has quarantined.
    corrupt: Mutex<CorruptState>,
    /// Tracing, latency decomposition, and the metrics registry.
    telemetry: Arc<Telemetry>,
}

impl Engine {
    /// Creates an in-memory engine whose plan caches hold
    /// `cache_capacity` compiled cases in total, with the default shard
    /// count and memo store. Nothing survives a restart, but version
    /// history and time-travel still work within the process.
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        Engine::with_config(&EngineConfig::new(cache_capacity))
    }

    /// Creates an in-memory engine with explicit sharding and memo
    /// sizing. The shard count is clamped to `[1, cache_capacity]`
    /// (each cache shard holds at least one entry); the total cache
    /// capacity is split evenly across shards, rounding up.
    #[must_use]
    pub fn with_config(config: &EngineConfig) -> Self {
        let shards = config.shards.clamp(1, config.cache_capacity.max(1));
        let per_shard_cache = config.cache_capacity.div_ceil(shards);
        Engine {
            registries: (0..shards).map(|_| Mutex::new(Registry::default())).collect(),
            caches: (0..shards).map(|_| Mutex::new(PlanCache::new(per_shard_cache))).collect(),
            memo: (config.memo_entries > 0).then(|| Arc::new(SharedMemo::new(config.memo_entries))),
            stats: Mutex::new(ServiceStats::default()),
            durability: Mutex::new(None),
            mc_flights: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            corrupt: Mutex::new(CorruptState::default()),
            telemetry: Arc::new(Telemetry::new()),
        }
    }

    /// The registry shard owning `name`.
    fn registry(&self, name: &str) -> &Mutex<Registry> {
        &self.registries[shard_of(name, self.registries.len())]
    }

    /// The plan-cache shard owning content hash `hash`.
    fn cache(&self, hash: u64) -> &Mutex<PlanCache> {
        let n = self.caches.len() as u64;
        &self.caches[usize::try_from(hash % n).expect("shard index fits usize")]
    }

    /// Searches every registry shard for a parked object copy
    /// (scrub-time repair source) — shard locks are taken one at a
    /// time, never together.
    fn parked_object(&self, hash: u64) -> Option<PackedCase> {
        self.registries.iter().find_map(|shard| lock_unpoisoned(shard).objects.get(&hash).cloned())
    }

    /// Aggregated cache counters plus total entries/capacity, collected
    /// shard by shard.
    fn cache_totals(&self) -> (CacheCounters, usize, usize) {
        let mut totals = CacheCounters::default();
        let (mut entries, mut capacity) = (0usize, 0usize);
        for shard in &self.caches {
            let cache = lock_unpoisoned(shard);
            let c = cache.counters();
            totals.hits += c.hits;
            totals.misses += c.misses;
            totals.evictions += c.evictions;
            entries += cache.len();
            capacity += cache.capacity();
        }
        (totals, entries, capacity)
    }

    /// Number of registry/cache shards this engine was built with.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.registries.len()
    }

    /// Counter snapshot of the global memo store; `None` when the
    /// store is disabled.
    #[must_use]
    pub fn memo_stats(&self) -> Option<MemoStoreStats> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// Snapshot of the compile counters (for tests and benches).
    #[must_use]
    pub fn compile_counters(&self) -> CompileCounters {
        lock_unpoisoned(&self.stats).compile()
    }

    /// The engine's observability hub: per-request tracing, latency
    /// decomposition, the slow-request log, and the metrics registry.
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Opens a durable engine: recovers the registry from the snapshot
    /// and WAL tail under `config.data_dir` (truncating a torn final
    /// record if the last run died mid-write), then logs every
    /// subsequent acked mutation ahead of its response.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the data directory is unusable, or with
    /// kind `InvalidData` when the manifest itself is corrupt —
    /// deliberately a hard error, because silently re-initializing a
    /// store that an operator believes holds audit history would be
    /// worse than refusing to start. A corrupt *object* or an
    /// unreplayable WAL record is survivable: the damaged state is
    /// quarantined and answers `data_corrupted` while every healthy
    /// case keeps serving (see [`Engine::open_with_io`]).
    pub fn open(cache_capacity: usize, config: &DurabilityConfig) -> std::io::Result<Engine> {
        Engine::open_with_io(cache_capacity, config, RealIo::shared())
    }

    /// [`Engine::open`] with explicit sharding and memo sizing.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] as for [`Engine::open`].
    pub fn open_config(
        config: &EngineConfig,
        durability: &DurabilityConfig,
    ) -> std::io::Result<Engine> {
        Engine::open_config_with_io(config, durability, RealIo::shared())
    }

    /// [`Engine::open`] over an explicit [`StorageIo`] — the seam the
    /// fault-injection and crash-matrix tests use to run the real
    /// recovery code against simulated or faulty disks.
    ///
    /// Recovery degrades instead of refusing: a snapshot object whose
    /// bytes fail their content-hash check is quarantined (moved to
    /// `quarantine/` under the data dir) and the WAL tail is given a
    /// chance to rebuild it; a WAL record that cannot be replayed
    /// poisons just its case name. Whatever remains damaged afterwards
    /// answers `data_corrupted` on access rather than being served.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the data directory is unusable or the
    /// manifest is corrupt.
    pub fn open_with_io(
        cache_capacity: usize,
        config: &DurabilityConfig,
        io: Arc<dyn StorageIo>,
    ) -> std::io::Result<Engine> {
        Engine::open_config_with_io(&EngineConfig::new(cache_capacity), config, io)
    }

    /// [`Engine::open_with_io`] with explicit sharding and memo sizing
    /// — the full-control constructor every other one funnels into.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] as for [`Engine::open`].
    pub fn open_config_with_io(
        engine_config: &EngineConfig,
        config: &DurabilityConfig,
        io: Arc<dyn StorageIo>,
    ) -> std::io::Result<Engine> {
        let engine = Engine::with_config(engine_config);
        let store = Store::open_with_io(&config.data_dir, io)?;
        let manifest = store.load_manifest()?;
        let mut last_seq = 0u64;
        if let Some(manifest) = &manifest {
            last_seq = manifest.seq;
            engine.restore_snapshot(&store, manifest)?;
        }
        let (wal, replay) = Wal::open_with_io(store.wal_path(), config.fsync, store.io())?;
        if replay.torn_tail_dropped {
            eprintln!(
                "depcase-service: wal: dropped a torn tail ({} bytes); \
                 resuming from the last intact record",
                replay.bytes_dropped
            );
        }
        let mut replayed = 0u64;
        let mut poisoned: HashSet<String> = HashSet::new();
        for record in &replay.records {
            if record.seq <= last_seq {
                // The snapshot already covers this record: the last run
                // died between writing the manifest and truncating the
                // WAL. Skipping keeps replay idempotent.
                continue;
            }
            last_seq = record.seq;
            match engine.replay_record(record) {
                Ok(()) => {
                    // A `load` is a full state reset: it re-establishes
                    // the name from scratch, clearing earlier damage —
                    // including a quarantine from the snapshot restore.
                    if matches!(record.op, WalOp::Load { .. }) {
                        poisoned.remove(&record.name);
                        lock_unpoisoned(&engine.corrupt).names.remove(&record.name);
                    }
                    replayed += 1;
                }
                Err(e) => {
                    // Skipping a record would silently serve a stale
                    // version as current; poison the name instead so
                    // reads answer `data_corrupted`.
                    eprintln!(
                        "depcase-service: wal replay: {e}; case `{}` quarantined",
                        record.name
                    );
                    poisoned.insert(record.name.clone());
                }
            }
        }
        engine.heal_after_replay(&store, poisoned);
        {
            let mut stats = lock_unpoisoned(&engine.stats);
            let counters = stats.durability_mut();
            counters.records_replayed = replayed;
            counters.torn_tail_recoveries = u64::from(replay.torn_tail_dropped);
        }
        *lock_unpoisoned(&engine.durability) = Some(Durability {
            store,
            wal,
            snapshot_every: config.snapshot_every,
            since_snapshot: replayed,
            next_seq: last_seq + 1,
        });
        Ok(engine)
    }

    /// Post-replay fixpoint: any quarantined object the WAL replay has
    /// re-parked in the registry is rewritten to the store from that
    /// in-memory copy (counted `repaired_from_wal`), and a poisoned
    /// name whose registry state is unreconstructable is dropped from
    /// serving entirely so `data_corrupted` is the only answer it gives.
    fn heal_after_replay(&self, store: &Store, poisoned: HashSet<String>) {
        let quarantined: Vec<u64> = lock_unpoisoned(&self.corrupt).hashes.iter().copied().collect();
        let healed: Vec<u64> = quarantined
            .into_iter()
            .filter(|hash| {
                self.parked_object(*hash).is_some_and(|packed| {
                    packed.doc_value().is_ok_and(|doc| store.rewrite_object(*hash, &doc).is_ok())
                })
            })
            .collect();
        let mut corrupt = lock_unpoisoned(&self.corrupt);
        let mut stats = lock_unpoisoned(&self.stats);
        for hash in healed {
            corrupt.hashes.remove(&hash);
            stats.storage_health_mut().repaired_from_wal += 1;
        }
        for name in poisoned {
            lock_unpoisoned(self.registry(&name)).cases.remove(&name);
            corrupt.names.insert(name);
        }
    }

    /// True when this engine writes mutations ahead to a WAL.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        lock_unpoisoned(&self.durability).is_some()
    }

    /// Forces everything acked so far to stable storage regardless of
    /// fsync policy. Graceful drain calls this; a no-op for in-memory
    /// engines.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the sync fails.
    pub fn flush_durability(&self) -> std::io::Result<()> {
        let mut durability = lock_unpoisoned(&self.durability);
        if let Some(d) = durability.as_mut() {
            d.wal.sync()?;
            lock_unpoisoned(&self.stats).durability_mut().fsyncs += 1;
        }
        Ok(())
    }

    /// Rebuilds registry state from a snapshot manifest. Objects are
    /// verified against their content address as they are read; one
    /// whose bytes do not hash back is quarantined and skipped rather
    /// than failing the whole restore — the WAL tail may rebuild it
    /// ([`Engine::heal_after_replay`]), and until something does, reads
    /// that resolve to it answer `data_corrupted`.
    fn restore_snapshot(&self, store: &Store, manifest: &Manifest) -> std::io::Result<()> {
        for snap_case in &manifest.cases {
            // Objects park in the shard that owns the case's name; the
            // shard lock is dropped around each disk read + verify.
            let shard = self.registry(&snap_case.name);
            for record in &snap_case.history {
                if lock_unpoisoned(shard).objects.contains_key(&record.hash) {
                    continue;
                }
                match verify_object(store, record.hash) {
                    Ok(case) => {
                        let packed = PackedCase::pack(&case);
                        lock_unpoisoned(shard).objects.insert(record.hash, packed);
                    }
                    Err(reason) => self.quarantine(store, record.hash, &reason),
                }
            }
            // The name serves only if its **newest** version survived —
            // presenting an older version as current would silently
            // roll acked state back. A corrupt current quarantines the
            // whole name (`data_corrupted` on access) until WAL replay
            // or a fresh `load` re-establishes it; corrupt *historical*
            // versions leave the name serving and fail only time-travel
            // reads that resolve to them.
            let last = *snap_case.history.last().expect("manifest history is never empty");
            let mut registry = lock_unpoisoned(shard);
            if let Some(case) = registry.objects.get(&last.hash).cloned() {
                registry.cases.insert(
                    snap_case.name.clone(),
                    NamedCase {
                        current: CaseEntry { case, version: last.version, hash: last.hash },
                        history: snap_case.history.clone(),
                    },
                );
            } else {
                drop(registry);
                lock_unpoisoned(&self.corrupt).names.insert(snap_case.name.clone());
            }
        }
        Ok(())
    }

    /// Pulls one object off the store and quarantines it: the damaged
    /// bytes move to `quarantine/` (kept for forensics, out of the
    /// serving path) and the health counters record the detection.
    fn quarantine(&self, store: &Store, hash: u64, reason: &str) {
        eprintln!(
            "depcase-service: object {} is corrupt ({reason}); quarantined",
            format_hash(hash)
        );
        let moved = store.quarantine_object(hash).is_ok();
        lock_unpoisoned(&self.corrupt).hashes.insert(hash);
        let mut stats = lock_unpoisoned(&self.stats);
        let health = stats.storage_health_mut();
        health.corrupt_detected += 1;
        health.quarantined += u64::from(moved);
    }

    /// Re-applies one WAL record to the registry. Edits replay against
    /// the logged **base** hash — the exact stored state the action was
    /// originally applied to — so recovery is deterministic even when
    /// the live run interleaved concurrent edits; the logged result
    /// hash then double-checks that replay reproduced the same case.
    fn replay_record(&self, record: &WalRecord) -> Result<(), String> {
        let seq = record.seq;
        let case = match &record.op {
            WalOp::Load { doc } => {
                Case::from_value(doc).map_err(|e| format!("replaying load #{seq}: {e}"))?
            }
            WalOp::Edit { base_hash, action } => {
                // The base committed under the same name, so it parked
                // in this name's shard.
                let base = lock_unpoisoned(self.registry(&record.name))
                    .objects
                    .get(base_hash)
                    .cloned()
                    .ok_or_else(|| {
                        format!(
                            "replaying edit #{seq}: base object {} is missing",
                            format_hash(*base_hash)
                        )
                    })?
                    .unpack()
                    .map_err(|e| format!("replaying edit #{seq}: {e}"))?;
                let mut session =
                    Incremental::new(base).map_err(|e| format!("replaying edit #{seq}: {e}"))?;
                apply_action(&mut session, action)
                    .map_err(|e| format!("replaying edit #{seq}: {}", e.message))?;
                session.case().clone()
            }
        };
        if case.content_hash() != record.hash {
            return Err(format!(
                "replaying record #{seq} produced hash {} but the log says {}",
                format_hash(case.content_hash()),
                format_hash(record.hash)
            ));
        }
        let timestamps =
            VersionRecord { version: record.version, hash: record.hash, ts_ms: record.ts_ms };
        lock_unpoisoned(self.registry(&record.name)).commit(
            &record.name,
            PackedCase::pack(&case),
            timestamps,
        );
        Ok(())
    }

    /// Handles one parsed request, recording latency and error counters.
    ///
    /// # Errors
    ///
    /// [`WireError`] carrying the stable wire code for the failure.
    pub fn handle(&self, request: &Request) -> Result<Value, WireError> {
        self.handle_deadline(request, None)
    }

    /// Like [`Engine::handle`], but fails with `deadline_exceeded` at
    /// the next pipeline-stage boundary (or, for `mc`, the next sample
    /// chunk) once `deadline` passes.
    ///
    /// # Errors
    ///
    /// [`WireError`] carrying the stable wire code for the failure.
    pub fn handle_deadline(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let started = Instant::now();
        let result = self.dispatch(request, deadline);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut stats = lock_unpoisoned(&self.stats);
        stats.record(request.op_name(), elapsed_us, result.is_err());
        if matches!(&result, Err(e) if e.code == ErrorCode::DeadlineExceeded) {
            stats.note(RobustnessEvent::DeadlineExceeded);
        }
        result
    }

    /// Counts one fault-tolerance event (panic, respawn, shed request…)
    /// in the stats the `stats` op and the shutdown dump report.
    pub fn note(&self, event: RobustnessEvent) {
        lock_unpoisoned(&self.stats).note(event);
    }

    /// Counts one rejected request (`overloaded` / `request_too_large`)
    /// along with how long the server took to answer the rejection, so
    /// shed traffic shows up in a latency histogram instead of
    /// disappearing from p99 exactly when the service is saturated.
    pub fn note_rejection(&self, event: RobustnessEvent, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        lock_unpoisoned(&self.stats).note_rejection(event, us);
    }

    /// Snapshot of the fault-tolerance counters (for tests and benches).
    #[must_use]
    pub fn robustness(&self) -> RobustnessCounters {
        lock_unpoisoned(&self.stats).robustness()
    }

    /// Snapshot of the durability counters (for tests and benches).
    #[must_use]
    pub fn durability_counters(&self) -> crate::stats::DurabilityCounters {
        lock_unpoisoned(&self.stats).durability()
    }

    /// Snapshot of the storage-health counters (for tests and benches).
    #[must_use]
    pub fn storage_health(&self) -> crate::stats::StorageHealthCounters {
        lock_unpoisoned(&self.stats).storage_health()
    }

    /// True while the engine is refusing mutations with `read_only`
    /// (the WAL cannot take appends). Reads keep being served.
    #[must_use]
    pub fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    fn dispatch(&self, request: &Request, deadline: Option<Instant>) -> Result<Value, WireError> {
        check_deadline(deadline)?;
        match request {
            Request::Load { name, case } => self.load(name, case),
            Request::Eval { name, at } => self.eval(name, at.as_ref(), deadline),
            Request::History { name } => self.history(name),
            Request::Edit { name, action } => self.edit(name, action, deadline),
            Request::Rank { name } => self.rank(name, deadline),
            Request::Mc { name, samples, seed, threads } => {
                self.mc(name, *samples, *seed, *threads, deadline)
            }
            Request::Bands { name, pfd_bound, mode } => {
                self.bands(name, *pfd_bound, mode.to_lib(), deadline)
            }
            Request::Stats | Request::Shutdown => Ok(self.stats_value()),
            Request::Trace { limit } => Ok(self.telemetry.trace_value(*limit)),
            Request::Metrics { prometheus } => Ok(self.metrics_value(*prometheus)),
            Request::Scrub => self.scrub(),
            Request::Batch { items } => self.batch(items, deadline),
        }
    }

    /// Requests answered by joining another request's identical
    /// in-flight Monte-Carlo run (for tests and the bench harness).
    #[must_use]
    pub fn coalesced_joins(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// The current stats snapshot as a wire value (also the `shutdown`
    /// response body, so a final dump always reaches the client).
    #[must_use]
    pub fn stats_value(&self) -> Value {
        let (counters, entries, capacity) = self.cache_totals();
        let mut value = lock_unpoisoned(&self.stats).to_value(counters, entries, capacity);
        if let Value::Object(fields) = &mut value {
            fields.push(("shards".to_string(), self.shards_value()));
            fields.push(("memo_store".to_string(), self.memo_value()));
            fields.push(("build".to_string(), self.build_value()));
        }
        value
    }

    /// The `stats` response's `shards` block: per-shard registry and
    /// cache occupancy, collected one shard at a time — assembling this
    /// snapshot never stops the other shards from serving.
    fn shards_value(&self) -> Value {
        let per_shard: Vec<Value> = (0..self.registries.len())
            .map(|i| {
                let (cases, objects) = {
                    let registry = lock_unpoisoned(&self.registries[i]);
                    (registry.cases.len() as u64, registry.objects.len() as u64)
                };
                let (counters, entries, capacity) = {
                    let cache = lock_unpoisoned(&self.caches[i]);
                    (cache.counters(), cache.len() as u64, cache.capacity() as u64)
                };
                Value::Object(vec![
                    ("shard".to_string(), Value::U64(i as u64)),
                    ("cases".to_string(), Value::U64(cases)),
                    ("objects".to_string(), Value::U64(objects)),
                    ("cache_entries".to_string(), Value::U64(entries)),
                    ("cache_capacity".to_string(), Value::U64(capacity)),
                    ("cache_hits".to_string(), Value::U64(counters.hits)),
                    ("cache_misses".to_string(), Value::U64(counters.misses)),
                    ("cache_evictions".to_string(), Value::U64(counters.evictions)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.registries.len() as u64)),
            ("per_shard".to_string(), Value::Array(per_shard)),
        ])
    }

    /// The `stats` response's `memo_store` block: the global
    /// content-addressed result store's counters, or `enabled: false`.
    fn memo_value(&self) -> Value {
        match self.memo_stats() {
            None => Value::Object(vec![("enabled".to_string(), Value::Bool(false))]),
            Some(s) => {
                let lookups = s.hits + s.misses;
                let hit_rate = if lookups == 0 { 0.0 } else { s.hits as f64 / lookups as f64 };
                Value::Object(vec![
                    ("enabled".to_string(), Value::Bool(true)),
                    ("entries".to_string(), Value::U64(s.entries)),
                    ("capacity".to_string(), Value::U64(s.capacity)),
                    ("hits".to_string(), Value::U64(s.hits)),
                    ("misses".to_string(), Value::U64(s.misses)),
                    ("insertions".to_string(), Value::U64(s.insertions)),
                    ("evictions".to_string(), Value::U64(s.evictions)),
                    ("hit_rate".to_string(), Value::F64(hit_rate)),
                ])
            }
        }
    }

    /// The `stats` response's `build` block: what is running, speaking
    /// which schema, over which transport, for how long.
    fn build_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::Str(env!("CARGO_PKG_VERSION").to_string())),
            (
                "case_schema_version".to_string(),
                Value::U64(depcase::assurance::CASE_SCHEMA_VERSION),
            ),
            ("uptime_seconds".to_string(), Value::U64(self.telemetry.uptime_seconds())),
            ("transport".to_string(), Value::Str(self.telemetry.transport())),
        ])
    }

    /// The `metrics` op: assembles the unified registry from the stats
    /// snapshot, the cache counters, and the telemetry decomposition,
    /// rendered as JSON or (`prometheus: true`) wrapped text exposition.
    fn metrics_value(&self, prometheus: bool) -> Value {
        let mut reg = MetricsRegistry::new();
        reg.gauge(
            "depcase_build_info",
            "Build metadata carried as labels; value is always 1",
            &[
                ("version", env!("CARGO_PKG_VERSION").to_string()),
                ("case_schema_version", depcase::assurance::CASE_SCHEMA_VERSION.to_string()),
                ("transport", self.telemetry.transport()),
            ],
            1.0,
        );
        {
            let (counters, entries, capacity) = self.cache_totals();
            reg.counter(
                "depcase_plan_cache_hits_total",
                "Plan-cache lookups that hit",
                &[],
                counters.hits,
            );
            reg.counter(
                "depcase_plan_cache_misses_total",
                "Plan-cache lookups that missed",
                &[],
                counters.misses,
            );
            reg.counter(
                "depcase_plan_cache_evictions_total",
                "Compiled cases displaced by capacity",
                &[],
                counters.evictions,
            );
            reg.gauge(
                "depcase_plan_cache_entries",
                "Compiled cases currently cached",
                &[],
                entries as f64,
            );
            reg.gauge("depcase_plan_cache_capacity", "Plan-cache capacity", &[], capacity as f64);
        }
        reg.counter(
            "depcase_mc_coalesced_joins_total",
            "Monte-Carlo requests answered by joining an identical in-flight run",
            &[],
            self.coalesced.load(Ordering::Relaxed),
        );
        reg.gauge(
            "depcase_registry_shards",
            "Registry/plan-cache shard count",
            &[],
            self.registries.len() as f64,
        );
        if let Some(s) = self.memo_stats() {
            reg.counter("depcase_memo_store_hits_total", "Global memo store hits", &[], s.hits);
            reg.counter(
                "depcase_memo_store_misses_total",
                "Global memo store misses",
                &[],
                s.misses,
            );
            reg.counter(
                "depcase_memo_store_insertions_total",
                "Global memo store insertions",
                &[],
                s.insertions,
            );
            reg.counter(
                "depcase_memo_store_evictions_total",
                "Global memo store second-chance evictions",
                &[],
                s.evictions,
            );
            reg.gauge(
                "depcase_memo_store_entries",
                "Global memo store live entries",
                &[],
                s.entries as f64,
            );
            reg.gauge(
                "depcase_memo_store_capacity",
                "Global memo store capacity",
                &[],
                s.capacity as f64,
            );
        }
        lock_unpoisoned(&self.stats).collect_metrics(&mut reg);
        self.telemetry.collect_metrics(&mut reg);
        if prometheus {
            Value::Object(vec![("text".to_string(), Value::Str(reg.prometheus_text()))])
        } else {
            reg.to_value()
        }
    }

    /// Aggregated cache counters across every shard (for tests and the
    /// bench harness).
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache_totals().0
    }

    /// Commits one mutation: assigns the next version, writes the WAL
    /// record ahead of the ack (durable engines), updates the registry,
    /// and takes a periodic snapshot when one is due.
    ///
    /// The durability mutex is held for the whole commit — version
    /// assignment, append, registry update — so WAL sequence order and
    /// registry commit order are the same order **across every shard**,
    /// which is what makes replay deterministic: sharding stripes the
    /// read path, never the commit order. The shard lock itself is only
    /// taken for the brief map updates, so readers (`eval`, `history`,
    /// …) never wait on an fsync.
    fn commit_mutation(
        &self,
        name: &str,
        case: PackedCase,
        hash: u64,
        op: WalOp,
    ) -> Result<u64, WireError> {
        let mut durability = lock_unpoisoned(&self.durability);
        let version = {
            let registry = lock_unpoisoned(self.registry(name));
            registry.cases.get(name).map_or(1, |named| named.current.version + 1)
        };
        let ts_ms = now_ms();
        if let Some(d) = durability.as_mut() {
            let record =
                WalRecord { seq: d.next_seq, ts_ms, name: name.to_string(), version, hash, op };
            // Write-ahead discipline: if this append (or its fsync)
            // fails, the WAL rolls the partial bytes back, the registry
            // is left untouched — never acked, never applied — and the
            // engine flips read-only: this mutation and every following
            // one answer `read_only` + `retry_after_ms` while evals
            // keep serving from memory. Each attempt still runs the
            // append, so the first one that lands (space freed, fault
            // window over) clears the flag by itself.
            match d.wal.append(&record) {
                Ok(synced) => {
                    d.next_seq += 1;
                    d.since_snapshot += 1;
                    let mut stats = lock_unpoisoned(&self.stats);
                    if self.read_only.swap(false, Ordering::Relaxed) {
                        let health = stats.storage_health_mut();
                        health.read_only = false;
                        health.read_only_exited += 1;
                    }
                    let counters = stats.durability_mut();
                    counters.records_appended += 1;
                    counters.fsyncs += u64::from(synced);
                }
                Err(e) => {
                    let mut stats = lock_unpoisoned(&self.stats);
                    let health = stats.storage_health_mut();
                    health.append_failures += 1;
                    health.read_only = true;
                    if !self.read_only.swap(true, Ordering::Relaxed) {
                        health.read_only_entered += 1;
                    }
                    return Err(WireError::new(
                        ErrorCode::ReadOnly,
                        format!(
                            "wal append failed ({e}); serving reads only until appends succeed"
                        ),
                    )
                    .with_retry_after(READ_ONLY_RETRY_MS));
                }
            }
        }
        lock_unpoisoned(self.registry(name)).commit(
            name,
            case,
            VersionRecord { version, hash, ts_ms },
        );
        // A committed `load` fully re-establishes a quarantined name
        // from the wire: the fresh state lifts the quarantine.
        lock_unpoisoned(&self.corrupt).names.remove(name);
        if let Some(d) = durability.as_mut() {
            if d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every {
                if let Err(e) = telemetry::with_span("snapshot_write", || self.write_snapshot(d)) {
                    // The mutation is already durable in the WAL; a
                    // failed snapshot costs replay time, not data.
                    eprintln!("depcase-service: snapshot failed (will retry later): {e}");
                }
            }
        }
        Ok(version)
    }

    /// Writes a snapshot covering everything committed so far, then
    /// truncates the WAL behind it (see [`crate::snapshot`] for the
    /// crash-ordering argument).
    fn write_snapshot(&self, d: &mut Durability) -> std::io::Result<()> {
        // Shard state is collected one shard at a time — the snapshot
        // is still consistent because the caller holds the durability
        // mutex, which every mutation commits under, so no shard can
        // change between these reads. Objects committed under several
        // names may park in several shards; the seen-set dedups them.
        let mut cases: Vec<ManifestCase> = Vec::new();
        let mut missing: Vec<(u64, PackedCase)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for shard in &self.registries {
            let registry = lock_unpoisoned(shard);
            cases.extend(registry.cases.iter().map(|(name, named)| ManifestCase {
                name: name.clone(),
                history: named.history.clone(),
            }));
            missing.extend(
                registry
                    .objects
                    .iter()
                    .filter(|(hash, _)| seen.insert(**hash) && !d.store.has_object(**hash))
                    .map(|(hash, packed)| (*hash, packed.clone())),
            );
        }
        cases.sort_by(|a, b| a.name.cmp(&b.name));
        let manifest = Manifest { seq: d.next_seq - 1, cases };
        // Unpacking and object writes run outside every shard lock;
        // only already-committed (immutable) objects are touched.
        for (hash, packed) in missing {
            let doc = packed
                .doc_value()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            d.store.write_object(hash, &doc)?;
        }
        d.store.write_manifest(&manifest)?;
        d.wal.truncate()?;
        d.since_snapshot = 0;
        lock_unpoisoned(&self.stats).durability_mut().snapshots_written += 1;
        Ok(())
    }

    fn load(&self, name: &str, doc: &Value) -> Result<Value, WireError> {
        let case = Case::from_value(doc).map_err(|e| WireError::new(ErrorCode::BadCase, e))?;
        // Reject unevaluable cases at the door rather than on first use;
        // compiling also warms the plan cache for the expected follow-up.
        let compiled = self.compile_case(&case)?;
        let hash = case.content_hash();
        let nodes = case.iter().count();
        lock_unpoisoned(self.cache(hash)).insert(hash, Arc::new(compiled));
        let version = self.commit_mutation(
            name,
            PackedCase::pack(&case),
            hash,
            WalOp::Load { doc: doc.clone() },
        )?;
        Ok(Value::Object(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("version".to_string(), Value::U64(version)),
            ("hash".to_string(), Value::Str(format_hash(hash))),
            ("nodes".to_string(), Value::U64(nodes as u64)),
        ]))
    }

    fn lookup(&self, name: &str) -> Result<CaseEntry, WireError> {
        self.lookup_at(name, None)
    }

    /// Resolves a name to a case version: the current one, or — for
    /// time-travel reads — the history entry named by `version` /
    /// `at_hash`. Every historical hash has its object parked in the
    /// registry, so resolution is two map lookups.
    fn lookup_at(&self, name: &str, at: Option<&EvalAt>) -> Result<CaseEntry, WireError> {
        self.check_not_quarantined(name)?;
        let registry = lock_unpoisoned(self.registry(name));
        let named = registry.cases.get(name).ok_or_else(|| {
            WireError::new(ErrorCode::UnknownCase, format!("no case named `{name}` is loaded"))
        })?;
        let record = match at {
            None => return Ok(named.current.clone()),
            Some(EvalAt::Version(v)) => {
                named.history.iter().find(|r| r.version == *v).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::NoSuchVersion,
                        format!("case `{name}` has no version {v}"),
                    )
                })?
            }
            // Most recent version carrying that content (an edited-back
            // case owns its hash at several versions).
            Some(EvalAt::Hash(h)) => {
                named.history.iter().rev().find(|r| r.hash == *h).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::NoSuchVersion,
                        format!("case `{name}` has no version with hash {}", format_hash(*h)),
                    )
                })?
            }
        };
        // Almost always parked; the exception is a version whose stored
        // object failed verification at recovery and was quarantined —
        // that version answers `data_corrupted`, never stale bytes.
        let case = registry.objects.get(&record.hash).cloned().ok_or_else(|| {
            WireError::new(
                ErrorCode::DataCorrupted,
                format!(
                    "version {} of case `{name}` (object {}) is quarantined as corrupt",
                    record.version,
                    format_hash(record.hash)
                ),
            )
        })?;
        Ok(CaseEntry { case, version: record.version, hash: record.hash })
    }

    /// Fails with `data_corrupted` when a name's recovered state could
    /// not be reconstructed faithfully (every stored version failed
    /// verification, or a WAL record for it would not replay). A fresh
    /// `load` under the name clears the quarantine — it re-establishes
    /// the full state from the wire.
    fn check_not_quarantined(&self, name: &str) -> Result<(), WireError> {
        if lock_unpoisoned(&self.corrupt).names.contains(name) {
            return Err(WireError::new(
                ErrorCode::DataCorrupted,
                format!(
                    "case `{name}` is quarantined: its stored state failed verification \
                     and could not be repaired; re-load it to restore service"
                ),
            ));
        }
        Ok(())
    }

    /// Fetches the compiled artefacts for an entry, compiling outside
    /// the lock on a miss. Two workers racing on the same cold case may
    /// both compile; the cache keeps whichever inserts last — identical
    /// content, so correctness is unaffected.
    fn compiled(&self, entry: &CaseEntry) -> Result<Arc<CompiledCase>, WireError> {
        if let Some(hit) = lock_unpoisoned(self.cache(entry.hash)).get(entry.hash) {
            return Ok(hit);
        }
        let compiled = Arc::new(self.compile_case(&entry.case.unpack_wire()?)?);
        lock_unpoisoned(self.cache(entry.hash)).insert(entry.hash, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Compiles one case into its plan/report/session artefacts,
    /// memoising subtree results through the global store when one is
    /// enabled — bit-identical to a private-memo compile either way —
    /// and recording the recompute/reuse split in the compile counters.
    fn compile_case(&self, case: &Case) -> Result<CompiledCase, WireError> {
        telemetry::with_span("plan_compile", || {
            let session = match &self.memo {
                Some(store) => Incremental::with_memo_traced(
                    case.clone(),
                    Arc::clone(store) as Arc<dyn MemoStore>,
                    &TlsTracer,
                ),
                None => Incremental::new_traced(case.clone(), &TlsTracer),
            }
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
            let totals = session.totals();
            lock_unpoisoned(&self.stats).note_compile(totals.nodes_recomputed, totals.nodes_reused);
            Ok(CompiledCase { plan: session.plan().clone(), report: session.report(), session })
        })
    }

    fn eval(
        &self,
        name: &str,
        at: Option<&EvalAt>,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup_at(name, at)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        Ok(eval_value(&entry, compiled.session.case(), &compiled.report))
    }

    /// Dispatches a `batch` request: every item is answered in wire
    /// order, and the answers ride back as one `items` array.
    ///
    /// Formation rules (documented in DESIGN.md §14):
    ///
    /// - **Mutations are barriers.** `load`/`edit` items run alone, in
    ///   wire order, so the WAL sequence matches item order and later
    ///   items observe earlier mutations.
    /// - **Evals between barriers coalesce.** Items resolving to the
    ///   same case version share one answer; distinct cold cases with
    ///   the same plan shape run the struct-of-arrays batch kernel
    ///   ([`EvalPlan::propagate_batch`]) in one pass. Both paths are
    ///   bit-identical to dispatching each item alone.
    /// - **Deadlines are respected.** An item's `deadline_ms` caps its
    ///   own work (never past the envelope deadline); items carrying
    ///   their own deadline are dispatched individually, so a grouped
    ///   run only ever answers items sharing one deadline.
    ///
    /// Sub-items are *not* recorded individually in the op stats — the
    /// whole batch is one `batch` entry — but shed/reject accounting
    /// still happens per connection line in the server.
    fn batch(&self, items: &[BatchItem], deadline: Option<Instant>) -> Result<Value, WireError> {
        let started = Instant::now();
        let mut answers: Vec<Option<Response>> = items.iter().map(|_| None).collect();
        let mut i = 0;
        while i < items.len() {
            if let Ok(request) = &items[i].request {
                if is_mutation(request) {
                    let d = effective_deadline(started, deadline, items[i].deadline_ms);
                    answers[i] = Some(self.dispatch(request, d).into());
                    i += 1;
                    continue;
                }
            }
            // A span of consecutive non-mutating items (parse failures
            // included — they answer their stored error).
            let end = items[i..]
                .iter()
                .position(|item| matches!(&item.request, Ok(r) if is_mutation(r)))
                .map_or(items.len(), |n| i + n);
            self.batch_span(&items[i..end], &mut answers[i..end], deadline, started);
            i = end;
        }
        let rendered: Vec<Value> = telemetry::with_span("batch_assembly", || {
            answers
                .into_iter()
                .map(|a| a.expect("every batch item is answered").to_item_value())
                .collect()
        });
        Ok(Value::Object(vec![("items".to_string(), Value::Array(rendered))]))
    }

    /// Answers one barrier-free span: evals without their own deadline
    /// are deferred and coalesced, everything else dispatches in place.
    fn batch_span(
        &self,
        items: &[BatchItem],
        answers: &mut [Option<Response>],
        deadline: Option<Instant>,
        started: Instant,
    ) {
        let mut evals: Vec<usize> = Vec::new();
        for (idx, item) in items.iter().enumerate() {
            match &item.request {
                Err(e) => answers[idx] = Some(Response::Err(e.clone())),
                Ok(r) if item.deadline_ms.is_none() && matches!(**r, Request::Eval { .. }) => {
                    evals.push(idx);
                }
                Ok(r) => {
                    let d = effective_deadline(started, deadline, item.deadline_ms);
                    answers[idx] = Some(self.dispatch(r, d).into());
                }
            }
        }
        if !evals.is_empty() {
            self.batch_evals(items, &evals, answers, deadline);
        }
    }

    /// Coalesces a span's eval items. Items resolving to the same case
    /// version share one computed answer. Cache misses compile a bare
    /// [`EvalPlan`] each; distinct cold plans sharing one shape then
    /// propagate together through the struct-of-arrays kernel, and a
    /// shape on its own takes the ordinary cache-filling path.
    fn batch_evals(
        &self,
        items: &[BatchItem],
        evals: &[usize],
        answers: &mut [Option<Response>],
        deadline: Option<Instant>,
    ) {
        // Resolve every item; a failed lookup answers just that item.
        // Wanting the same (version, hash) twice dedups to one entry.
        let mut wanted: Vec<(CaseEntry, Vec<usize>)> = Vec::new();
        for &idx in evals {
            let Ok(request) = &items[idx].request else { continue };
            let Request::Eval { name, at } = &**request else { continue };
            match self.lookup_at(name, at.as_ref()) {
                Err(e) => answers[idx] = Some(Response::Err(e)),
                Ok(entry) => match wanted
                    .iter_mut()
                    .find(|(w, _)| w.hash == entry.hash && w.version == entry.version)
                {
                    Some((_, idxs)) => idxs.push(idx),
                    None => wanted.push((entry, vec![idx])),
                },
            }
        }
        let fill = |answers: &mut [Option<Response>], idxs: &[usize], response: Response| {
            for &i in idxs {
                answers[i] = Some(response.clone());
            }
        };
        if let Err(e) = check_deadline(deadline) {
            for (_, idxs) in &wanted {
                fill(answers, idxs, Response::Err(e.clone()));
            }
            return;
        }
        // Cache hits answer from the memoised report; misses unpack
        // their registry copy and queue for the wide kernel.
        let mut cold: Vec<(CaseEntry, Case, Vec<usize>, EvalPlan)> = Vec::new();
        for (entry, idxs) in wanted {
            if let Some(hit) = lock_unpoisoned(self.cache(entry.hash)).get(entry.hash) {
                let value = eval_value(&entry, hit.session.case(), &hit.report);
                fill(answers, &idxs, Response::Ok(value));
            } else {
                let unpacked = entry.case.unpack_wire().and_then(|case| {
                    EvalPlan::compile(&case)
                        .map(|plan| (case, plan))
                        .map_err(|e| WireError::from(depcase::Error::from(e)))
                });
                match unpacked {
                    Ok((case, plan)) => cold.push((entry, case, idxs, plan)),
                    Err(err) => fill(answers, &idxs, Response::Err(err)),
                }
            }
        }
        // Group the cold plans by shape (quadratic over at most
        // MAX_BATCH_ITEMS distinct cases).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for p in 0..cold.len() {
            match groups.iter_mut().find(|g| cold[g[0]].3.same_shape(&cold[p].3)) {
                Some(g) => g.push(p),
                None => groups.push(vec![p]),
            }
        }
        for group in groups {
            if let Err(e) = check_deadline(deadline) {
                for &p in &group {
                    fill(answers, &cold[p].2, Response::Err(e.clone()));
                }
                continue;
            }
            if let [only] = group[..] {
                // A lone shape gains nothing from the batch kernel; the
                // ordinary path also warms the plan cache for follow-ups.
                let (entry, _, idxs, _) = &cold[only];
                let response = self
                    .compiled(entry)
                    .map(|c| eval_value(entry, c.session.case(), &c.report))
                    .into();
                fill(answers, idxs, response);
                continue;
            }
            let plans: Vec<&EvalPlan> = group.iter().map(|&p| &cold[p].3).collect();
            match EvalPlan::propagate_batch_traced(&plans, &TlsTracer) {
                Ok(reports) => {
                    for (&p, report) in group.iter().zip(&reports) {
                        let (entry, case, idxs, _) = &cold[p];
                        fill(answers, idxs, Response::Ok(eval_value(entry, case, report)));
                    }
                }
                Err(e) => {
                    let err = WireError::from(depcase::Error::from(e));
                    for &p in &group {
                        fill(answers, &cold[p].2, Response::Err(err.clone()));
                    }
                }
            }
        }
    }

    /// Answers the full version history of a named case: one row per
    /// version with its content hash and commit timestamp, oldest
    /// first — the audit trail behind time-travel `eval` and undo.
    fn history(&self, name: &str) -> Result<Value, WireError> {
        self.check_not_quarantined(name)?;
        let registry = lock_unpoisoned(self.registry(name));
        let named = registry.cases.get(name).ok_or_else(|| {
            WireError::new(ErrorCode::UnknownCase, format!("no case named `{name}` is loaded"))
        })?;
        let versions = named
            .history
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("version".to_string(), Value::U64(r.version)),
                    ("hash".to_string(), Value::Str(format_hash(r.hash))),
                    ("ts_ms".to_string(), Value::U64(r.ts_ms)),
                ])
            })
            .collect();
        Ok(Value::Object(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("case".to_string(), Value::Str(named.current.case.title.to_string())),
            ("current_version".to_string(), Value::U64(named.current.version)),
            ("current_hash".to_string(), Value::Str(format_hash(named.current.hash))),
            ("versions".to_string(), Value::Array(versions)),
        ]))
    }

    /// Applies one mutation to a loaded case through the cached
    /// incremental session: only the edited node's ancestor spine runs
    /// the combination kernel, everything else is answered from the
    /// subtree-hash memo. The edited case replaces the registry entry
    /// under a bumped version, and the new plan-plus-memo artefacts join
    /// the cache under the new content hash — the pre-edit entry stays
    /// cached *and* in the version history, so editing back to a
    /// previous state is a pure cache hit and every prior state stays
    /// evaluable.
    fn edit(
        &self,
        name: &str,
        action: &EditAction,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let mut session = compiled.session.clone();
        let delta = apply_action(&mut session, action)?;
        let hash = session.case_hash();
        let nodes = session.case().len();
        let packed = PackedCase::pack(session.case());
        let compiled = Arc::new(CompiledCase {
            plan: session.plan().clone(),
            report: session.report(),
            session,
        });
        lock_unpoisoned(self.cache(hash)).insert(hash, Arc::clone(&compiled));
        let version = self.commit_mutation(
            name,
            packed,
            hash,
            WalOp::Edit { base_hash: entry.hash, action: action.clone() },
        )?;
        lock_unpoisoned(&self.stats).note_edit(delta.nodes_recomputed, delta.nodes_reused);
        let mut fields = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("version".to_string(), Value::U64(version)),
            ("hash".to_string(), Value::Str(format_hash(hash))),
            ("nodes".to_string(), Value::U64(nodes as u64)),
        ];
        if let Some(top) = compiled.report.top() {
            fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
        }
        fields.push(("nodes_recomputed".to_string(), Value::U64(delta.nodes_recomputed)));
        fields.push(("nodes_reused".to_string(), Value::U64(delta.nodes_reused)));
        Ok(Value::Object(fields))
    }

    fn rank(&self, name: &str, deadline: Option<Instant>) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        // Warm/consult the cache so repeated ranking of an unchanged
        // case is counted like any other cached evaluation; the
        // session's graph also saves unpacking the registry copy.
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let ranking = importance::birnbaum_importance(compiled.session.case())
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
        let rows = ranking
            .into_iter()
            .map(|li| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(li.name)),
                    ("confidence".to_string(), Value::F64(li.confidence)),
                    ("birnbaum".to_string(), Value::F64(li.birnbaum)),
                    ("gain_if_certain".to_string(), Value::F64(li.gain_if_certain)),
                ])
            })
            .collect();
        let mut fields = case_header(&entry);
        fields.push(("evidence".to_string(), Value::Array(rows)));
        Ok(Value::Object(fields))
    }

    /// Monte-Carlo sampling with single-flight coalescing: a request
    /// arriving while an identical run (same case version and content
    /// hash, same `samples` and `seed` — any `threads`, since chunked
    /// sampling is bit-identical across thread counts) is already
    /// in flight blocks on that run and shares its bytes instead of
    /// re-sampling. A follower whose own deadline expires first fails
    /// with `deadline_exceeded`; a follower whose *leader* ran out of
    /// budget retries with its own (possibly larger) budget.
    fn mc(
        &self,
        name: &str,
        samples: u32,
        seed: u64,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        let key = McKey {
            name: name.to_string(),
            version: entry.version,
            hash: entry.hash,
            samples,
            seed,
        };
        loop {
            check_deadline(deadline)?;
            let (flight, leader) = {
                let mut flights = lock_unpoisoned(&self.mc_flights);
                match flights.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f: Flight = Arc::new((Mutex::new(FlightSlot::Running), Condvar::new()));
                        flights.insert(key.clone(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                let mut guard = FlightGuard {
                    flights: &self.mc_flights,
                    key: &key,
                    flight: &flight,
                    outcome: None,
                };
                let result = self.run_mc(&entry, &compiled, samples, seed, threads, deadline);
                guard.outcome = Some(result.clone());
                drop(guard);
                return result;
            }
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            match wait_for_flight(&flight, deadline) {
                Some(Ok(value)) => return Ok(value),
                // The leader exhausted *its* budget, not ours: loop and
                // run (or join) a fresh flight under our own deadline.
                Some(Err(e)) if e.code == ErrorCode::DeadlineExceeded => {}
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(WireError::new(
                        ErrorCode::DeadlineExceeded,
                        "request deadline exceeded while waiting for an identical in-flight run",
                    ))
                }
            }
        }
    }

    fn run_mc(
        &self,
        entry: &CaseEntry,
        compiled: &CompiledCase,
        samples: u32,
        seed: u64,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        check_deadline(deadline)?;
        let runner = MonteCarlo::new(samples).seed(seed).threads(threads);
        // With a deadline, the run polls it between sample chunks, so
        // `deadline_exceeded` arrives within one chunk of the budget
        // instead of after the full sampling time. A completed run is
        // bit-identical to the unpolled path.
        let report = match deadline {
            None => runner
                .run_plan_traced(&compiled.plan, &TlsTracer)
                .map_err(|e| WireError::from(depcase::Error::from(e)))?,
            Some(d) => runner
                .run_plan_until_traced(&compiled.plan, &move || Instant::now() >= d, &TlsTracer)
                .map_err(|e| WireError::from(depcase::Error::from(e)))?
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::DeadlineExceeded,
                        "request deadline exceeded mid-sampling; partial results are discarded",
                    )
                })?,
        };
        let mut estimates = Vec::new();
        for (id, node) in compiled.session.case().iter() {
            if let Some(estimate) = report.estimate(id) {
                estimates.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(node.name.clone())),
                    ("estimate".to_string(), Value::F64(estimate)),
                    (
                        "half_width".to_string(),
                        Value::F64(report.half_width(id).unwrap_or(f64::NAN)),
                    ),
                ]));
            }
        }
        let mut fields = case_header(entry);
        fields.push(("samples".to_string(), Value::U64(u64::from(report.samples()))));
        fields.push(("seed".to_string(), Value::U64(seed)));
        fields.push(("estimates".to_string(), Value::Array(estimates)));
        Ok(Value::Object(fields))
    }

    fn bands(
        &self,
        name: &str,
        pfd_bound: f64,
        mode: depcase::sil::DemandMode,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let top = compiled.report.top().ok_or_else(|| {
            WireError::new(ErrorCode::Case, "case has no single root goal to band")
        })?;
        // The paper's construction: confidence c in "measure < bound"
        // is the two-point worst-case belief — mass c at the bound,
        // doubt 1 − c at failure — pushed through the band table.
        let belief = TwoPoint::worst_case(pfd_bound, 1.0 - top.independent)
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
        let assessment = SilAssessment::new(&belief, mode);
        let at_least = assessment.confidences();
        let probabilities = assessment.band_probabilities();
        let rows = SilLevel::ALL
            .iter()
            .map(|level| {
                Value::Object(vec![
                    ("level".to_string(), Value::Str(level.to_string())),
                    ("at_least".to_string(), Value::F64(at_least[usize::from(level.index()) - 1])),
                    ("in_band".to_string(), Value::F64(probabilities.in_band(*level))),
                ])
            })
            .collect();
        let mut fields = case_header(&entry);
        fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
        fields.push(("pfd_bound".to_string(), Value::F64(pfd_bound)));
        fields.push((
            "mode".to_string(),
            Value::Str(
                match mode {
                    depcase::sil::DemandMode::LowDemand => "low_demand",
                    depcase::sil::DemandMode::HighDemand => "high_demand",
                }
                .to_string(),
            ),
        ));
        fields.push(("bands".to_string(), Value::Array(rows)));
        fields.push((
            "most_probable".to_string(),
            match probabilities.most_probable() {
                Some(level) => Value::Str(level.to_string()),
                None => Value::Null,
            },
        ));
        Ok(Value::Object(fields))
    }

    /// The `scrub` op: re-reads every object in the store, verifies its
    /// bytes hash back to their content address, re-serializes corrupt
    /// ones from the intact in-memory registry copy when one is
    /// reachable, and quarantines the rest.
    ///
    /// The durability mutex is re-acquired **per object**, not held for
    /// the whole walk: a scan over a hundred thousand objects must not
    /// stall every tenant's mutations for its full duration. Mutations
    /// interleaving mid-scrub are benign — a commit only adds objects
    /// (which this pass simply does not check; the next scrub will) and
    /// content-addressed bytes never change in place, so each
    /// per-object verdict stays valid regardless of interleaving.
    fn scrub(&self) -> Result<Value, WireError> {
        let hashes = {
            let durability = lock_unpoisoned(&self.durability);
            let Some(d) = durability.as_ref() else {
                return Err(WireError::new(
                    ErrorCode::BadRequest,
                    "scrub requires a durable engine (start with --data-dir)",
                ));
            };
            d.store.object_hashes().map_err(|e| {
                WireError::new(ErrorCode::StorageError, format!("scrub: listing objects: {e}"))
            })?
        };
        let (mut corrupt_found, mut repaired, mut quarantined_now) = (0u64, 0u64, 0u64);
        let checked = hashes.len() as u64;
        for hash in hashes {
            let durability = lock_unpoisoned(&self.durability);
            let Some(d) = durability.as_ref() else { break };
            let Err(reason) = verify_object(&d.store, hash) else { continue };
            corrupt_found += 1;
            // The registry's parked copy was verified when it entered
            // (load, edit, or checked restore): re-serializing it is a
            // faithful repair. With no reachable copy the damaged bytes
            // leave the serving path for `quarantine/`.
            let parked = self.parked_object(hash);
            let rewritten = parked.is_some_and(|packed| {
                packed.doc_value().is_ok_and(|doc| d.store.rewrite_object(hash, &doc).is_ok())
            });
            if rewritten {
                repaired += 1;
                lock_unpoisoned(&self.corrupt).hashes.remove(&hash);
                eprintln!(
                    "depcase-service: scrub: object {} was corrupt ({reason}); \
                     repaired from memory",
                    format_hash(hash)
                );
            } else {
                quarantined_now += u64::from(d.store.quarantine_object(hash).is_ok());
                lock_unpoisoned(&self.corrupt).hashes.insert(hash);
                eprintln!(
                    "depcase-service: scrub: object {} is corrupt ({reason}); \
                     quarantined — no intact copy to repair from",
                    format_hash(hash)
                );
            }
        }
        let read_only = {
            let mut stats = lock_unpoisoned(&self.stats);
            let health = stats.storage_health_mut();
            health.scrubs += 1;
            health.objects_checked += checked;
            health.corrupt_detected += corrupt_found;
            health.repaired_from_memory += repaired;
            health.quarantined += quarantined_now;
            health.read_only
        };
        Ok(Value::Object(vec![
            ("objects_checked".to_string(), Value::U64(checked)),
            ("corrupt_detected".to_string(), Value::U64(corrupt_found)),
            ("repaired".to_string(), Value::U64(repaired)),
            ("quarantined".to_string(), Value::U64(quarantined_now)),
            ("read_only".to_string(), Value::Bool(read_only)),
        ]))
    }
}

/// Reads one stored object and verifies its bytes hash back to their
/// content address, the store-side half of the scrub pipeline. The
/// error is a human-readable reason (unreadable, unparseable, or
/// hashing to the wrong address).
fn verify_object(store: &Store, hash: u64) -> Result<Case, String> {
    let doc = store.read_object(hash).map_err(|e| e.to_string())?;
    let case = Case::from_value(&doc).map_err(|e| e.to_string())?;
    if case.content_hash() != hash {
        return Err(format!("hashes to {}", format_hash(case.content_hash())));
    }
    Ok(case)
}

/// Applies one wire edit action to an incremental session. Shared by
/// the live `edit` path and WAL replay, so a logged action re-executes
/// through exactly the code that produced the acked response.
fn apply_action(session: &mut Incremental, action: &EditAction) -> Result<EditStats, WireError> {
    match action {
        EditAction::SetConfidence { node, confidence } => {
            let id = resolve(session.case(), node)?;
            session
                .set_confidence_traced(id, *confidence, &TlsTracer)
                .map_err(|e| WireError::from(depcase::Error::from(e)))
        }
        EditAction::AddLeaf { parent, node, statement, kind, confidence } => {
            let p = resolve(session.case(), parent)?;
            session
                .add_leaf_traced(
                    p,
                    node.clone(),
                    statement.clone().unwrap_or_default(),
                    kind.to_lib(),
                    *confidence,
                    &TlsTracer,
                )
                .map(|(_, delta)| delta)
                .map_err(|e| WireError::from(depcase::Error::from(e)))
        }
        EditAction::Retarget { parent, from, to } => {
            let p = resolve(session.case(), parent)?;
            let f = resolve(session.case(), from)?;
            let t = resolve(session.case(), to)?;
            session
                .retarget_traced(p, f, t, &TlsTracer)
                .map_err(|e| WireError::from(depcase::Error::from(e)))
        }
    }
}

/// Resolves a wire node name against a case, answering the library's
/// `case` error code for unknown names.
fn resolve(case: &Case, name: &str) -> Result<NodeId, WireError> {
    case.node_by_name(name).ok_or_else(|| {
        WireError::new(ErrorCode::Case, format!("no node named `{name}` in the case"))
    })
}

/// True for requests that commit a new case version (the batch
/// dispatcher treats these as barriers).
fn is_mutation(request: &Request) -> bool {
    matches!(request, Request::Load { .. } | Request::Edit { .. })
}

/// A batch item's own deadline: `deadline_ms` measured from the start
/// of the batch, never past the envelope deadline.
fn effective_deadline(
    started: Instant,
    envelope: Option<Instant>,
    item_ms: Option<u64>,
) -> Option<Instant> {
    let own = item_ms.and_then(|ms| started.checked_add(Duration::from_millis(ms)));
    match (envelope, own) {
        (Some(e), Some(o)) => Some(e.min(o)),
        (e, None) => e,
        (None, o) => o,
    }
}

/// The `eval` response body for one case version under one propagated
/// report. Shared by the single-request path (memoised session report)
/// and the batch path (struct-of-arrays kernel report) — both report
/// sources are bit-identical, so so is the rendered value.
fn eval_value(entry: &CaseEntry, case: &Case, report: &ConfidenceReport) -> Value {
    let mut nodes = Vec::new();
    for (id, node) in case.iter() {
        if let Some(c) = report.confidence(id) {
            nodes.push(Value::Object(vec![
                ("name".to_string(), Value::Str(node.name.clone())),
                ("kind".to_string(), Value::Str(kind_name(&node.kind).to_string())),
                ("confidence".to_string(), Value::F64(c.independent)),
                ("worst_case".to_string(), Value::F64(c.worst_case)),
                ("best_case".to_string(), Value::F64(c.best_case)),
            ]));
        }
    }
    let mut fields = case_header(entry);
    if let Some(top) = report.top() {
        fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
    }
    fields.push(("nodes".to_string(), Value::Array(nodes)));
    Value::Object(fields)
}

fn case_header(entry: &CaseEntry) -> Vec<(String, Value)> {
    vec![
        ("case".to_string(), Value::Str(entry.case.title.to_string())),
        ("version".to_string(), Value::U64(entry.version)),
        ("hash".to_string(), Value::Str(format_hash(entry.hash))),
    ]
}

fn kind_name(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Goal => "goal",
        NodeKind::Strategy(_) => "strategy",
        NodeKind::Evidence { .. } => "evidence",
        NodeKind::Assumption { .. } => "assumption",
        NodeKind::Context => "context",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase::prelude::*;

    fn demo_case_value() -> Value {
        let mut case = Case::new("demo");
        let g = case.add_goal("G", "pfd < 1e-3").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "testing", 0.95).unwrap();
        let e2 = case.add_evidence("E2", "analysis", 0.90).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        serde::Serialize::to_value(&case)
    }

    fn load_demo(engine: &Engine, name: &str) {
        engine.handle(&Request::Load { name: name.to_string(), case: demo_case_value() }).unwrap();
    }

    fn eval_current(engine: &Engine, name: &str) -> Value {
        engine.handle(&Request::Eval { name: name.to_string(), at: None }).unwrap()
    }

    fn set_confidence(engine: &Engine, name: &str, node: &str, confidence: f64) -> Value {
        engine
            .handle(&Request::Edit {
                name: name.to_string(),
                action: EditAction::SetConfidence { node: node.to_string(), confidence },
            })
            .unwrap()
    }

    fn root_bits(value: &Value) -> u64 {
        value.get("root_confidence").and_then(Value::as_f64).unwrap().to_bits()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("depcase_engine_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn load_then_eval_matches_direct_propagation() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = eval_current(&engine, "demo");
        let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        assert_eq!(root.to_bits(), direct.to_bits());
    }

    #[test]
    fn reload_bumps_version_and_unknown_case_errors() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let second =
            engine.handle(&Request::Load { name: "demo".into(), case: demo_case_value() }).unwrap();
        assert_eq!(second.get("version").and_then(Value::as_u64), Some(2));

        let err = engine.handle(&Request::Eval { name: "missing".into(), at: None }).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownCase);
    }

    #[test]
    fn second_eval_of_unchanged_case_hits_the_plan_cache() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        eval_current(&engine, "demo");
        let before = engine.cache_counters();
        eval_current(&engine, "demo");
        let after = engine.cache_counters();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn mc_through_the_engine_is_bit_identical_to_the_library() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&Request::Mc { name: "demo".into(), samples: 20_000, seed: 7, threads: 2 })
            .unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let direct = MonteCarlo::new(20_000).seed(7).threads(2).run(&case).unwrap();
        let g = case.node_by_name("G").unwrap();
        let wire_estimate = result
            .get("estimates")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some("G"))
            .and_then(|v| v.get("estimate"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(wire_estimate.to_bits(), direct.estimate(g).unwrap().to_bits());
    }

    #[test]
    fn mc_with_an_open_deadline_is_bit_identical_to_no_deadline() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let free = engine
            .handle(&Request::Mc { name: "demo".into(), samples: 20_000, seed: 7, threads: 2 })
            .unwrap();
        let open = Instant::now() + std::time::Duration::from_secs(120);
        let budgeted = engine
            .handle_deadline(
                &Request::Mc { name: "demo".into(), samples: 20_000, seed: 7, threads: 2 },
                Some(open),
            )
            .unwrap();
        let estimate = |v: &Value| {
            v.get("estimates").and_then(Value::as_array).unwrap()[0]
                .get("estimate")
                .and_then(Value::as_f64)
                .unwrap()
                .to_bits()
        };
        assert_eq!(estimate(&free), estimate(&budgeted));
    }

    #[test]
    fn mc_deadline_fires_between_sample_chunks() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        // An enormous budget that would take far longer than the
        // deadline: the chunk-level poll must cut it short.
        let spent = Instant::now() + std::time::Duration::from_millis(1);
        let started = Instant::now();
        let err = engine
            .handle_deadline(
                &Request::Mc { name: "demo".into(), samples: 500_000_000, seed: 7, threads: 2 },
                Some(spent),
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "deadline must interrupt sampling long before the full run"
        );
        assert!(engine.robustness().deadline_exceeded >= 1);
    }

    #[test]
    fn edit_set_confidence_matches_a_full_reload() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = set_confidence(&engine, "demo", "E1", 0.97);
        assert_eq!(result.get("version").and_then(Value::as_u64), Some(2));
        assert!(result.get("nodes_recomputed").and_then(Value::as_u64).unwrap() >= 1);

        // Bit-identical to mutating the case directly and propagating.
        let mut case = Case::from_value(&demo_case_value()).unwrap();
        let e1 = case.node_by_name("E1").unwrap();
        case.set_leaf_confidence(e1, 0.97).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(root.to_bits(), direct.to_bits());

        // Follow-up ops see the edited case.
        let eval = eval_current(&engine, "demo");
        let again = eval.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(again.to_bits(), direct.to_bits());
        assert_eq!(eval.get("version").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn edit_back_restores_the_original_content_hash() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let loaded = eval_current(&engine, "demo");
        let original = loaded.get("hash").and_then(Value::as_str).unwrap().to_string();
        let edited = set_confidence(&engine, "demo", "E1", 0.97);
        assert_ne!(edited.get("hash").and_then(Value::as_str).unwrap(), original);
        let undone = set_confidence(&engine, "demo", "E1", 0.95);
        assert_eq!(undone.get("hash").and_then(Value::as_str).unwrap(), original);
        assert_eq!(undone.get("version").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn history_records_every_version_and_eval_time_travels() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let v1 = eval_current(&engine, "demo");
        set_confidence(&engine, "demo", "E1", 0.97);
        set_confidence(&engine, "demo", "E2", 0.80);

        let history = engine.handle(&Request::History { name: "demo".into() }).unwrap();
        assert_eq!(history.get("current_version").and_then(Value::as_u64), Some(3));
        let versions = history.get("versions").and_then(Value::as_array).unwrap();
        assert_eq!(versions.len(), 3);
        assert_eq!(versions[0].get("version").and_then(Value::as_u64), Some(1));
        let v1_hash = versions[0].get("hash").and_then(Value::as_str).unwrap().to_string();
        assert_eq!(v1.get("hash").and_then(Value::as_str), Some(v1_hash.as_str()));

        // Time-travel by version: bit-identical to the original answer.
        let back = engine
            .handle(&Request::Eval { name: "demo".into(), at: Some(EvalAt::Version(1)) })
            .unwrap();
        assert_eq!(root_bits(&back), root_bits(&v1));
        assert_eq!(back.get("version").and_then(Value::as_u64), Some(1));

        // Time-travel by content hash answers the same state.
        let by_hash = engine
            .handle(&Request::Eval {
                name: "demo".into(),
                at: Some(EvalAt::Hash(crate::protocol::parse_hash(&v1_hash).unwrap())),
            })
            .unwrap();
        assert_eq!(root_bits(&by_hash), root_bits(&v1));

        // The current state is untouched by historical reads.
        let current = eval_current(&engine, "demo");
        assert_eq!(current.get("version").and_then(Value::as_u64), Some(3));

        // Unknown versions and hashes answer `no_such_version`.
        let err = engine
            .handle(&Request::Eval { name: "demo".into(), at: Some(EvalAt::Version(9)) })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::NoSuchVersion);
        let err = engine
            .handle(&Request::Eval { name: "demo".into(), at: Some(EvalAt::Hash(1)) })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::NoSuchVersion);
        let err = engine.handle(&Request::History { name: "missing".into() }).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownCase);
    }

    #[test]
    fn durable_engine_recovers_acked_mutations_bit_identically() {
        let dir = tmp_dir("recover");
        let config = DurabilityConfig::new(&dir);
        let (v1_bits, v3_bits, v3_hash) = {
            let engine = Engine::open(8, &config).unwrap();
            assert!(engine.is_durable());
            load_demo(&engine, "demo");
            let v1 = eval_current(&engine, "demo");
            set_confidence(&engine, "demo", "E1", 0.97);
            set_confidence(&engine, "demo", "E2", 0.80);
            let v3 = eval_current(&engine, "demo");
            let counters = engine.durability_counters();
            assert_eq!(counters.records_appended, 3);
            assert_eq!(counters.records_replayed, 0);
            (
                root_bits(&v1),
                root_bits(&v3),
                v3.get("hash").and_then(Value::as_str).unwrap().to_string(),
            )
            // Dropped without any drain/flush: recovery must work from
            // the unsynced WAL alone (single-write appends land in the
            // page cache even when the process dies).
        };

        let engine = Engine::open(8, &config).unwrap();
        let counters = engine.durability_counters();
        assert_eq!(counters.records_replayed, 3);
        assert_eq!(counters.torn_tail_recoveries, 0);
        let current = eval_current(&engine, "demo");
        assert_eq!(current.get("version").and_then(Value::as_u64), Some(3));
        assert_eq!(current.get("hash").and_then(Value::as_str), Some(v3_hash.as_str()));
        assert_eq!(root_bits(&current), v3_bits);
        // History — including timestamps — survives, and time travel
        // still answers the original bits.
        let history = engine.handle(&Request::History { name: "demo".into() }).unwrap();
        assert_eq!(history.get("versions").and_then(Value::as_array).unwrap().len(), 3);
        let back = engine
            .handle(&Request::Eval { name: "demo".into(), at: Some(EvalAt::Version(1)) })
            .unwrap();
        assert_eq!(root_bits(&back), v1_bits);
        // Mutations keep appending after recovery.
        set_confidence(&engine, "demo", "E1", 0.99);
        assert_eq!(eval_current(&engine, "demo").get("version").and_then(Value::as_u64), Some(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_truncate_the_wal_and_dedupe_objects() {
        let dir = tmp_dir("snapshot");
        let config = DurabilityConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Never,
            snapshot_every: 2,
        };
        {
            let engine = Engine::open(8, &config).unwrap();
            load_demo(&engine, "demo");
            set_confidence(&engine, "demo", "E1", 0.97);
            // 2 mutations → snapshot fired, WAL truncated.
            assert_eq!(engine.durability_counters().snapshots_written, 1);
            // Editing back re-reaches version 1's content hash: the
            // object store must not grow a duplicate for it.
            set_confidence(&engine, "demo", "E1", 0.95);
            set_confidence(&engine, "demo", "E1", 0.97);
            assert_eq!(engine.durability_counters().snapshots_written, 2);
        }
        // Only two distinct contents ever existed → two objects on disk.
        let objects = std::fs::read_dir(dir.join("objects"))
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().extension().is_some_and(|ext| ext == "json"))
            .count();
        assert_eq!(objects, 2, "content-addressed store must deduplicate");

        // Restart: everything lives in the snapshot, nothing in the WAL.
        let engine = Engine::open(8, &config).unwrap();
        assert_eq!(engine.durability_counters().records_replayed, 0);
        let history = engine.handle(&Request::History { name: "demo".into() }).unwrap();
        assert_eq!(history.get("versions").and_then(Value::as_array).unwrap().len(), 4);
        assert_eq!(eval_current(&engine, "demo").get("version").and_then(Value::as_u64), Some(4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edit_add_leaf_and_retarget_reshape_the_case() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let grown = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::AddLeaf {
                    parent: "G".into(),
                    node: "E3".into(),
                    statement: Some("field data".into()),
                    kind: crate::protocol::WireLeafKind::Evidence,
                    confidence: 0.85,
                },
            })
            .unwrap();
        assert_eq!(grown.get("nodes").and_then(Value::as_u64), Some(5));

        let retargeted = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::Retarget {
                    parent: "S".into(),
                    from: "E2".into(),
                    to: "E3".into(),
                },
            })
            .unwrap();
        assert_eq!(retargeted.get("version").and_then(Value::as_u64), Some(3));

        // The service's answer matches rebuilding the same case by hand.
        let mut case = Case::from_value(&demo_case_value()).unwrap();
        let g = case.node_by_name("G").unwrap();
        let s = case.node_by_name("S").unwrap();
        let e3 = case.add_evidence("E3", "field data", 0.85).unwrap();
        case.support(g, e3).unwrap();
        let e2 = case.node_by_name("E2").unwrap();
        case.retarget_support(s, e2, e3).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        let root = retargeted.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(root.to_bits(), direct.to_bits());
    }

    #[test]
    fn structural_edits_replay_bit_identically_through_the_wal() {
        let dir = tmp_dir("structural");
        let config = DurabilityConfig::new(&dir);
        let expected = {
            let engine = Engine::open(8, &config).unwrap();
            load_demo(&engine, "demo");
            engine
                .handle(&Request::Edit {
                    name: "demo".into(),
                    action: EditAction::AddLeaf {
                        parent: "G".into(),
                        node: "E3".into(),
                        statement: Some("field data".into()),
                        kind: crate::protocol::WireLeafKind::Evidence,
                        confidence: 0.85,
                    },
                })
                .unwrap();
            engine
                .handle(&Request::Edit {
                    name: "demo".into(),
                    action: EditAction::Retarget {
                        parent: "S".into(),
                        from: "E2".into(),
                        to: "E3".into(),
                    },
                })
                .unwrap();
            root_bits(&eval_current(&engine, "demo"))
        };
        let engine = Engine::open(8, &config).unwrap();
        assert_eq!(engine.durability_counters().records_replayed, 3);
        assert_eq!(root_bits(&eval_current(&engine, "demo")), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edits_on_unknown_nodes_fail_without_side_effects() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let err = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "nope".into(), confidence: 0.5 },
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Case);
        // Setting a non-leaf's confidence is rejected by the library.
        let err = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "G".into(), confidence: 0.5 },
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Case);
        // The registry still holds version 1 of the unedited case.
        let eval = eval_current(&engine, "demo");
        assert_eq!(eval.get("version").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn edit_counters_surface_in_stats() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        set_confidence(&engine, "demo", "E1", 0.97);
        let stats = engine.handle(&Request::Stats).unwrap();
        let edit_ops = stats.get("ops").and_then(|o| o.get("edit")).unwrap();
        assert_eq!(edit_ops.get("requests").and_then(Value::as_u64), Some(1));
        let inc = stats.get("incremental").unwrap();
        assert_eq!(inc.get("edits").and_then(Value::as_u64), Some(1));
        assert!(inc.get("nodes_recomputed").and_then(Value::as_u64).unwrap() >= 1);
        assert!(inc.get("nodes_reused").is_some());
        // The durability block is always present (zeros when in-memory).
        let durability = stats.get("durability").unwrap();
        assert_eq!(durability.get("records_appended").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn bands_reports_the_papers_two_point_construction() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&Request::Bands {
                name: "demo".into(),
                pfd_bound: 1e-3,
                mode: crate::protocol::WireDemandMode::LowDemand,
            })
            .unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let c = case.propagate().unwrap().top().unwrap().independent;
        let belief = TwoPoint::worst_case(1e-3, 1.0 - c).unwrap();
        let direct =
            SilAssessment::new(&belief, DemandMode::LowDemand).confidence_at_least(SilLevel::Sil2);
        let wire = result
            .get("bands")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .find(|v| v.get("level").and_then(Value::as_str) == Some("SIL2"))
            .and_then(|v| v.get("at_least"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(wire.to_bits(), direct.to_bits());
        assert!(result.get("most_probable").is_some());
    }

    #[test]
    fn expired_deadlines_fail_between_stages_and_are_counted() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let spent = Instant::now() - std::time::Duration::from_millis(1);
        let err = engine
            .handle_deadline(&Request::Eval { name: "demo".into(), at: None }, Some(spent))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(engine.robustness().deadline_exceeded, 1);
        // An open budget changes nothing about the answer.
        let open = Instant::now() + std::time::Duration::from_secs(60);
        let result = engine
            .handle_deadline(&Request::Eval { name: "demo".into(), at: None }, Some(open))
            .unwrap();
        assert!(result.get("root_confidence").is_some());
    }

    #[test]
    fn malformed_case_documents_are_rejected_as_bad_case() {
        let engine = Engine::new(8);
        let err = engine
            .handle(&Request::Load { name: "x".into(), case: Value::Str("nope".into()) })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadCase);
    }

    #[test]
    fn stats_reflect_handled_requests() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        eval_current(&engine, "demo");
        let _ = engine.handle(&Request::Eval { name: "missing".into(), at: None });
        let stats = engine.handle(&Request::Stats).unwrap();
        let evals = stats.get("ops").and_then(|o| o.get("eval")).unwrap();
        assert_eq!(evals.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(evals.get("errors").and_then(Value::as_u64), Some(1));
        let cache = stats.get("plan_cache").unwrap();
        assert!(cache.get("hits").and_then(Value::as_u64).unwrap() >= 1);
    }

    fn item(request: Request) -> BatchItem {
        BatchItem { deadline_ms: None, request: Ok(Box::new(request)) }
    }

    fn batch_of(items: Vec<BatchItem>) -> Request {
        Request::Batch { items }
    }

    fn items_of(value: &Value) -> &[Value] {
        value.get("items").and_then(Value::as_array).unwrap()
    }

    fn demo_with(e1: f64, e2: f64) -> Value {
        let mut case = Case::new("demo");
        let g = case.add_goal("G", "pfd < 1e-3").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let a = case.add_evidence("E1", "testing", e1).unwrap();
        let b = case.add_evidence("E2", "analysis", e2).unwrap();
        case.support(g, s).unwrap();
        case.support(s, a).unwrap();
        case.support(s, b).unwrap();
        serde::Serialize::to_value(&case)
    }

    #[test]
    fn batch_answers_match_individual_dispatch_bit_for_bit() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let eval = eval_current(&engine, "demo");
        let mc = engine
            .handle(&Request::Mc { name: "demo".into(), samples: 2_000, seed: 3, threads: 1 })
            .unwrap();
        let rank = engine.handle(&Request::Rank { name: "demo".into() }).unwrap();

        let result = engine
            .handle(&batch_of(vec![
                item(Request::Eval { name: "demo".into(), at: None }),
                item(Request::Mc { name: "demo".into(), samples: 2_000, seed: 3, threads: 1 }),
                item(Request::Rank { name: "demo".into() }),
            ]))
            .unwrap();
        let items = items_of(&result);
        assert_eq!(items.len(), 3);
        for (got, want) in items.iter().zip([&eval, &mc, &rank]) {
            assert_eq!(got.get("ok"), Some(&Value::Bool(true)));
            assert_eq!(got.get("result"), Some(want));
        }
    }

    #[test]
    fn batch_mutations_are_barriers_and_later_items_observe_them() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&batch_of(vec![
                item(Request::Eval { name: "demo".into(), at: None }),
                item(Request::Edit {
                    name: "demo".into(),
                    action: EditAction::SetConfidence { node: "E1".into(), confidence: 0.5 },
                }),
                item(Request::Eval { name: "demo".into(), at: None }),
            ]))
            .unwrap();
        let items = items_of(&result);
        let version = |i: usize| {
            items[i].get("result").and_then(|r| r.get("version")).and_then(Value::as_u64)
        };
        assert_eq!(version(0), Some(1));
        assert_eq!(version(1), Some(2));
        assert_eq!(version(2), Some(2));
        assert_ne!(
            root_bits(items[0].get("result").unwrap()),
            root_bits(items[2].get("result").unwrap()),
        );
    }

    #[test]
    fn identical_eval_items_coalesce_to_one_cache_consultation() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        eval_current(&engine, "demo");
        let before = engine.cache_counters();
        let result = engine
            .handle(&batch_of(vec![
                item(Request::Eval { name: "demo".into(), at: None }),
                item(Request::Eval { name: "demo".into(), at: None }),
                item(Request::Eval { name: "demo".into(), at: None }),
            ]))
            .unwrap();
        let after = engine.cache_counters();
        assert_eq!(after.hits, before.hits + 1, "three identical items, one lookup");
        let items = items_of(&result);
        assert_eq!(items[0], items[1]);
        assert_eq!(items[1], items[2]);
    }

    #[test]
    fn cold_same_shape_evals_run_the_batch_kernel_bit_identically() {
        // Capacity-one cache: loading `c` evicts `a` and `b`, so the
        // batch sees two cold same-shape cases and takes the
        // struct-of-arrays path.
        let engine = Engine::new(1);
        engine.handle(&Request::Load { name: "a".into(), case: demo_with(0.95, 0.90) }).unwrap();
        engine.handle(&Request::Load { name: "b".into(), case: demo_with(0.61, 0.42) }).unwrap();
        engine.handle(&Request::Load { name: "c".into(), case: demo_with(0.11, 0.99) }).unwrap();
        let result = engine
            .handle(&batch_of(vec![
                item(Request::Eval { name: "a".into(), at: None }),
                item(Request::Eval { name: "b".into(), at: None }),
            ]))
            .unwrap();
        let items = items_of(&result);
        // The singles below recompile through the ordinary session path;
        // equal values prove the batch kernel is bit-identical to it.
        assert_eq!(items[0].get("result"), Some(&eval_current(&engine, "a")));
        assert_eq!(items[1].get("result"), Some(&eval_current(&engine, "b")));
    }

    #[test]
    fn batch_item_deadlines_fail_alone_without_poisoning_siblings() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&batch_of(vec![
                BatchItem {
                    deadline_ms: Some(0),
                    request: Ok(Box::new(Request::Eval { name: "demo".into(), at: None })),
                },
                item(Request::Eval { name: "demo".into(), at: None }),
            ]))
            .unwrap();
        let items = items_of(&result);
        assert_eq!(items[0].get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            items[0].get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
            Some("deadline_exceeded"),
        );
        assert_eq!(items[1].get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn batch_parse_failures_answer_their_item_and_spare_the_rest() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&batch_of(vec![
                BatchItem {
                    deadline_ms: None,
                    request: Err(WireError::new(ErrorCode::UnknownOp, "no such op")),
                },
                item(Request::Eval { name: "demo".into(), at: None }),
            ]))
            .unwrap();
        let items = items_of(&result);
        assert_eq!(
            items[0].get("error").and_then(|e| e.get("code")).and_then(Value::as_str),
            Some("unknown_op"),
        );
        assert_eq!(items[1].get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn a_follower_joins_an_in_flight_identical_mc_run() {
        let engine = Arc::new(Engine::new(8));
        load_demo(&engine, "demo");
        let entry = engine.lookup("demo").unwrap();
        let key = McKey {
            name: "demo".into(),
            version: entry.version,
            hash: entry.hash,
            samples: 5_000,
            seed: 9,
        };
        // Park a running flight under the exact key the request will
        // compute, so the request becomes a follower no matter how the
        // threads interleave. The key is never removed, so even a late
        // arrival reads the published sentinel rather than re-sampling.
        let flight: Flight = Arc::new((Mutex::new(FlightSlot::Running), Condvar::new()));
        lock_unpoisoned(&engine.mc_flights).insert(key, Arc::clone(&flight));
        let sentinel = Value::Str("sentinel: shared, not re-sampled".into());
        let worker = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                engine.handle(&Request::Mc {
                    name: "demo".into(),
                    samples: 5_000,
                    seed: 9,
                    threads: 1,
                })
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        {
            let (slot, signal) = &*flight;
            *lock_unpoisoned(slot) = FlightSlot::Done(Ok(sentinel.clone()));
            signal.notify_all();
        }
        assert_eq!(worker.join().unwrap().unwrap(), sentinel);
        assert_eq!(engine.coalesced_joins(), 1);
    }

    #[test]
    fn a_followers_leader_running_out_of_budget_triggers_a_retry() {
        let engine = Arc::new(Engine::new(8));
        load_demo(&engine, "demo");
        let entry = engine.lookup("demo").unwrap();
        let key = McKey {
            name: "demo".into(),
            version: entry.version,
            hash: entry.hash,
            samples: 4_000,
            seed: 11,
        };
        let flight: Flight = Arc::new((Mutex::new(FlightSlot::Running), Condvar::new()));
        lock_unpoisoned(&engine.mc_flights).insert(key.clone(), Arc::clone(&flight));
        let worker = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                engine.handle(&Request::Mc {
                    name: "demo".into(),
                    samples: 4_000,
                    seed: 11,
                    threads: 1,
                })
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        // The parked leader "fails" on its own deadline and leaves; the
        // follower must retry under its own (absent) deadline and
        // produce the real, deterministic answer.
        lock_unpoisoned(&engine.mc_flights).remove(&key);
        {
            let (slot, signal) = &*flight;
            *lock_unpoisoned(slot) = FlightSlot::Done(Err(WireError::new(
                ErrorCode::DeadlineExceeded,
                "leader ran out of budget",
            )));
            signal.notify_all();
        }
        let got = worker.join().unwrap().unwrap();
        let fresh = engine
            .handle(&Request::Mc { name: "demo".into(), samples: 4_000, seed: 11, threads: 1 })
            .unwrap();
        assert_eq!(got, fresh);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 8, 31] {
            for name in ["demo", "tenant-0/case", "", "a", "zzzz"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards), "routing must be deterministic");
            }
        }
        // FNV actually spreads names: 64 names over 8 shards must not
        // all collapse into one.
        let hit: HashSet<usize> = (0..64).map(|i| shard_of(&format!("case-{i}"), 8)).collect();
        assert!(hit.len() > 1);
    }

    #[test]
    fn shard_count_is_clamped_to_the_cache_capacity() {
        assert_eq!(Engine::new(1).shard_count(), 1);
        assert_eq!(Engine::new(8).shard_count(), DEFAULT_SHARDS);
        let wide =
            Engine::with_config(&EngineConfig { cache_capacity: 4, shards: 64, memo_entries: 0 });
        assert_eq!(wide.shard_count(), 4);
        assert!(wide.memo_stats().is_none());
    }

    #[test]
    fn sharded_engine_answers_bit_identically_to_one_shard_without_memo() {
        let sharded = Engine::new(8);
        let plain =
            Engine::with_config(&EngineConfig { cache_capacity: 8, shards: 1, memo_entries: 0 });
        for i in 0..16 {
            let name = format!("tenant-{i}");
            let doc = demo_with(0.5 + f64::from(i) * 0.02, 0.9);
            sharded.handle(&Request::Load { name: name.clone(), case: doc.clone() }).unwrap();
            plain.handle(&Request::Load { name: name.clone(), case: doc }).unwrap();
            let a = sharded.handle(&Request::Eval { name: name.clone(), at: None }).unwrap();
            let b = plain.handle(&Request::Eval { name, at: None }).unwrap();
            assert_eq!(a, b, "sharding and the global memo must not change a bit");
        }
        assert!(
            sharded.memo_stats().unwrap().hits > 0,
            "identically-shaped tenants must share subtrees through the global store"
        );
    }

    #[test]
    fn compile_counters_expose_the_cross_tenant_dedup_ratio() {
        let engine = Engine::new(64);
        // 20 stamped variants of one template: each compile should
        // reuse most of the shared structure from the global store.
        for i in 0..20u64 {
            let name = format!("variant-{i}");
            engine
                .handle(&Request::Load {
                    name,
                    case: serde::Serialize::to_value(&depcase::assurance::templates::stamp(3, i)),
                })
                .unwrap();
        }
        let compile = engine.compile_counters();
        assert_eq!(compile.compiles, 20);
        assert!(compile.dedup_ratio() > 2.0, "20 sibling variants must dedup well: {compile:?}");
        // Memo disabled: every compile pays full price, ratio 1.0.
        let cold =
            Engine::with_config(&EngineConfig { cache_capacity: 64, shards: 8, memo_entries: 0 });
        for i in 0..20u64 {
            let name = format!("variant-{i}");
            cold.handle(&Request::Load {
                name,
                case: serde::Serialize::to_value(&depcase::assurance::templates::stamp(3, i)),
            })
            .unwrap();
        }
        // A private memo can still catch duplicate subtrees *within*
        // one case, but never across compiles — the shared store must
        // clearly beat it.
        let ratio = cold.compile_counters().dedup_ratio();
        assert!(
            ratio < compile.dedup_ratio() && ratio < 1.5,
            "private memos must not share across compiles: {ratio} vs {}",
            compile.dedup_ratio()
        );
    }

    #[test]
    fn stats_carry_shard_and_memo_store_blocks() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        eval_current(&engine, "demo");
        let stats = engine.handle(&Request::Stats).unwrap();
        let shards = stats.get("shards").unwrap();
        assert_eq!(shards.get("count").and_then(Value::as_u64), Some(DEFAULT_SHARDS as u64));
        let per_shard = shards.get("per_shard").and_then(Value::as_array).unwrap();
        assert_eq!(per_shard.len(), DEFAULT_SHARDS);
        let total_cases: u64 =
            per_shard.iter().map(|s| s.get("cases").and_then(Value::as_u64).unwrap()).sum();
        assert_eq!(total_cases, 1);
        let memo = stats.get("memo_store").unwrap();
        assert_eq!(memo.get("enabled"), Some(&Value::Bool(true)));
        assert!(memo.get("capacity").and_then(Value::as_u64).unwrap() > 0);
        let compile = stats.get("compile").unwrap();
        assert_eq!(compile.get("compiles").and_then(Value::as_u64), Some(1));
        assert!(compile.get("subtree_dedup_ratio").is_some());
    }

    #[test]
    fn durable_sharded_engine_recovers_across_a_different_shard_count() {
        let dir = tmp_dir("reshard");
        let durability = DurabilityConfig::new(&dir);
        let bits = {
            let engine = Engine::open_config(
                &EngineConfig { cache_capacity: 16, shards: 8, memo_entries: 1024 },
                &durability,
            )
            .unwrap();
            for i in 0..6 {
                let name = format!("tenant-{i}");
                engine
                    .handle(&Request::Load { name: name.clone(), case: demo_case_value() })
                    .unwrap();
                set_confidence(&engine, &name, "E1", 0.5 + f64::from(i) * 0.05);
            }
            (0..6)
                .map(|i| root_bits(&eval_current(&engine, &format!("tenant-{i}"))))
                .collect::<Vec<_>>()
        };
        // The shard map is derived, not persisted: reopening with a
        // different count must re-route every name correctly.
        let engine = Engine::open_config(
            &EngineConfig { cache_capacity: 16, shards: 3, memo_entries: 1024 },
            &durability,
        )
        .unwrap();
        assert_eq!(engine.shard_count(), 3);
        for (i, want) in bits.iter().enumerate() {
            let name = format!("tenant-{i}");
            let eval = eval_current(&engine, &name);
            assert_eq!(eval.get("version").and_then(Value::as_u64), Some(2));
            assert_eq!(root_bits(&eval), *want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn effective_deadlines_never_outlive_the_envelope() {
        let started = Instant::now();
        let envelope = started + Duration::from_millis(10);
        assert_eq!(effective_deadline(started, None, None), None);
        assert_eq!(effective_deadline(started, Some(envelope), None), Some(envelope));
        assert_eq!(
            effective_deadline(started, Some(envelope), Some(1_000)),
            Some(envelope),
            "a generous item deadline is capped by the envelope"
        );
        assert_eq!(
            effective_deadline(started, Some(envelope), Some(1)),
            Some(started + Duration::from_millis(1)),
        );
        assert_eq!(
            effective_deadline(started, None, Some(5)),
            Some(started + Duration::from_millis(5)),
        );
    }
}
