//! The assessment engine: a named, versioned case registry in front of
//! the compiled-plan cache.
//!
//! [`Engine::handle`] is the single entry point; it is `&self` and
//! thread-safe, so any number of server workers can call it
//! concurrently. Locks are held only around registry/cache bookkeeping —
//! the expensive work (plan compilation, Monte-Carlo sampling) runs
//! outside every lock, on the worker's own thread.
//!
//! Numeric discipline: every number in a response is produced by exactly
//! the same library call a direct user would make — the engine adds
//! caching and transport, never arithmetic — so responses are
//! bit-identical to in-process evaluation (the integration tests assert
//! this via `f64::to_bits`).

use crate::cache::{CacheCounters, CompiledCase, PlanCache};
use crate::lock_unpoisoned;
use crate::protocol::{format_hash, EditAction, ErrorCode, Request, WireError};
use crate::stats::{RobustnessCounters, RobustnessEvent, ServiceStats};
use depcase::assurance::{importance, Case, Incremental, MonteCarlo, NodeId, NodeKind};
use depcase::distributions::TwoPoint;
use depcase::sil::{SilAssessment, SilLevel};
use serde::{Deserialize, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fails with `deadline_exceeded` once `deadline` has passed. Called
/// between pipeline stages (after parse, after lookup/compile, before
/// heavy math), so a request that runs over budget stops at the next
/// stage boundary instead of holding a worker indefinitely.
fn check_deadline(deadline: Option<Instant>) -> Result<(), WireError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(WireError::new(
            ErrorCode::DeadlineExceeded,
            "request deadline exceeded before the answer was ready",
        )),
        _ => Ok(()),
    }
}

/// A registered case: the graph plus its registry metadata.
#[derive(Debug, Clone)]
struct CaseEntry {
    case: Arc<Case>,
    /// Bumped every time `load` replaces the case under this name.
    version: u64,
    /// Content hash at load time (the plan-cache key).
    hash: u64,
}

#[derive(Debug, Default)]
struct Registry {
    cases: HashMap<String, CaseEntry>,
}

/// The long-running assessment engine.
#[derive(Debug)]
pub struct Engine {
    registry: Mutex<Registry>,
    cache: Mutex<PlanCache>,
    stats: Mutex<ServiceStats>,
}

impl Engine {
    /// Creates an engine whose plan cache holds `cache_capacity`
    /// compiled cases.
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        Engine {
            registry: Mutex::new(Registry::default()),
            cache: Mutex::new(PlanCache::new(cache_capacity)),
            stats: Mutex::new(ServiceStats::default()),
        }
    }

    /// Handles one parsed request, recording latency and error counters.
    ///
    /// # Errors
    ///
    /// [`WireError`] carrying the stable wire code for the failure.
    pub fn handle(&self, request: &Request) -> Result<Value, WireError> {
        self.handle_deadline(request, None)
    }

    /// Like [`Engine::handle`], but fails with `deadline_exceeded` at
    /// the next pipeline-stage boundary once `deadline` passes.
    ///
    /// # Errors
    ///
    /// [`WireError`] carrying the stable wire code for the failure.
    pub fn handle_deadline(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let started = Instant::now();
        let result = self.dispatch(request, deadline);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut stats = lock_unpoisoned(&self.stats);
        stats.record(request.op_name(), elapsed_us, result.is_err());
        if matches!(&result, Err(e) if e.code == ErrorCode::DeadlineExceeded) {
            stats.note(RobustnessEvent::DeadlineExceeded);
        }
        result
    }

    /// Counts one fault-tolerance event (panic, respawn, shed request…)
    /// in the stats the `stats` op and the shutdown dump report.
    pub fn note(&self, event: RobustnessEvent) {
        lock_unpoisoned(&self.stats).note(event);
    }

    /// Snapshot of the fault-tolerance counters (for tests and benches).
    #[must_use]
    pub fn robustness(&self) -> RobustnessCounters {
        lock_unpoisoned(&self.stats).robustness()
    }

    fn dispatch(&self, request: &Request, deadline: Option<Instant>) -> Result<Value, WireError> {
        check_deadline(deadline)?;
        match request {
            Request::Load { name, case } => self.load(name, case),
            Request::Eval { name } => self.eval(name, deadline),
            Request::Edit { name, action } => self.edit(name, action, deadline),
            Request::Rank { name } => self.rank(name, deadline),
            Request::Mc { name, samples, seed, threads } => {
                self.mc(name, *samples, *seed, *threads, deadline)
            }
            Request::Bands { name, pfd_bound, mode } => {
                self.bands(name, *pfd_bound, mode.to_lib(), deadline)
            }
            Request::Stats | Request::Shutdown => Ok(self.stats_value()),
        }
    }

    /// The current stats snapshot as a wire value (also the `shutdown`
    /// response body, so a final dump always reaches the client).
    #[must_use]
    pub fn stats_value(&self) -> Value {
        let (counters, entries, capacity) = {
            let cache = lock_unpoisoned(&self.cache);
            (cache.counters(), cache.len(), cache.capacity())
        };
        lock_unpoisoned(&self.stats).to_value(counters, entries, capacity)
    }

    /// Cache counters alone (for tests and the bench harness).
    #[must_use]
    pub fn cache_counters(&self) -> CacheCounters {
        lock_unpoisoned(&self.cache).counters()
    }

    fn load(&self, name: &str, doc: &Value) -> Result<Value, WireError> {
        let case = Case::from_value(doc).map_err(|e| WireError::new(ErrorCode::BadCase, e))?;
        // Reject unevaluable cases at the door rather than on first use;
        // compiling also warms the plan cache for the expected follow-up.
        let compiled = compile(&case)?;
        let hash = case.content_hash();
        let nodes = case.iter().count();
        lock_unpoisoned(&self.cache).insert(hash, Arc::new(compiled));
        let version = {
            let mut registry = lock_unpoisoned(&self.registry);
            let version = registry.cases.get(name).map_or(1, |e| e.version + 1);
            registry
                .cases
                .insert(name.to_string(), CaseEntry { case: Arc::new(case), version, hash });
            version
        };
        Ok(Value::Object(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("version".to_string(), Value::U64(version)),
            ("hash".to_string(), Value::Str(format_hash(hash))),
            ("nodes".to_string(), Value::U64(nodes as u64)),
        ]))
    }

    fn lookup(&self, name: &str) -> Result<CaseEntry, WireError> {
        lock_unpoisoned(&self.registry).cases.get(name).cloned().ok_or_else(|| {
            WireError::new(ErrorCode::UnknownCase, format!("no case named `{name}` is loaded"))
        })
    }

    /// Fetches the compiled artefacts for an entry, compiling outside
    /// the lock on a miss. Two workers racing on the same cold case may
    /// both compile; the cache keeps whichever inserts last — identical
    /// content, so correctness is unaffected.
    fn compiled(&self, entry: &CaseEntry) -> Result<Arc<CompiledCase>, WireError> {
        if let Some(hit) = lock_unpoisoned(&self.cache).get(entry.hash) {
            return Ok(hit);
        }
        let compiled = Arc::new(compile(&entry.case)?);
        lock_unpoisoned(&self.cache).insert(entry.hash, Arc::clone(&compiled));
        Ok(compiled)
    }

    fn eval(&self, name: &str, deadline: Option<Instant>) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let mut nodes = Vec::new();
        for (id, node) in entry.case.iter() {
            if let Some(c) = compiled.report.confidence(id) {
                nodes.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(node.name.clone())),
                    ("kind".to_string(), Value::Str(kind_name(&node.kind).to_string())),
                    ("confidence".to_string(), Value::F64(c.independent)),
                    ("worst_case".to_string(), Value::F64(c.worst_case)),
                    ("best_case".to_string(), Value::F64(c.best_case)),
                ]));
            }
        }
        let mut fields = case_header(&entry);
        if let Some(top) = compiled.report.top() {
            fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
        }
        fields.push(("nodes".to_string(), Value::Array(nodes)));
        Ok(Value::Object(fields))
    }

    /// Applies one mutation to a loaded case through the cached
    /// incremental session: only the edited node's ancestor spine runs
    /// the combination kernel, everything else is answered from the
    /// subtree-hash memo. The edited case replaces the registry entry
    /// under a bumped version, and the new plan-plus-memo artefacts join
    /// the cache under the new content hash — the pre-edit entry stays
    /// cached, so editing back to a previous state is a pure cache hit.
    fn edit(
        &self,
        name: &str,
        action: &EditAction,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let mut session = compiled.session.clone();
        let delta = match action {
            EditAction::SetConfidence { node, confidence } => {
                let id = resolve(session.case(), node)?;
                session
                    .set_confidence(id, *confidence)
                    .map_err(|e| WireError::from(depcase::Error::from(e)))?
            }
            EditAction::AddLeaf { parent, node, statement, kind, confidence } => {
                let p = resolve(session.case(), parent)?;
                session
                    .add_leaf(
                        p,
                        node.clone(),
                        statement.clone().unwrap_or_default(),
                        kind.to_lib(),
                        *confidence,
                    )
                    .map_err(|e| WireError::from(depcase::Error::from(e)))?
                    .1
            }
            EditAction::Retarget { parent, from, to } => {
                let p = resolve(session.case(), parent)?;
                let f = resolve(session.case(), from)?;
                let t = resolve(session.case(), to)?;
                session.retarget(p, f, t).map_err(|e| WireError::from(depcase::Error::from(e)))?
            }
        };
        let hash = session.case_hash();
        let nodes = session.case().len();
        let case = Arc::new(session.case().clone());
        let compiled = Arc::new(CompiledCase {
            plan: session.plan().clone(),
            report: session.report(),
            session,
        });
        lock_unpoisoned(&self.cache).insert(hash, Arc::clone(&compiled));
        let version = {
            let mut registry = lock_unpoisoned(&self.registry);
            let version = registry.cases.get(name).map_or(1, |e| e.version + 1);
            registry.cases.insert(name.to_string(), CaseEntry { case, version, hash });
            version
        };
        lock_unpoisoned(&self.stats).note_edit(delta.nodes_recomputed, delta.nodes_reused);
        let mut fields = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("version".to_string(), Value::U64(version)),
            ("hash".to_string(), Value::Str(format_hash(hash))),
            ("nodes".to_string(), Value::U64(nodes as u64)),
        ];
        if let Some(top) = compiled.report.top() {
            fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
        }
        fields.push(("nodes_recomputed".to_string(), Value::U64(delta.nodes_recomputed)));
        fields.push(("nodes_reused".to_string(), Value::U64(delta.nodes_reused)));
        Ok(Value::Object(fields))
    }

    fn rank(&self, name: &str, deadline: Option<Instant>) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        // Warm/consult the cache so repeated ranking of an unchanged
        // case is counted like any other cached evaluation.
        let _ = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let ranking = importance::birnbaum_importance(&entry.case)
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
        let rows = ranking
            .into_iter()
            .map(|li| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(li.name)),
                    ("confidence".to_string(), Value::F64(li.confidence)),
                    ("birnbaum".to_string(), Value::F64(li.birnbaum)),
                    ("gain_if_certain".to_string(), Value::F64(li.gain_if_certain)),
                ])
            })
            .collect();
        let mut fields = case_header(&entry);
        fields.push(("evidence".to_string(), Value::Array(rows)));
        Ok(Value::Object(fields))
    }

    fn mc(
        &self,
        name: &str,
        samples: u32,
        seed: u64,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        // The sampling run itself is not interruptible — the budget
        // must still be open when it starts.
        check_deadline(deadline)?;
        let report = MonteCarlo::new(samples)
            .seed(seed)
            .threads(threads)
            .run_plan(&compiled.plan)
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
        let mut estimates = Vec::new();
        for (id, node) in entry.case.iter() {
            if let Some(estimate) = report.estimate(id) {
                estimates.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(node.name.clone())),
                    ("estimate".to_string(), Value::F64(estimate)),
                    (
                        "half_width".to_string(),
                        Value::F64(report.half_width(id).unwrap_or(f64::NAN)),
                    ),
                ]));
            }
        }
        let mut fields = case_header(&entry);
        fields.push(("samples".to_string(), Value::U64(u64::from(report.samples()))));
        fields.push(("seed".to_string(), Value::U64(seed)));
        fields.push(("estimates".to_string(), Value::Array(estimates)));
        Ok(Value::Object(fields))
    }

    fn bands(
        &self,
        name: &str,
        pfd_bound: f64,
        mode: depcase::sil::DemandMode,
        deadline: Option<Instant>,
    ) -> Result<Value, WireError> {
        let entry = self.lookup(name)?;
        let compiled = self.compiled(&entry)?;
        check_deadline(deadline)?;
        let top = compiled.report.top().ok_or_else(|| {
            WireError::new(ErrorCode::Case, "case has no single root goal to band")
        })?;
        // The paper's construction: confidence c in "measure < bound"
        // is the two-point worst-case belief — mass c at the bound,
        // doubt 1 − c at failure — pushed through the band table.
        let belief = TwoPoint::worst_case(pfd_bound, 1.0 - top.independent)
            .map_err(|e| WireError::from(depcase::Error::from(e)))?;
        let assessment = SilAssessment::new(&belief, mode);
        let at_least = assessment.confidences();
        let probabilities = assessment.band_probabilities();
        let rows = SilLevel::ALL
            .iter()
            .map(|level| {
                Value::Object(vec![
                    ("level".to_string(), Value::Str(level.to_string())),
                    ("at_least".to_string(), Value::F64(at_least[usize::from(level.index()) - 1])),
                    ("in_band".to_string(), Value::F64(probabilities.in_band(*level))),
                ])
            })
            .collect();
        let mut fields = case_header(&entry);
        fields.push(("root_confidence".to_string(), Value::F64(top.independent)));
        fields.push(("pfd_bound".to_string(), Value::F64(pfd_bound)));
        fields.push((
            "mode".to_string(),
            Value::Str(
                match mode {
                    depcase::sil::DemandMode::LowDemand => "low_demand",
                    depcase::sil::DemandMode::HighDemand => "high_demand",
                }
                .to_string(),
            ),
        ));
        fields.push(("bands".to_string(), Value::Array(rows)));
        fields.push((
            "most_probable".to_string(),
            match probabilities.most_probable() {
                Some(level) => Value::Str(level.to_string()),
                None => Value::Null,
            },
        ));
        Ok(Value::Object(fields))
    }
}

fn compile(case: &Case) -> Result<CompiledCase, WireError> {
    // One incremental session yields all three artefacts; its plan and
    // report are bit-identical to `EvalPlan::compile` + `propagate`
    // (both run the same lowering and combination kernel).
    let session =
        Incremental::new(case.clone()).map_err(|e| WireError::from(depcase::Error::from(e)))?;
    Ok(CompiledCase { plan: session.plan().clone(), report: session.report(), session })
}

/// Resolves a wire node name against a case, answering the library's
/// `case` error code for unknown names.
fn resolve(case: &Case, name: &str) -> Result<NodeId, WireError> {
    case.node_by_name(name).ok_or_else(|| {
        WireError::new(ErrorCode::Case, format!("no node named `{name}` in the case"))
    })
}

fn case_header(entry: &CaseEntry) -> Vec<(String, Value)> {
    vec![
        ("case".to_string(), Value::Str(entry.case.title().to_string())),
        ("version".to_string(), Value::U64(entry.version)),
        ("hash".to_string(), Value::Str(format_hash(entry.hash))),
    ]
}

fn kind_name(kind: &NodeKind) -> &'static str {
    match kind {
        NodeKind::Goal => "goal",
        NodeKind::Strategy(_) => "strategy",
        NodeKind::Evidence { .. } => "evidence",
        NodeKind::Assumption { .. } => "assumption",
        NodeKind::Context => "context",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depcase::prelude::*;

    fn demo_case_value() -> Value {
        let mut case = Case::new("demo");
        let g = case.add_goal("G", "pfd < 1e-3").unwrap();
        let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
        let e1 = case.add_evidence("E1", "testing", 0.95).unwrap();
        let e2 = case.add_evidence("E2", "analysis", 0.90).unwrap();
        case.support(g, s).unwrap();
        case.support(s, e1).unwrap();
        case.support(s, e2).unwrap();
        serde::Serialize::to_value(&case)
    }

    fn load_demo(engine: &Engine, name: &str) {
        engine.handle(&Request::Load { name: name.to_string(), case: demo_case_value() }).unwrap();
    }

    #[test]
    fn load_then_eval_matches_direct_propagation() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        assert_eq!(root.to_bits(), direct.to_bits());
    }

    #[test]
    fn reload_bumps_version_and_unknown_case_errors() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let second =
            engine.handle(&Request::Load { name: "demo".into(), case: demo_case_value() }).unwrap();
        assert_eq!(second.get("version").and_then(Value::as_u64), Some(2));

        let err = engine.handle(&Request::Eval { name: "missing".into() }).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownCase);
    }

    #[test]
    fn second_eval_of_unchanged_case_hits_the_plan_cache() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let before = engine.cache_counters();
        engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let after = engine.cache_counters();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn mc_through_the_engine_is_bit_identical_to_the_library() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&Request::Mc { name: "demo".into(), samples: 20_000, seed: 7, threads: 2 })
            .unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let direct = MonteCarlo::new(20_000).seed(7).threads(2).run(&case).unwrap();
        let g = case.node_by_name("G").unwrap();
        let wire_estimate = result
            .get("estimates")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some("G"))
            .and_then(|v| v.get("estimate"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(wire_estimate.to_bits(), direct.estimate(g).unwrap().to_bits());
    }

    #[test]
    fn edit_set_confidence_matches_a_full_reload() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "E1".into(), confidence: 0.97 },
            })
            .unwrap();
        assert_eq!(result.get("version").and_then(Value::as_u64), Some(2));
        assert!(result.get("nodes_recomputed").and_then(Value::as_u64).unwrap() >= 1);

        // Bit-identical to mutating the case directly and propagating.
        let mut case = Case::from_value(&demo_case_value()).unwrap();
        let e1 = case.node_by_name("E1").unwrap();
        case.set_leaf_confidence(e1, 0.97).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        let root = result.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(root.to_bits(), direct.to_bits());

        // Follow-up ops see the edited case.
        let eval = engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let again = eval.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(again.to_bits(), direct.to_bits());
        assert_eq!(eval.get("version").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn edit_back_restores_the_original_content_hash() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let loaded = engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let original = loaded.get("hash").and_then(Value::as_str).unwrap().to_string();
        let set = |c: f64| {
            engine
                .handle(&Request::Edit {
                    name: "demo".into(),
                    action: EditAction::SetConfidence { node: "E1".into(), confidence: c },
                })
                .unwrap()
        };
        let edited = set(0.97);
        assert_ne!(edited.get("hash").and_then(Value::as_str).unwrap(), original);
        let undone = set(0.95);
        assert_eq!(undone.get("hash").and_then(Value::as_str).unwrap(), original);
        assert_eq!(undone.get("version").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn edit_add_leaf_and_retarget_reshape_the_case() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let grown = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::AddLeaf {
                    parent: "G".into(),
                    node: "E3".into(),
                    statement: Some("field data".into()),
                    kind: crate::protocol::WireLeafKind::Evidence,
                    confidence: 0.85,
                },
            })
            .unwrap();
        assert_eq!(grown.get("nodes").and_then(Value::as_u64), Some(5));

        let retargeted = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::Retarget {
                    parent: "S".into(),
                    from: "E2".into(),
                    to: "E3".into(),
                },
            })
            .unwrap();
        assert_eq!(retargeted.get("version").and_then(Value::as_u64), Some(3));

        // The service's answer matches rebuilding the same case by hand.
        let mut case = Case::from_value(&demo_case_value()).unwrap();
        let g = case.node_by_name("G").unwrap();
        let s = case.node_by_name("S").unwrap();
        let e3 = case.add_evidence("E3", "field data", 0.85).unwrap();
        case.support(g, e3).unwrap();
        let e2 = case.node_by_name("E2").unwrap();
        case.retarget_support(s, e2, e3).unwrap();
        let direct = case.propagate().unwrap().top().unwrap().independent;
        let root = retargeted.get("root_confidence").and_then(Value::as_f64).unwrap();
        assert_eq!(root.to_bits(), direct.to_bits());
    }

    #[test]
    fn edits_on_unknown_nodes_fail_without_side_effects() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let err = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "nope".into(), confidence: 0.5 },
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Case);
        // Setting a non-leaf's confidence is rejected by the library.
        let err = engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "G".into(), confidence: 0.5 },
            })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Case);
        // The registry still holds version 1 of the unedited case.
        let eval = engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        assert_eq!(eval.get("version").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn edit_counters_surface_in_stats() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        engine
            .handle(&Request::Edit {
                name: "demo".into(),
                action: EditAction::SetConfidence { node: "E1".into(), confidence: 0.97 },
            })
            .unwrap();
        let stats = engine.handle(&Request::Stats).unwrap();
        let edit_ops = stats.get("ops").and_then(|o| o.get("edit")).unwrap();
        assert_eq!(edit_ops.get("requests").and_then(Value::as_u64), Some(1));
        let inc = stats.get("incremental").unwrap();
        assert_eq!(inc.get("edits").and_then(Value::as_u64), Some(1));
        assert!(inc.get("nodes_recomputed").and_then(Value::as_u64).unwrap() >= 1);
        assert!(inc.get("nodes_reused").is_some());
    }

    #[test]
    fn bands_reports_the_papers_two_point_construction() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let result = engine
            .handle(&Request::Bands {
                name: "demo".into(),
                pfd_bound: 1e-3,
                mode: crate::protocol::WireDemandMode::LowDemand,
            })
            .unwrap();

        let case = Case::from_value(&demo_case_value()).unwrap();
        let c = case.propagate().unwrap().top().unwrap().independent;
        let belief = TwoPoint::worst_case(1e-3, 1.0 - c).unwrap();
        let direct =
            SilAssessment::new(&belief, DemandMode::LowDemand).confidence_at_least(SilLevel::Sil2);
        let wire = result
            .get("bands")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .find(|v| v.get("level").and_then(Value::as_str) == Some("SIL2"))
            .and_then(|v| v.get("at_least"))
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(wire.to_bits(), direct.to_bits());
        assert!(result.get("most_probable").is_some());
    }

    #[test]
    fn expired_deadlines_fail_between_stages_and_are_counted() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        let spent = Instant::now() - std::time::Duration::from_millis(1);
        let err = engine
            .handle_deadline(&Request::Eval { name: "demo".into() }, Some(spent))
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(engine.robustness().deadline_exceeded, 1);
        // An open budget changes nothing about the answer.
        let open = Instant::now() + std::time::Duration::from_secs(60);
        let result =
            engine.handle_deadline(&Request::Eval { name: "demo".into() }, Some(open)).unwrap();
        assert!(result.get("root_confidence").is_some());
    }

    #[test]
    fn malformed_case_documents_are_rejected_as_bad_case() {
        let engine = Engine::new(8);
        let err = engine
            .handle(&Request::Load { name: "x".into(), case: Value::Str("nope".into()) })
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadCase);
    }

    #[test]
    fn stats_reflect_handled_requests() {
        let engine = Engine::new(8);
        load_demo(&engine, "demo");
        engine.handle(&Request::Eval { name: "demo".into() }).unwrap();
        let _ = engine.handle(&Request::Eval { name: "missing".into() });
        let stats = engine.handle(&Request::Stats).unwrap();
        let evals = stats.get("ops").and_then(|o| o.get("eval")).unwrap();
        assert_eq!(evals.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(evals.get("errors").and_then(Value::as_u64), Some(1));
        let cache = stats.get("plan_cache").unwrap();
        assert!(cache.get("hits").and_then(Value::as_u64).unwrap() >= 1);
    }
}
