//! End-to-end tracing and the unified metrics registry.
//!
//! One [`Telemetry`] instance per engine owns everything observability:
//! the trace-id counter, the sharded [`TraceRing`]s retaining recent
//! span trees, the per-op latency *decomposition* (queue vs parse vs
//! compute vs fsync vs flush), the slow-request log, the Chrome
//! trace-event stream (`serve --trace-dir DIR`), and the metrics
//! registry behind the `metrics` wire op.
//!
//! # How a request is traced
//!
//! The worker that claims a request asks [`Telemetry::start_trace`] for
//! a [`TraceBuilder`] (or `None` when tracing is off — the only cost a
//! disabled pipeline pays is that one atomic load per request). The
//! builder is driven through the root phases `queue_wait → parse →
//! engine → reply_flush` and *installed in thread-local storage* while
//! the engine runs, so every layer below — plan cache, WAL, fsync, the
//! assurance kernels via [`TlsTracer`] — records child spans without a
//! single signature carrying a tracer argument. The builder then rides
//! the reply path (so `reply_flush` covers the actual socket write) and
//! is handed to [`Telemetry::finish`], which freezes the tree, feeds
//! the decomposition, checks the slow log, streams the Chrome events,
//! and publishes the trace into a ring as one `Arc` swap.
//!
//! Because the root phases are measured back-to-back on shared clock
//! reads, the sum of a trace's root-phase durations equals its
//! end-to-end total up to a few nanoseconds of instrumentation skew —
//! the reconciliation invariant the integration tests pin at ±5%.

use crate::lock_unpoisoned;
use crate::stats::Histogram;
use crate::trace::{Trace, TraceBuilder, TraceRing};
use serde::Value;
use std::cell::{Cell, RefCell};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring shards — finishing threads are spread round-robin across the
/// shards so concurrent publications rarely touch the same ring.
const RING_SHARDS: usize = 8;

/// Traces retained per shard ([`RING_SHARDS`] × this in total).
const RING_CAP: usize = 32;

/// Most traces one `trace` request may return.
pub const MAX_TRACE_LIMIT: usize = RING_SHARDS * RING_CAP;

/// Default trace count for a `trace` request that omits `limit`.
pub const DEFAULT_TRACE_LIMIT: usize = 8;

/// Chrome trace files rotate once they pass this size.
const ROTATE_BYTES: u64 = 32 << 20;

thread_local! {
    /// The trace being built for the request this thread is handling.
    static CURRENT: RefCell<Option<Box<TraceBuilder>>> = const { RefCell::new(None) };
    /// This thread's ring shard (assigned round-robin on first finish).
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Installs `tb` as this thread's active trace; engine-internal spans
/// recorded via [`with_span`]/[`phase_event`] land in it until
/// [`take_current`] removes it.
pub fn install(tb: Box<TraceBuilder>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(tb));
}

/// Removes and returns this thread's active trace, if any.
pub fn take_current() -> Option<Box<TraceBuilder>> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Runs `f` inside a span named `name` on the active trace; with no
/// active trace this is `f()` plus one thread-local read.
pub fn with_span<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let active = CURRENT.with(|c| c.borrow_mut().as_mut().map(|tb| tb.begin(name)).is_some());
    let out = f();
    if active {
        CURRENT.with(|c| {
            if let Some(tb) = c.borrow_mut().as_mut() {
                tb.end();
            }
        });
    }
    out
}

/// Records an already-measured phase ending now on the active trace
/// (no-op without one) — how the WAL reports `wal_append`/`fsync` and
/// how [`TlsTracer`] lands kernel phases.
pub fn phase_event(name: &'static str, elapsed: Duration) {
    CURRENT.with(|c| {
        if let Some(tb) = c.borrow_mut().as_mut() {
            tb.event_ns(name, elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    });
}

/// Records a named count on the active trace (no-op without one).
pub fn count_event(name: &'static str, n: u64) {
    CURRENT.with(|c| {
        if let Some(tb) = c.borrow_mut().as_mut() {
            tb.count(name, n);
        }
    });
}

/// The assurance-crate [`Tracer`](depcase::assurance::trace::Tracer)
/// writing kernel phase reports into the thread-local active trace.
/// With tracing disabled no trace is installed, so each hook costs one
/// thread-local read and a branch.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlsTracer;

impl depcase::assurance::trace::Tracer for TlsTracer {
    fn phase(&self, name: &'static str, elapsed: Duration) {
        phase_event(name, elapsed);
    }
    fn count(&self, name: &'static str, n: u64) {
        count_event(name, n);
    }
}

/// Aggregate of one phase (or one op's end-to-end total): count, exact
/// nanosecond sum, and a log2-µs histogram for quantiles.
#[derive(Debug, Clone, Default)]
struct PhaseAgg {
    count: u64,
    sum_ns: u64,
    hist: Histogram,
}

impl PhaseAgg {
    fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.hist.record(ns / 1_000);
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum_us".to_string(), Value::F64(self.sum_ns as f64 / 1_000.0)),
            ("p50_us".to_string(), Value::F64(self.hist.quantile_interpolated_us(0.50))),
            ("p90_us".to_string(), Value::F64(self.hist.quantile_interpolated_us(0.90))),
            ("p99_us".to_string(), Value::F64(self.hist.quantile_interpolated_us(0.99))),
            ("p999_us".to_string(), Value::F64(self.hist.quantile_interpolated_us(0.999))),
        ])
    }
}

/// Per-op latency decomposition: the end-to-end total and one
/// [`PhaseAgg`] per span name observed for that op.
#[derive(Debug, Default)]
struct OpDecomp {
    total: PhaseAgg,
    /// Nanoseconds summed over *root* phases only — the side of the
    /// reconciliation invariant the totals are checked against.
    root_sum_ns: u64,
    phases: Vec<(&'static str, PhaseAgg)>,
}

#[derive(Debug, Default)]
struct Decomp {
    ops: Vec<(&'static str, OpDecomp)>,
    traces_recorded: u64,
    slow_logged: u64,
}

impl Decomp {
    fn op_mut(&mut self, op: &'static str) -> &mut OpDecomp {
        if let Some(i) = self.ops.iter().position(|(o, _)| *o == op) {
            return &mut self.ops[i].1;
        }
        self.ops.push((op, OpDecomp::default()));
        &mut self.ops.last_mut().expect("just pushed").1
    }

    fn observe(&mut self, trace: &Trace) {
        self.traces_recorded += 1;
        let entry = self.op_mut(trace.op);
        entry.total.record_ns(trace.total_ns);
        entry.root_sum_ns = entry.root_sum_ns.saturating_add(trace.root_phase_sum_ns());
        for span in &trace.spans {
            let agg = if let Some(i) = entry.phases.iter().position(|(n, _)| *n == span.name) {
                &mut entry.phases[i].1
            } else {
                entry.phases.push((span.name, PhaseAgg::default()));
                &mut entry.phases.last_mut().expect("just pushed").1
            };
            agg.record_ns(span.dur_ns);
        }
    }

    fn to_value(&self) -> Value {
        let ops = self
            .ops
            .iter()
            .map(|(op, d)| {
                let phases = d
                    .phases
                    .iter()
                    .map(|(name, agg)| ((*name).to_string(), agg.to_value()))
                    .collect();
                (
                    (*op).to_string(),
                    Value::Object(vec![
                        ("total".to_string(), d.total.to_value()),
                        (
                            "root_phase_sum_us".to_string(),
                            Value::F64(d.root_sum_ns as f64 / 1_000.0),
                        ),
                        ("phases".to_string(), Value::Object(phases)),
                    ]),
                )
            })
            .collect();
        Value::Object(ops)
    }
}

/// Streams completed traces as Chrome trace-event JSON (the
/// `traceEvents` array form both `chrome://tracing` and Perfetto
/// load). The file is re-terminated with `]` after every trace by
/// seeking back over the previous terminator, so it parses as valid
/// JSON at *any* moment, crash included. Files rotate at
/// [`ROTATE_BYTES`].
#[derive(Debug)]
struct ChromeWriter {
    dir: PathBuf,
    file: File,
    seq: u64,
    bytes: u64,
    wrote_any: bool,
}

impl ChromeWriter {
    fn open(dir: PathBuf) -> io::Result<ChromeWriter> {
        std::fs::create_dir_all(&dir)?;
        let (file, seq) = Self::next_file(&dir, 0)?;
        Ok(ChromeWriter { dir, file, seq, bytes: 2, wrote_any: false })
    }

    /// Creates `trace-<seq>.json` (skipping names that already exist,
    /// so restarts never clobber earlier captures) primed as `[]`.
    fn next_file(dir: &std::path::Path, mut seq: u64) -> io::Result<(File, u64)> {
        loop {
            let path = dir.join(format!("trace-{seq:05}.json"));
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(b"[]")?;
                    return Ok((file, seq));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => seq += 1,
                Err(e) => return Err(e),
            }
        }
    }

    fn rotate(&mut self) -> io::Result<()> {
        let (file, seq) = Self::next_file(&self.dir, self.seq + 1)?;
        self.file = file;
        self.seq = seq;
        self.bytes = 2;
        self.wrote_any = false;
        Ok(())
    }

    /// Appends one complete (`"ph":"X"`) event per span, overwriting
    /// the `]` terminator and writing a new one.
    fn write_trace(&mut self, trace: &Trace) -> io::Result<()> {
        if self.bytes > ROTATE_BYTES {
            self.rotate()?;
        }
        let mut out = String::with_capacity(trace.spans.len() * 128);
        for span in &trace.spans {
            if self.wrote_any || !out.is_empty() {
                out.push_str(",\n");
            }
            let ts = trace.start_unix_us as f64 + span.start_ns as f64 / 1_000.0;
            let dur = span.dur_ns as f64 / 1_000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"args\":{{\"trace_id\":{},\"op\":\"{}\",\"ok\":{}}}}}",
                span.name, trace.id, trace.id, trace.op, trace.ok
            ));
        }
        if out.is_empty() {
            return Ok(());
        }
        out.push(']');
        self.file.seek(SeekFrom::End(-1))?;
        self.file.write_all(out.as_bytes())?;
        self.bytes = self.bytes.saturating_add(out.len() as u64);
        self.wrote_any = true;
        Ok(())
    }
}

/// The engine's observability hub. See the module docs for the life of
/// a traced request.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    slow_ns: AtomicU64,
    next_id: AtomicU64,
    next_shard: AtomicUsize,
    rings: Vec<TraceRing>,
    decomp: Mutex<Decomp>,
    writer: Mutex<Option<ChromeWriter>>,
    transport: Mutex<String>,
    started: Instant,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Telemetry with tracing enabled, no slow log, no trace dir.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(true),
            slow_ns: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            next_shard: AtomicUsize::new(0),
            rings: (0..RING_SHARDS).map(|_| TraceRing::new(RING_CAP)).collect(),
            decomp: Mutex::new(Decomp::default()),
            writer: Mutex::new(None),
            transport: Mutex::new("none".to_string()),
            started: Instant::now(),
        }
    }

    /// Turns per-request tracing on or off (metrics counters stay on).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether per-request tracing is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Requests slower than this (end to end) dump their span tree to
    /// stderr; 0 disables the slow log.
    pub fn set_slow_ms(&self, ms: u64) {
        self.slow_ns.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Streams completed traces into `dir` as rotating Chrome
    /// trace-event JSON files.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or its first file.
    pub fn set_trace_dir(&self, dir: impl Into<PathBuf>) -> io::Result<()> {
        let writer = ChromeWriter::open(dir.into())?;
        *lock_unpoisoned(&self.writer) = Some(writer);
        Ok(())
    }

    /// Names the transport in use (`"epoll"`, `"threads"`, `"stdio"`)
    /// for the `stats` build block and `depcase_build_info`.
    pub fn set_transport(&self, transport: &str) {
        *lock_unpoisoned(&self.transport) = transport.to_string();
    }

    /// The transport label last set (defaults to `"none"`).
    #[must_use]
    pub fn transport(&self) -> String {
        lock_unpoisoned(&self.transport).clone()
    }

    /// Seconds since this telemetry (= its engine) was created.
    #[must_use]
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// A builder for one request whose line was framed at `accepted`,
    /// or `None` when tracing is off — the whole per-request cost of a
    /// disabled pipeline.
    #[must_use]
    pub fn start_trace(&self, accepted: Instant) -> Option<Box<TraceBuilder>> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Some(Box::new(TraceBuilder::new(id, accepted)))
    }

    fn shard_ring(&self) -> &TraceRing {
        let idx = SHARD.with(|s| {
            let mut idx = s.get();
            if idx == usize::MAX {
                idx = self.next_shard.fetch_add(1, Ordering::Relaxed);
                s.set(idx);
            }
            idx
        });
        &self.rings[idx % self.rings.len()]
    }

    /// Freezes and publishes one completed trace: decomposition
    /// update, slow-request log, Chrome stream, ring retention.
    pub fn finish(&self, tb: TraceBuilder) {
        let trace = Arc::new(tb.finish());
        let slow_ns = self.slow_ns.load(Ordering::Relaxed);
        let is_slow = slow_ns > 0 && trace.total_ns >= slow_ns;
        {
            let mut decomp = lock_unpoisoned(&self.decomp);
            decomp.observe(&trace);
            if is_slow {
                decomp.slow_logged += 1;
            }
        }
        if is_slow {
            let line = serde_json::to_string(&crate::protocol::Json(trace_to_value(&trace)))
                .unwrap_or_default();
            eprintln!(
                "[telemetry] slow request ({} ms >= threshold): {line}",
                trace.total_ns / 1_000_000
            );
        }
        {
            let mut writer = lock_unpoisoned(&self.writer);
            if let Some(w) = writer.as_mut() {
                if let Err(e) = w.write_trace(&trace) {
                    eprintln!("[telemetry] trace-dir write failed, disabling stream: {e}");
                    *writer = None;
                }
            }
        }
        self.shard_ring().push(trace);
    }

    /// The `trace` wire-op result: the most recent `limit` span trees
    /// (newest first) plus the per-op latency decomposition.
    #[must_use]
    pub fn trace_value(&self, limit: usize) -> Value {
        let limit = limit.clamp(1, MAX_TRACE_LIMIT);
        let mut all: Vec<Arc<Trace>> = self.rings.iter().flat_map(TraceRing::snapshot).collect();
        all.sort_by_key(|t| std::cmp::Reverse(t.id));
        all.truncate(limit);
        let traces = all.iter().map(|t| trace_to_value(t)).collect();
        Value::Object(vec![
            ("traces".to_string(), Value::Array(traces)),
            ("decomposition".to_string(), lock_unpoisoned(&self.decomp).to_value()),
        ])
    }

    /// Contributes the tracing-side families to the metrics registry.
    pub fn collect_metrics(&self, reg: &mut MetricsRegistry) {
        reg.gauge(
            "depcase_uptime_seconds",
            "Seconds since the engine started",
            &[],
            self.started.elapsed().as_secs_f64(),
        );
        let decomp = lock_unpoisoned(&self.decomp);
        reg.counter(
            "depcase_traces_recorded_total",
            "Traces published to the rings",
            &[],
            decomp.traces_recorded,
        );
        reg.counter(
            "depcase_slow_requests_total",
            "Requests that tripped the slow log",
            &[],
            decomp.slow_logged,
        );
        for (op, d) in &decomp.ops {
            let op_label = [("op", (*op).to_string())];
            reg.histogram_ns(
                "depcase_trace_total_us",
                "End-to-end traced latency per op",
                &op_label,
                &d.total,
            );
            for (phase, agg) in &d.phases {
                reg.histogram_ns(
                    "depcase_phase_latency_us",
                    "Per-phase latency decomposition",
                    &[("op", (*op).to_string()), ("phase", (*phase).to_string())],
                    agg,
                );
            }
        }
    }
}

/// One trace as the wire object the `trace` op (and the slow log)
/// emits: µs-resolution spans with parent indices (`null` for roots).
fn trace_to_value(trace: &Trace) -> Value {
    let spans = trace
        .spans
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(s.name.to_string())),
                ("parent".to_string(), s.parent.map_or(Value::Null, |p| Value::U64(u64::from(p)))),
                ("start_us".to_string(), Value::F64(s.start_ns as f64 / 1_000.0)),
                ("dur_us".to_string(), Value::F64(s.dur_ns as f64 / 1_000.0)),
            ])
        })
        .collect();
    let counts = trace.counts.iter().map(|(n, v)| ((*n).to_string(), Value::U64(*v))).collect();
    Value::Object(vec![
        ("id".to_string(), Value::U64(trace.id)),
        ("op".to_string(), Value::Str(trace.op.to_string())),
        ("ok".to_string(), Value::Bool(trace.ok)),
        ("start_unix_us".to_string(), Value::U64(trace.start_unix_us)),
        ("total_us".to_string(), Value::F64(trace.total_ns as f64 / 1_000.0)),
        ("spans".to_string(), Value::Array(spans)),
        ("counts".to_string(), Value::Object(counts)),
    ])
}

/// One series' value in the metrics registry.
#[derive(Debug, Clone)]
enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Hist { buckets: Vec<(u64, u64)>, count: u64, sum_us: f64 },
}

#[derive(Debug, Clone)]
struct Series {
    labels: Vec<(&'static str, String)>,
    value: SeriesValue,
}

#[derive(Debug, Clone)]
struct Family {
    name: &'static str,
    help: &'static str,
    series: Vec<Series>,
}

/// The unified metrics registry: every counter, gauge, and histogram
/// the service exposes, collected from the stats snapshot, the engine,
/// and the telemetry decomposition, rendered as JSON (`metrics` op) or
/// Prometheus text exposition (`{"format":"prometheus"}`).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn family_mut(&mut self, name: &'static str, help: &'static str) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[i];
        }
        self.families.push(Family { name, help, series: Vec::new() });
        self.families.last_mut().expect("just pushed")
    }

    fn push(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        value: SeriesValue,
    ) {
        self.family_mut(name, help).series.push(Series { labels: labels.to_vec(), value });
    }

    /// Adds one counter series.
    pub fn counter(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        value: u64,
    ) {
        self.push(name, help, labels, SeriesValue::Counter(value));
    }

    /// Adds one gauge series.
    pub fn gauge(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        value: f64,
    ) {
        self.push(name, help, labels, SeriesValue::Gauge(value));
    }

    /// Adds one histogram series from a log2-µs [`Histogram`].
    pub fn histogram(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        hist: &Histogram,
    ) {
        self.push(
            name,
            help,
            labels,
            SeriesValue::Hist {
                buckets: hist.buckets(),
                count: hist.count(),
                sum_us: hist.sum_us() as f64,
            },
        );
    }

    fn histogram_ns(
        &mut self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, String)],
        agg: &PhaseAgg,
    ) {
        self.push(
            name,
            help,
            labels,
            SeriesValue::Hist {
                buckets: agg.hist.buckets(),
                count: agg.count,
                sum_us: agg.sum_ns as f64 / 1_000.0,
            },
        );
    }

    /// The registry as the `metrics` op's JSON result.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let metrics = self
            .families
            .iter()
            .map(|f| {
                let series = f
                    .series
                    .iter()
                    .map(|s| {
                        let labels = s
                            .labels
                            .iter()
                            .map(|(k, v)| ((*k).to_string(), Value::Str(v.clone())))
                            .collect();
                        let mut fields = vec![("labels".to_string(), Value::Object(labels))];
                        match &s.value {
                            SeriesValue::Counter(v) => {
                                fields.push(("value".to_string(), Value::U64(*v)));
                            }
                            SeriesValue::Gauge(v) => {
                                fields.push(("value".to_string(), Value::F64(*v)));
                            }
                            SeriesValue::Hist { buckets, count, sum_us } => {
                                let bs = buckets
                                    .iter()
                                    .map(|(le, n)| {
                                        Value::Array(vec![Value::U64(*le), Value::U64(*n)])
                                    })
                                    .collect();
                                fields.push(("buckets".to_string(), Value::Array(bs)));
                                fields.push(("count".to_string(), Value::U64(*count)));
                                fields.push(("sum_us".to_string(), Value::F64(*sum_us)));
                            }
                        }
                        Value::Object(fields)
                    })
                    .collect();
                Value::Object(vec![
                    ("name".to_string(), Value::Str(f.name.to_string())),
                    (
                        "type".to_string(),
                        Value::Str(
                            match f.series.first().map(|s| &s.value) {
                                Some(SeriesValue::Gauge(_)) => "gauge",
                                Some(SeriesValue::Hist { .. }) => "histogram",
                                _ => "counter",
                            }
                            .to_string(),
                        ),
                    ),
                    ("help".to_string(), Value::Str(f.help.to_string())),
                    ("series".to_string(), Value::Array(series)),
                ])
            })
            .collect();
        Value::Object(vec![("metrics".to_string(), Value::Array(metrics))])
    }

    /// The registry in Prometheus text exposition format (histograms
    /// as cumulative `_bucket{le=…}` series plus `_sum`/`_count`).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            let kind = match f.series.first().map(|s| &s.value) {
                Some(SeriesValue::Gauge(_)) => "gauge",
                Some(SeriesValue::Hist { .. }) => "histogram",
                _ => "counter",
            };
            out.push_str(&format!("# HELP {} {}\n# TYPE {} {kind}\n", f.name, f.help, f.name));
            for s in &f.series {
                match &s.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&format!("{}{} {v}\n", f.name, label_text(&s.labels, &[])));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&format!("{}{} {v}\n", f.name, label_text(&s.labels, &[])));
                    }
                    SeriesValue::Hist { buckets, count, sum_us } => {
                        let mut cum = 0u64;
                        for (le, n) in buckets {
                            cum += n;
                            out.push_str(&format!(
                                "{}_bucket{} {cum}\n",
                                f.name,
                                label_text(&s.labels, &[("le", &le.to_string())])
                            ));
                        }
                        out.push_str(&format!(
                            "{}_bucket{} {count}\n",
                            f.name,
                            label_text(&s.labels, &[("le", "+Inf")])
                        ));
                        out.push_str(&format!(
                            "{}_sum{} {sum_us}\n",
                            f.name,
                            label_text(&s.labels, &[])
                        ));
                        out.push_str(&format!(
                            "{}_count{} {count}\n",
                            f.name,
                            label_text(&s.labels, &[])
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Renders `{label="value",…}` (empty string with no labels). Label
/// values are quoted with the three escapes the exposition format
/// defines.
fn label_text(labels: &[(&'static str, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::with_capacity(labels.len() + extra.len());
    for (k, v) in labels {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_hands_out_no_builders() {
        let t = Telemetry::new();
        assert!(t.start_trace(Instant::now()).is_some());
        t.set_enabled(false);
        assert!(t.start_trace(Instant::now()).is_none());
    }

    #[test]
    fn finished_traces_surface_in_trace_value_newest_first() {
        let t = Telemetry::new();
        for _ in 0..3 {
            let mut tb = t.start_trace(Instant::now()).unwrap();
            tb.set_op("eval");
            tb.begin("engine");
            tb.end();
            tb.set_ok(true);
            t.finish(*tb);
        }
        let v = t.trace_value(2);
        let text = serde_json::to_string(&crate::protocol::Json(v)).unwrap();
        assert!(text.contains("\"traces\""), "{text}");
        assert!(text.contains("\"decomposition\""), "{text}");
        assert!(text.contains("\"eval\""), "{text}");
        // Newest first: id 3 appears before id 2, id 1 truncated away.
        let i3 = text.find("\"id\":3").expect("trace 3 present");
        let i2 = text.find("\"id\":2").expect("trace 2 present");
        assert!(i3 < i2, "{text}");
        assert!(!text.contains("\"id\":1,"), "{text}");
    }

    #[test]
    fn tls_spans_nest_under_installed_builder() {
        let t = Telemetry::new();
        let mut tb = t.start_trace(Instant::now()).unwrap();
        tb.begin("engine");
        install(tb);
        let out = with_span("plan_compile", || {
            phase_event("propagate", Duration::from_micros(5));
            count_event("nodes", 4);
            42
        });
        assert_eq!(out, 42);
        let mut tb = take_current().unwrap();
        tb.end();
        let trace = tb.finish();
        assert!(trace.is_well_formed(), "{trace:?}");
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["engine", "plan_compile", "propagate"]);
        assert_eq!(trace.spans[1].parent, Some(0));
        assert_eq!(trace.spans[2].parent, Some(1));
        assert_eq!(trace.counts, vec![("nodes", 4)]);
    }

    #[test]
    fn with_span_is_transparent_without_a_trace() {
        assert!(take_current().is_none());
        assert_eq!(with_span("anything", || 7), 7);
        assert!(take_current().is_none());
    }

    #[test]
    fn chrome_writer_keeps_the_file_valid_json() {
        let dir = std::env::temp_dir().join(format!("depcase-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::new();
        t.set_trace_dir(&dir).unwrap();
        for _ in 0..2 {
            let mut tb = t.start_trace(Instant::now()).unwrap();
            tb.set_op("eval");
            tb.begin("engine");
            tb.end();
            t.finish(*tb);
        }
        let text = std::fs::read_to_string(dir.join("trace-00000.json")).unwrap();
        let (parsed, _) =
            serde_json::from_str_prefix::<crate::protocol::Json>(&text).expect("valid JSON");
        let crate::protocol::Json(Value::Array(events)) = parsed else {
            panic!("expected a JSON array: {text}");
        };
        assert_eq!(events.len(), 2);
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        assert!(text.contains("\"op\":\"eval\""), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prometheus_text_renders_counters_gauges_and_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x_total", "a counter", &[("op", "eval".to_string())], 3);
        reg.gauge("y", "a gauge", &[], 1.5);
        let mut h = Histogram::default();
        h.record(10);
        h.record(100);
        reg.histogram("z_us", "a histogram", &[], &h);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE x_total counter"), "{text}");
        assert!(text.contains("x_total{op=\"eval\"} 3"), "{text}");
        assert!(text.contains("y 1.5"), "{text}");
        assert!(text.contains("# TYPE z_us histogram"), "{text}");
        assert!(text.contains("z_us_bucket{le=\"16\"} 1"), "{text}");
        assert!(text.contains("z_us_bucket{le=\"128\"} 2"), "{text}");
        assert!(text.contains("z_us_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("z_us_sum 110"), "{text}");
        assert!(text.contains("z_us_count 2"), "{text}");
    }

    #[test]
    fn metrics_value_carries_families_and_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a_total", "help text", &[], 1);
        let text = serde_json::to_string(&crate::protocol::Json(reg.to_value())).unwrap();
        assert!(text.contains("\"name\":\"a_total\""), "{text}");
        assert!(text.contains("\"type\":\"counter\""), "{text}");
        assert!(text.contains("\"value\":1"), "{text}");
    }

    #[test]
    fn root_phase_sums_reconcile_with_totals() {
        let t = Telemetry::new();
        for _ in 0..20 {
            let accepted = Instant::now();
            let mut tb = t.start_trace(accepted).unwrap();
            tb.set_op("eval");
            tb.begin_at("queue_wait", accepted);
            tb.end();
            tb.begin("parse");
            tb.end();
            tb.begin("engine");
            std::thread::sleep(Duration::from_micros(200));
            tb.end();
            tb.begin("reply_flush");
            t.finish(*tb); // finish closes reply_flush at the total's end
        }
        let decomp = lock_unpoisoned(&t.decomp);
        let (_, d) = decomp.ops.iter().find(|(op, _)| *op == "eval").unwrap();
        let total = d.total.sum_ns as f64;
        let roots = d.root_sum_ns as f64;
        let drift = (total - roots).abs() / total;
        assert!(drift <= 0.05, "phase sums drifted {drift} from totals");
    }
}
