//! Deterministic fault injection for the assessment service.
//!
//! A service whose whole point is quantifying confidence in
//! dependability claims should carry evidence of its own robustness —
//! and "it survived random chaos once" is not evidence. A [`FaultPlan`]
//! injects worker panics, per-request delays, and connection drops at
//! configured rates from a **seeded** stream, using the same
//! counter-seeded xoshiro256++ discipline as the parallel Monte-Carlo
//! engine: the decision for draw *n* at a site depends only on
//! `(seed, site, n)`, never on wall-clock time or thread interleaving.
//! Draw indices are claimed with an atomic counter, so for a fixed seed
//! the multiset of decisions over any first *N* draws is identical on
//! every run — which is what lets the chaos integration test assert
//! exact invariants instead of "probably fine".
//!
//! Plans are built from a compact spec string, the same form the
//! `case_tool serve --faults` flag takes:
//!
//! ```text
//! seed=42,panic=0.05,delay=0.1,delay_ms=20,drop=0.02,panic_cap=3
//! ```
//!
//! Each site takes a `RATE` in `[0,1]` and an optional `SITE_cap=N`
//! bound on total injections — `panic=1.0,panic_cap=1` is the standard
//! way to provoke exactly one worker panic deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-site salts, SplitMix64-spaced so the three decision streams
/// never alias even for adversarial seeds.
const SALT_PANIC: u64 = 0x9E37_79B9_7F4A_7C15;
const SALT_DELAY: u64 = 0x3C6E_F372_FE94_F82A;
const SALT_DROP: u64 = 0xDAA6_6D2B_79F9_F43F;

/// One injection site: a rate, an optional cap, and atomic draw/fire
/// counters. Shared with the storage-layer fault plan
/// ([`crate::storage_io::StorageFaultPlan`]), which reuses the same
/// counter-seeded decision discipline for syscall-granularity faults.
#[derive(Debug, Default)]
pub(crate) struct FaultSite {
    pub(crate) rate: f64,
    pub(crate) cap: Option<u64>,
    drawn: AtomicU64,
    fired: AtomicU64,
}

impl FaultSite {
    /// Claims the next draw index and decides deterministically whether
    /// this site fires, honoring the cap.
    pub(crate) fn fire(&self, seed: u64, salt: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        let draw = self.drawn.fetch_add(1, Ordering::SeqCst);
        let mut rng = StdRng::seed_from_u64(seed ^ salt.wrapping_add(draw.wrapping_mul(2)));
        if rng.gen::<f64>() >= self.rate {
            return false;
        }
        // Reserve a slot under the cap; losing the race means another
        // thread's injection already spent it.
        let mut fired = self.fired.load(Ordering::SeqCst);
        loop {
            if self.cap.is_some_and(|cap| fired >= cap) {
                return false;
            }
            match self.fired.compare_exchange(fired, fired + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return true,
                Err(current) => fired = current,
            }
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }
}

/// Counts of faults actually injected so far, for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedCounts {
    /// Worker panics injected.
    pub panics: u64,
    /// Request delays injected.
    pub delays: u64,
    /// Connection drops injected.
    pub drops: u64,
}

/// A seeded, rate-based fault-injection plan (see the module docs).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    panic: FaultSite,
    delay: FaultSite,
    drop: FaultSite,
    delay_ms: u64,
}

impl FaultPlan {
    /// Parses a `key=value,...` spec string. Keys: `seed`, `panic`,
    /// `delay`, `drop` (rates in `[0,1]`), `delay_ms` (injected delay
    /// length, default 10), and `panic_cap`/`delay_cap`/`drop_cap`
    /// (bounds on total injections).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            panic: FaultSite::default(),
            delay: FaultSite::default(),
            drop: FaultSite::default(),
            delay_ms: 10,
        };
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec field `{part}` is not KEY=VALUE"))?;
            let rate = |site: &str| -> Result<f64, String> {
                let r: f64 = value
                    .parse()
                    .map_err(|_| format!("fault rate `{site}` must be a number, got `{value}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate `{site}` must be in [0,1], got {r}"));
                }
                Ok(r)
            };
            let count = |field: &str| -> Result<u64, String> {
                value.parse().map_err(|_| {
                    format!("fault field `{field}` must be a non-negative integer, got `{value}`")
                })
            };
            match key {
                "seed" => plan.seed = count("seed")?,
                "panic" => plan.panic.rate = rate("panic")?,
                "delay" => plan.delay.rate = rate("delay")?,
                "drop" => plan.drop.rate = rate("drop")?,
                "delay_ms" => plan.delay_ms = count("delay_ms")?,
                "panic_cap" => plan.panic.cap = Some(count("panic_cap")?),
                "delay_cap" => plan.delay.cap = Some(count("delay_cap")?),
                "drop_cap" => plan.drop.cap = Some(count("drop_cap")?),
                other => return Err(format!("unknown fault spec field `{other}`")),
            }
        }
        Ok(plan)
    }

    /// True when the current request should panic its worker.
    #[must_use]
    pub fn take_panic(&self) -> bool {
        self.panic.fire(self.seed, SALT_PANIC)
    }

    /// The delay to impose on the current request, when one fires.
    #[must_use]
    pub fn take_delay(&self) -> Option<Duration> {
        self.delay.fire(self.seed, SALT_DELAY).then(|| Duration::from_millis(self.delay_ms))
    }

    /// True when the current connection should be dropped abruptly.
    #[must_use]
    pub fn take_drop(&self) -> bool {
        self.drop.fire(self.seed, SALT_DROP)
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn injected(&self) -> InjectedCounts {
        InjectedCounts {
            panics: self.panic.count(),
            delays: self.delay.count(),
            drops: self.drop.count(),
        }
    }

    /// The draw index (0-based) of the first panic this plan would
    /// inject, within the first `draws` draws — lets tests pick seeds
    /// that provably fire early.
    #[must_use]
    pub fn first_panic_within(&self, draws: u64) -> Option<u64> {
        (0..draws).find(|&n| {
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ SALT_PANIC.wrapping_add(n.wrapping_mul(2)));
            rng.gen::<f64>() < self.panic.rate
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_rates_and_caps() {
        let plan =
            FaultPlan::parse("seed=7, panic=0.5, delay=1.0, delay_ms=3, drop=0.25, panic_cap=2")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.delay_ms, 3);
        assert_eq!(plan.panic.cap, Some(2));
        assert_eq!(plan.take_delay(), Some(Duration::from_millis(3)));
    }

    #[test]
    fn bad_specs_name_the_offending_field() {
        assert!(FaultPlan::parse("panic").unwrap_err().contains("KEY=VALUE"));
        assert!(FaultPlan::parse("panic=2.0").unwrap_err().contains("[0,1]"));
        assert!(FaultPlan::parse("frob=1").unwrap_err().contains("frob"));
        // A typo'd site name must be an error, never a silent no-op plan.
        assert!(FaultPlan::parse("pannic=0.5").unwrap_err().contains("pannic"));
        assert!(FaultPlan::parse("delay_ms=x").unwrap_err().contains("delay_ms"));
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let a = FaultPlan::parse("seed=42,panic=0.3").unwrap();
        let b = FaultPlan::parse("seed=42,panic=0.3").unwrap();
        let run = |plan: &FaultPlan| (0..256).map(|_| plan.take_panic()).collect::<Vec<_>>();
        assert_eq!(run(&a), run(&b));
        assert!(a.injected().panics > 0, "rate 0.3 over 256 draws must fire");
        // A different seed fixes a different stream.
        let c = FaultPlan::parse("seed=43,panic=0.3").unwrap();
        assert_ne!(run(&a), run(&c));
    }

    #[test]
    fn caps_bound_total_injections() {
        let plan = FaultPlan::parse("seed=1,panic=1.0,panic_cap=1").unwrap();
        assert!(plan.take_panic());
        for _ in 0..32 {
            assert!(!plan.take_panic(), "cap must stop further injections");
        }
        assert_eq!(plan.injected().panics, 1);
    }

    #[test]
    fn zero_rate_sites_never_fire_or_draw() {
        let plan = FaultPlan::parse("seed=9").unwrap();
        assert!(!plan.take_panic());
        assert_eq!(plan.take_delay(), None);
        assert!(!plan.take_drop());
        assert_eq!(plan.injected(), InjectedCounts::default());
    }

    #[test]
    fn chaos_seed_fires_a_panic_early() {
        // The chaos integration test and CI smoke rely on this seed
        // injecting a panic within its first few dozen draws; pin it.
        let plan = FaultPlan::parse("seed=42,panic=0.05").unwrap();
        let first = plan.first_panic_within(120).expect("seed 42 must panic within 120 draws");
        assert!(first < 120, "{first}");
    }
}
