//! Versioned case-schema round-trips through the public facade.
//!
//! The serialized form is the service's persistence and wire format, so
//! a save/load cycle must not perturb a single bit of any confidence:
//! the vendored `serde_json` emits shortest-round-trip float literals
//! precisely so these assertions can be exact.

use depcase::prelude::*;

fn reactor_case() -> Case {
    let mut case = Case::new("reactor protection");
    let g = case.add_goal("G1", "pfd < 1e-3").unwrap();
    let s = case.add_strategy("S1", "independent legs", Combination::AnyOf).unwrap();
    // Awkward confidences that don't print exactly in short decimal.
    let e1 = case.add_evidence("E1", "statistical testing", 0.9517823461928374).unwrap();
    let e2 = case.add_evidence("E2", "static analysis", 1.0 / 3.0).unwrap();
    let a = case.add_assumption("A1", "environment stable", 0.99 + 1e-12).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case.support(g, a).unwrap();
    case
}

#[test]
fn save_load_preserves_every_confidence_bit() {
    let case = reactor_case();
    let json = serde_json::to_string(&case).unwrap();
    assert!(json.contains("\"schema\":1"), "schema stamp missing: {json}");

    let reloaded: Case = serde_json::from_str(&json).unwrap();
    let before = case.propagate().unwrap();
    let after = reloaded.propagate().unwrap();
    let roots_before = before.root_confidences();
    let roots_after = after.root_confidences();
    assert_eq!(roots_before.len(), roots_after.len());
    for ((id_b, b), (id_a, a)) in roots_before.iter().zip(&roots_after) {
        assert_eq!(id_b, id_a);
        assert_eq!(b.independent.to_bits(), a.independent.to_bits());
        assert_eq!(b.worst_case.to_bits(), a.worst_case.to_bits());
        assert_eq!(b.best_case.to_bits(), a.best_case.to_bits());
    }
    // The evaluation-relevant content hash agrees too, so the service's
    // plan cache treats a reloaded case as the same case.
    assert_eq!(case.content_hash(), reloaded.content_hash());
}

#[test]
fn double_roundtrip_is_textually_stable() {
    // serialize → parse → serialize must reach a fixed point; otherwise
    // the content hash (and any on-disk diff) would churn per save.
    let case = reactor_case();
    let once = serde_json::to_string(&case).unwrap();
    let back: Case = serde_json::from_str(&once).unwrap();
    let twice = serde_json::to_string(&back).unwrap();
    assert_eq!(once, twice);
}

#[test]
fn monte_carlo_is_bit_identical_after_reload() {
    let case = reactor_case();
    let json = serde_json::to_string_pretty(&case).unwrap();
    let reloaded: Case = serde_json::from_str(&json).unwrap();

    let mc = MonteCarlo::new(20_000).seed(99).threads(2);
    let a = mc.run(&case).unwrap();
    let b = mc.run(&reloaded).unwrap();
    for node in ["G1", "S1"] {
        let id = case.node_by_name(node).unwrap();
        assert_eq!(
            a.estimate(id).unwrap().to_bits(),
            b.estimate(id).unwrap().to_bits(),
            "MC estimate for {node} diverged after reload"
        );
    }
}
