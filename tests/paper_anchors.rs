//! Numeric anchor points quoted in the paper, pinned as regression
//! tests against the public facade.

use depcase::assurance::{Case, Combination, MonteCarlo};
use depcase::confidence::WorstCaseBound;
use depcase::distributions::LogNormal;
use depcase::sil::{DemandMode, SilAssessment, SilLevel};

#[test]
fn required_confidence_for_decade_of_margin_is_0_9991() {
    // §3.4 Example 3: supporting pfd < 1e-3 by claiming pfd < 1e-4
    // needs confidence 99.91%.
    let c = WorstCaseBound::required_confidence(1e-3, 1e-4).unwrap();
    assert!((c - 0.9991).abs() < 1e-4, "required confidence {c}");
}

#[test]
fn sigma_anchor_points_of_the_mean_mode_identity() {
    // §3.1: log10(mean/mode) = 0.65σ² ⇒ one decade at σ ≈ 1.24, two
    // decades at σ ≈ 1.75 (the paper rounds to 1.2 and 1.7).
    let one = LogNormal::sigma_for_decades(1.0).unwrap();
    let two = LogNormal::sigma_for_decades(2.0).unwrap();
    assert!((one - 1.2389).abs() < 1e-3, "one-decade sigma {one}");
    assert!((two - 1.7521).abs() < 1e-3, "two-decade sigma {two}");
    // The identity round-trips through an actual belief.
    let belief = LogNormal::from_mode_sigma(0.003, one).unwrap();
    assert!((belief.mean_mode_decades() - 1.0).abs() < 1e-12);
}

#[test]
fn widest_paper_judgement_is_67_percent_sil2() {
    // §3.2 / Figure 4: the mode-0.003 mean-0.01 judgement gives "about
    // a 67% chance of being in SIL2 or higher".
    let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
    let a = SilAssessment::new(&belief, DemandMode::LowDemand);
    let sil2 = a.confidence_at_least(SilLevel::Sil2);
    assert!((sil2 - 0.67).abs() < 0.01, "SIL2 confidence {sil2}");
    // The batched entry point reports the identical number.
    let batch = a.confidences()[usize::from(SilLevel::Sil2.index()) - 1];
    assert_eq!(batch.to_bits(), sil2.to_bits());
}

#[test]
fn parallel_monte_carlo_is_bit_identical_across_thread_counts() {
    // The engine's determinism guarantee, checked end-to-end through
    // the facade: a fixed seed fixes every estimate bit-for-bit no
    // matter how many workers run the chunks.
    let mut case = Case::new("anchor");
    let g = case.add_goal("G", "claim").unwrap();
    let s = case.add_strategy("S", "legs", Combination::AnyOf).unwrap();
    let e1 = case.add_evidence("E1", "testing", 0.95).unwrap();
    let e2 = case.add_evidence("E2", "analysis", 0.90).unwrap();
    let a = case.add_assumption("A", "environment", 0.99).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e1).unwrap();
    case.support(s, e2).unwrap();
    case.support(g, a).unwrap();

    // Not a multiple of the chunk size, so a tail chunk exists.
    let samples = 30_000;
    let mc = MonteCarlo::new(samples).seed(2024);
    let reference = mc.threads(1).run(&case).unwrap();
    for threads in [2, 4, 7] {
        let par = mc.threads(threads).run(&case).unwrap();
        for id in [g, s] {
            assert_eq!(
                reference.estimate(id).unwrap().to_bits(),
                par.estimate(id).unwrap().to_bits(),
                "estimates diverged at {threads} threads"
            );
        }
    }
    // And the estimate agrees with the analytic propagation.
    let analytic = case.propagate().unwrap().confidence(g).unwrap().independent;
    let est = reference.estimate(g).unwrap();
    let hw = reference.half_width(g).unwrap();
    assert!((est - analytic).abs() < hw * 1.5, "mc {est} vs analytic {analytic} (±{hw})");
}
