//! Integration coverage for the multi-attribute layer and its interplay
//! with the worst-case calculus and the assurance graph.

use depcase::assurance::{Case, Combination};
use depcase::confidence::attributes::{Attribute, MultiAttributeClaims};
use depcase::confidence::{ConfidenceStatement, WorstCaseBound};

#[test]
fn attribute_claims_mirror_an_assurance_case() {
    // The same structure expressed two ways must agree: per-attribute
    // claims conjunctively aggregated, and a case graph whose evidence
    // nodes carry the same confidences.
    let mut claims = MultiAttributeClaims::new();
    claims.set(Attribute::Safety, ConfidenceStatement::new(1e-3, 0.99).unwrap()).unwrap();
    claims.set(Attribute::Security, ConfidenceStatement::new(1e-2, 0.92).unwrap()).unwrap();
    claims.set(Attribute::Maintainability, ConfidenceStatement::new(1e-1, 0.97).unwrap()).unwrap();
    let overall = claims.overall().unwrap();

    let mut case = Case::new("multi-attribute");
    let g = case.add_goal("G", "system is dependable").unwrap();
    let s = case.add_strategy("S", "argue each attribute", Combination::AllOf).unwrap();
    case.support(g, s).unwrap();
    for (i, c) in claims.claims().iter().enumerate() {
        let e = case
            .add_evidence(format!("E{i}"), c.attribute.to_string(), c.statement.confidence())
            .unwrap();
        case.support(s, e).unwrap();
    }
    let top = case.propagate().unwrap().top().unwrap();
    assert!((top.independent - overall.independent).abs() < 1e-12);
    assert!((top.worst_case - overall.worst_case).abs() < 1e-12);
    assert!((top.best_case - overall.best_case).abs() < 1e-12);
}

#[test]
fn safety_attribute_connects_to_worst_case_route() {
    // The safety attribute's statement can be derived from the paper's
    // Example 3 reasoning, then aggregated with the rest.
    // required_confidence meets the target with equality; nudge above it
    // so the strict `<` of supports_system_claim holds.
    let conf = WorstCaseBound::required_confidence(1e-3, 1e-4).unwrap() + 1e-6;
    let safety = ConfidenceStatement::new(1e-4, conf).unwrap();
    assert!(safety.supports_system_claim(1e-3));

    let mut claims = MultiAttributeClaims::new();
    claims.set(Attribute::Safety, safety).unwrap();
    claims.set(Attribute::Security, ConfidenceStatement::new(1e-2, 0.95).unwrap()).unwrap();
    let overall = claims.overall().unwrap();
    // The security attribute now dominates the overall doubt.
    assert_eq!(claims.weakest().unwrap().attribute, Attribute::Security);
    assert!(overall.independent < 0.96);
    assert!(overall.independent > 0.94);
}
