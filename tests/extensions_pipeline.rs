//! Integration tests for the extension features: quantile fitting →
//! calibration-weighted pooling → copula-aware multi-leg cases →
//! allocation, plus the growth route.

use depcase::assurance::templates;
use depcase::confidence::allocation::{allocate_equal, required_subsystem_confidences};
use depcase::confidence::copula;
use depcase::confidence::growth::{simulate_power_law, PowerLawGrowth};
use depcase::confidence::multileg::{combine_two_legs, Leg};
use depcase::confidence::reduction;
use depcase::distributions::fit::{lognormal_from_quantiles, lognormal_from_three_points};
use depcase::distributions::{Discretized, Distribution, LogNormal, LogUniform, SurvivalWeighted};
use depcase::elicitation::calibration::{performance_weights, QuantileAssessment};
use depcase::elicitation::pooling;
use depcase::sil::demand::{average_pfd, cross_mode_sil, mode_for_demand_rate};
use depcase::sil::{DemandMode, SilAssessment, SilLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn quantiles_to_weighted_pool_to_sil() {
    // Three experts give quantile pairs; fit log-normals; weight by a
    // calibration exercise; pool; assess.
    let beliefs = vec![
        lognormal_from_quantiles(0.05, 5e-4, 0.95, 8e-3).unwrap(),
        lognormal_from_quantiles(0.05, 8e-4, 0.95, 2e-2).unwrap(),
        lognormal_from_quantiles(0.05, 2e-4, 0.95, 5e-3).unwrap(),
    ];
    // Calibration exercise: expert 1 is wildly off on seeds.
    let truth = LogNormal::new(-6.0, 0.8).unwrap();
    let mut rng = StdRng::seed_from_u64(31);
    let seeds = truth.sample_n(&mut rng, 40);
    let honest: Vec<QuantileAssessment> = seeds
        .iter()
        .map(|_| {
            QuantileAssessment::new(
                truth.quantile(0.05).unwrap(),
                truth.quantile(0.5).unwrap(),
                truth.quantile(0.95).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let off: Vec<QuantileAssessment> =
        seeds.iter().map(|_| QuantileAssessment::new(1.0, 2.0, 3.0).unwrap()).collect();
    let weights = performance_weights(&[honest.clone(), off, honest], &seeds, 0.01).unwrap();
    let ws: Vec<f64> = weights.iter().map(|w| w.weight).collect();
    assert!(ws[1] < 1e-6, "miscalibrated expert should be unweighted: {ws:?}");

    let pooled = pooling::log_pool_lognormals(&beliefs, Some(&ws)).unwrap();
    let a = SilAssessment::new(&pooled, DemandMode::LowDemand);
    // Expert 1 (the pessimist) is zero-weighted, so the pool reflects
    // experts 0 and 2.
    assert!(a.confidence_at_least(SilLevel::Sil2) > 0.9);
}

#[test]
fn three_point_fit_flags_skew_and_feeds_reduction() {
    let (belief, discrepancy) = lognormal_from_three_points(5e-4, 2e-3, 2e-2).unwrap();
    assert!(discrepancy < 1.2 && discrepancy > 0.5);
    let report = reduction::analyse(&belief, 0.99);
    assert!(report.ladder.len() == 4);
    assert!(report.ladder[0].confidence >= report.ladder[1].confidence);
}

#[test]
fn copula_consistent_with_case_interval() {
    // The copula curve must stay inside the propagation's dependence
    // interval for the same two legs.
    let (case, goal) =
        templates::multi_leg("pfd < 1e-2", &[("testing", 0.95), ("analysis", 0.90)], None).unwrap();
    let top = case.propagate().unwrap().confidence(goal).unwrap();
    let a = Leg::with_confidence(0.95).unwrap();
    let b = Leg::with_confidence(0.90).unwrap();
    for rho in [-0.9, -0.3, 0.0, 0.5, 0.95] {
        let doubt = copula::combined_doubt_gaussian(a, b, rho).unwrap();
        let conf = 1.0 - doubt;
        assert!(
            conf >= top.worst_case - 1e-9 && conf <= top.best_case + 1e-9,
            "rho = {rho}: {conf} outside [{}, {}]",
            top.worst_case,
            top.best_case
        );
    }
    // And the independence point agrees exactly.
    let ind = 1.0 - combine_two_legs(a, b).independent;
    assert!((ind - top.independent).abs() < 1e-12);
}

#[test]
fn allocation_respects_mode_selection() {
    // A function demanded monthly is high-demand; its budget is a rate.
    assert_eq!(mode_for_demand_rate(12.0), DemandMode::HighDemand);
    // Allocate a low-demand 1e-3 pfd across two subsystems, convert one
    // budget into an equivalent rate given annual proof tests, and check
    // the cross-mode view is consistent.
    let budgets = allocate_equal(1e-3, 2).unwrap();
    let rate = depcase::sil::demand::rate_for_average_pfd(budgets[0], 8760.0).unwrap();
    let round = average_pfd(rate, 8760.0).unwrap();
    assert!((round - budgets[0]).abs() < 1e-12);
    let (low, _high) = cross_mode_sil(rate, 8760.0);
    assert_eq!(low, Some(SilLevel::Sil3)); // ~5e-4 average pfd
}

#[test]
fn allocation_then_per_subsystem_acarp() {
    // Each subsystem must reach its required confidence; verify the
    // testing route can deliver it from a weak log-uniform prior.
    let claims = [5e-5, 5e-5];
    let confs = required_subsystem_confidences(1e-3, &claims).unwrap();
    let prior = LogUniform::new(1e-6, 1e-1).unwrap();
    let plan = depcase::confidence::acarp::AcarpPlan::new(&prior, claims[0]);
    let n = plan.demands_for_confidence(confs[0].min(0.999)).unwrap();
    assert!(n > 0);
    let post = SurvivalWeighted::new(prior, n).unwrap();
    assert!(post.cdf(claims[0]) >= confs[0].min(0.999) - 1e-9);
}

#[test]
fn growth_belief_flows_into_discretized_sweeps() {
    let mut rng = StdRng::seed_from_u64(77);
    let times = simulate_power_law(&mut rng, 0.6, 0.6, 30_000.0).unwrap();
    let fit = PowerLawGrowth::fit(&times, 30_000.0).unwrap();
    let belief = fit.belief().unwrap();
    let fast = Discretized::from_distribution(&belief, 256).unwrap();
    for x in [belief.quantile(0.1).unwrap(), belief.quantile(0.6).unwrap()] {
        assert!((fast.cdf(x) - belief.cdf(x)).abs() < 5e-3);
    }
    // SIL machinery accepts the discretized snapshot directly.
    let a = SilAssessment::new(&fast, DemandMode::HighDemand);
    let bp = a.band_probabilities();
    let total: f64 = SilLevel::ALL.iter().map(|&l| bp.in_band(l)).sum::<f64>() + bp.none();
    assert!((total - 1.0).abs() < 1e-6);
}
