//! End-to-end integration: elicitation → pooling → SIL assessment →
//! confidence calculus → assurance case, spanning every crate.

use depcase::assurance::{Case, Combination};
use depcase::confidence::acarp::AcarpPlan;
use depcase::confidence::{decision, WorstCaseBound};
use depcase::distributions::{Distribution, LogNormal, SurvivalWeighted};
use depcase::elicitation::experiment::paper_panel;
use depcase::elicitation::pooling;
use depcase::sil::{DemandMode, SilAssessment, SilLevel};

#[test]
fn panel_to_case_pipeline() {
    // 1. Elicit.
    let outcome = paper_panel(99).run();
    let beliefs: Vec<LogNormal> = outcome.final_phase().main_group_beliefs().unwrap();
    assert_eq!(beliefs.len(), 9);

    // 2. Pool into a single belief.
    let pooled = pooling::log_pool_lognormals(&beliefs, None).unwrap();
    assert!(pooled.mean() > 0.0 && pooled.mean() < 1.0);

    // 3. Assess the SIL.
    let a = SilAssessment::new(&pooled, DemandMode::LowDemand);
    let sil2_conf = a.confidence_at_least(SilLevel::Sil2);
    assert!(sil2_conf > 0.5, "pooled panel should favour SIL2, got {sil2_conf}");

    // 4. Fold in failure-free operating experience and watch confidence
    //    rise while the mean falls.
    let plan = AcarpPlan::new(&pooled, 1e-2);
    let c0 = plan.confidence_after(0).unwrap();
    let c1000 = plan.confidence_after(1000).unwrap();
    assert!(c1000 > c0);
    let post = SurvivalWeighted::new(pooled, 1000).unwrap();
    assert!(post.mean() < pooled.mean());

    // 5. Cast the posterior confidence into an assurance case and check
    //    the propagated top-level confidence matches the leaf.
    let mut case = Case::new("integration");
    let g = case.add_goal("G1", "pfd < 1e-2").unwrap();
    let s = case.add_strategy("S1", "single leg", Combination::AllOf).unwrap();
    let e = case.add_evidence("E1", "posterior judgement", c1000).unwrap();
    case.support(g, s).unwrap();
    case.support(s, e).unwrap();
    let top = case.propagate().unwrap().top().unwrap();
    assert!((top.independent - c1000).abs() < 1e-12);
}

#[test]
fn decision_summary_consistent_with_assessment() {
    let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
    let s = decision::summarize(&belief);
    let a = SilAssessment::new(&belief, DemandMode::LowDemand);
    assert_eq!(s.sil_of_mean, a.sil_of_mean());
    assert_eq!(s.sil_of_mode, a.sil_of_mode());
    assert!((s.failure_probability - belief.mean()).abs() < 1e-15);
}

#[test]
fn worst_case_statement_feeds_band_machinery() {
    // A conservative statement is also a distribution; the SIL machinery
    // accepts it directly.
    let conf = WorstCaseBound::required_confidence(1e-3, 1e-4).unwrap();
    let stmt = depcase::confidence::ConfidenceStatement::new(1e-4, conf).unwrap();
    let extremal = WorstCaseBound::extremal_distribution(&stmt).unwrap();
    // Its mean meets the system requirement by construction.
    assert!(extremal.mean() <= 1e-3 + 1e-12);
    let a = SilAssessment::new(&extremal, DemandMode::LowDemand);
    // Mass 1−x at 1e-4 is the SIL3/SIL4 edge: SIL3-or-better confidence
    // is the statement's confidence.
    assert!((a.confidence_at_least(SilLevel::Sil3) - conf).abs() < 1e-9);
}

#[test]
fn survival_weighting_commutes_with_conjugate_path() {
    // Beta prior: numeric survival weighting equals the closed form, and
    // both slot into the SIL assessment identically.
    let prior = depcase::distributions::Beta::new(1.0, 50.0).unwrap();
    let numeric = SurvivalWeighted::new(prior, 200).unwrap();
    let conjugate = prior.update_failure_free(200);
    let an = SilAssessment::new(&numeric, DemandMode::LowDemand);
    let ac = SilAssessment::new(&conjugate, DemandMode::LowDemand);
    for level in SilLevel::ALL {
        let n = an.confidence_at_least(level);
        let c = ac.confidence_at_least(level);
        assert!((n - c).abs() < 1e-5, "{level}: numeric {n} vs conjugate {c}");
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes every subsystem under stable names.
    let _ = depcase::numerics::special::erf(1.0);
    let _ = depcase::distributions::Uniform::unit();
    let _ = depcase::sil::SilLevel::Sil2;
    let _ = depcase::confidence::Claim::pfd_below(1e-3).unwrap();
    let _ = depcase::assurance::Case::new("x");
    let _ = depcase::elicitation::ExpertProfile::mainstream();
}
