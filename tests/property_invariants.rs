//! Cross-crate property tests: the invariants the paper's reasoning
//! rests on, checked over randomized inputs with proptest.

use depcase::confidence::multileg::{combine_two_legs, Leg};
use depcase::confidence::WorstCaseBound;
use depcase::distributions::{Beta, Distribution, Gamma, LogNormal, TwoPoint};
use depcase::sil::{DemandMode, SilAssessment, SilLevel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. (5) is attained by the extremal two-point law and dominates
    /// Beta beliefs consistent with the same statement.
    #[test]
    fn worst_case_bound_dominates_beta_beliefs(
        a in 0.5f64..5.0,
        b in 10.0f64..10_000.0,
        y in 1e-4f64..0.5,
    ) {
        let belief = Beta::new(a, b).unwrap();
        let doubt = 1.0 - belief.cdf(y);
        let bound = WorstCaseBound::bound(doubt, y).unwrap();
        // The belief's mean (Eq. 4) never exceeds the bound.
        prop_assert!(belief.mean() <= bound + 1e-9,
            "mean {} > bound {bound}", belief.mean());
    }

    /// The extremal distribution attains the bound exactly.
    #[test]
    fn extremal_two_point_attains_bound(
        y in 0.0f64..0.99,
        x in 0.0f64..1.0,
    ) {
        let w = TwoPoint::worst_case(y, x).unwrap();
        let bound = WorstCaseBound::bound(x, y).unwrap();
        prop_assert!((w.mean() - bound).abs() < 1e-12);
    }

    /// required_confidence inverts bound for all feasible pairs.
    #[test]
    fn required_confidence_inverts_bound(
        target in 1e-6f64..0.9,
        frac in 0.01f64..0.99,
    ) {
        let claim = target * frac;
        let conf = WorstCaseBound::required_confidence(target, claim).unwrap();
        let back = WorstCaseBound::bound(1.0 - conf, claim).unwrap();
        prop_assert!((back - target).abs() < 1e-10);
    }

    /// Log-normal CDFs are monotone and quantiles invert them.
    #[test]
    fn lognormal_cdf_quantile_inverse(
        mu in -12.0f64..0.0,
        sigma in 0.05f64..2.5,
        p in 0.001f64..0.999,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let q = d.quantile(p).unwrap();
        prop_assert!((d.cdf(q) - p).abs() < 1e-8);
        prop_assert!(d.cdf(q * 1.01) >= d.cdf(q));
    }

    /// The paper's identity: mean/mode separation grows as 0.65σ²
    /// decades, for every mode.
    #[test]
    fn mean_mode_identity(
        mode in 1e-6f64..0.1,
        sigma in 0.05f64..2.0,
    ) {
        let d = LogNormal::from_mode_sigma(mode, sigma).unwrap();
        let decades = (d.mean() / d.mode().unwrap()).log10();
        prop_assert!((decades - d.mean_mode_decades()).abs() < 1e-9);
    }

    /// Narrowing a mode-pinned judgement never decreases one-sided
    /// confidence in a bound above the mode.
    #[test]
    fn narrower_judgement_is_at_least_as_confident(
        mode in 1e-5f64..5e-3,
        sigma in 0.2f64..1.5,
    ) {
        let wide = LogNormal::from_mode_sigma(mode, sigma).unwrap();
        let narrow = LogNormal::from_mode_sigma(mode, sigma * 0.5).unwrap();
        let bound = 1e-2;
        prop_assert!(narrow.cdf(bound) >= wide.cdf(bound) - 1e-12);
    }

    /// Survival weighting never increases the mean pfd (failure-free
    /// evidence is always good news).
    #[test]
    fn survival_weighting_shrinks_mean(
        a in 0.5f64..3.0,
        b in 5.0f64..500.0,
        n in 1u64..2000,
    ) {
        let prior = Beta::new(a, b).unwrap();
        let post = prior.update_failure_free(n);
        prop_assert!(post.mean() <= prior.mean());
        // And the CDF moves up pointwise (stochastic dominance).
        for x in [0.001, 0.01, 0.1] {
            prop_assert!(post.cdf(x) >= prior.cdf(x) - 1e-12);
        }
    }

    /// Fréchet bounds always bracket the independent leg combination.
    #[test]
    fn frechet_brackets_independence(
        xa in 0.0f64..1.0,
        xb in 0.0f64..1.0,
    ) {
        let c = combine_two_legs(Leg::with_doubt(xa).unwrap(), Leg::with_doubt(xb).unwrap());
        prop_assert!(c.best_case <= c.independent + 1e-12);
        prop_assert!(c.independent <= c.worst_case + 1e-12);
        prop_assert!(c.worst_case <= xa.min(xb) + 1e-12);
    }

    /// Band probabilities form a distribution over {none, SIL1..SIL4} for
    /// both families.
    #[test]
    fn band_probabilities_sum_to_one(
        mode in 1e-5f64..5e-2,
        ratio in 1.05f64..20.0,
    ) {
        let mean = mode * ratio;
        let ln = LogNormal::from_mode_mean(mode, mean).unwrap();
        let ga = Gamma::from_mode_mean(mode, mean).unwrap();
        for belief in [&ln as &dyn Distribution, &ga as &dyn Distribution] {
            let bp = SilAssessment::new(belief, DemandMode::LowDemand).band_probabilities();
            let total: f64 = SilLevel::ALL.iter().map(|&l| bp.in_band(l)).sum::<f64>() + bp.none();
            prop_assert!((total - 1.0).abs() < 1e-7, "total {total}");
        }
    }

    /// Claimable-at-confidence is antitone in the confidence level.
    #[test]
    fn claimable_is_antitone_in_confidence(
        mode in 1e-5f64..5e-3,
        sigma in 0.3f64..1.5,
        c1 in 0.5f64..0.99,
        c2 in 0.5f64..0.99,
    ) {
        let d = LogNormal::from_mode_sigma(mode, sigma).unwrap();
        let a = SilAssessment::new(&d, DemandMode::LowDemand);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let at_lo = a.claimable_at_confidence(lo).map(|l| l.index()).unwrap_or(0);
        let at_hi = a.claimable_at_confidence(hi).map(|l| l.index()).unwrap_or(0);
        prop_assert!(at_hi <= at_lo);
    }
}
