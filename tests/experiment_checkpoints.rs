//! Paper-shape checkpoints: every table/figure regeneration must carry
//! the qualitative findings the paper reports.

use depcase_bench::experiments;

#[test]
fn all_experiments_produce_tables() {
    let tables = experiments::all();
    assert_eq!(tables.len(), experiments::NAMES.len());
    for t in &tables {
        assert!(!t.is_empty(), "{} is empty", t.title);
        // Every row matches the header width (Table::push_row guarantees
        // it, but serialization through CSV must also be well-formed).
        let csv = t.to_csv();
        let cols = t.header.len();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), cols, "{}: ragged CSV", t.title);
        }
    }
}

#[test]
fn f3_crossover_near_67_percent() {
    let c = experiments::fig3_crossover();
    assert!((c - 0.67).abs() < 0.02, "crossover {c}");
}

#[test]
fn f4_wide_judgement_matches_paper_quotes() {
    let t = experiments::fig4();
    let sil2 = t.cell_f64(2, "P(<1e-2)=SIL2+").unwrap();
    let sil1 = t.cell_f64(2, "P(<1e-1)=SIL1+").unwrap();
    assert!((sil2 - 0.67).abs() < 0.02, "67% SIL2-or-better, got {sil2}");
    assert!(sil1 > 0.995, "99.9% SIL1-or-better, got {sil1}");
}

#[test]
fn e3_required_confidence_9991() {
    let t = experiments::examples34();
    let c = t.cell_f64(2, "required_confidence").unwrap();
    assert!((c - 0.9991).abs() < 1e-4, "got {c}");
}

#[test]
fn f5_headline_findings() {
    let t = experiments::fig5(42);
    let last = t.len() - 1;
    assert_eq!(t.cell(last, "expert"), Some("doubters=3"));
    let conf = t.cell_f64(last, "sil2_confidence").unwrap();
    assert!(conf > 0.8, "pooled confidence {conf}");
}

#[test]
fn g1_gamma_agrees_with_lognormal() {
    let t = experiments::gamma_sensitivity();
    for pair in 0..3 {
        let ln = t.cell_f64(2 * pair, "P(SIL2+)").unwrap();
        let ga = t.cell_f64(2 * pair + 1, "P(SIL2+)").unwrap();
        assert!((ln - ga).abs() < 0.08, "pair {pair}: {ln} vs {ga}");
    }
}

#[test]
fn c1_confidence_rises_mean_falls() {
    let t = experiments::tail_cutoff();
    let last = t.len() - 1;
    assert!(t.cell_f64(last, "P(SIL2+)").unwrap() > t.cell_f64(0, "P(SIL2+)").unwrap());
    assert!(
        t.cell_f64(last, "posterior_mean_pfd").unwrap()
            < t.cell_f64(0, "posterior_mean_pfd").unwrap()
    );
}

#[test]
fn n1_70_percent_gate_drops_wide_judgement_to_sil1() {
    let t = experiments::standards_impact();
    assert_eq!(t.cell(2, "claimable@70%"), Some("SIL1"));
}

#[test]
fn t1_table_is_the_iec_table() {
    let t = experiments::table1();
    assert_eq!(t.len(), 8);
    // SIL4 low-demand row leads.
    assert_eq!(t.cell(0, "sil"), Some("SIL4"));
    assert_eq!(t.cell_f64(0, "lower"), Some(1e-5));
}
