//! Monte-Carlo validation of the paper's central quantities: sampling
//! from actual belief distributions must reproduce the analytic bounds,
//! band probabilities and posterior updates.

use depcase::confidence::WorstCaseBound;
use depcase::distributions::{Beta, Distribution, LogNormal, SurvivalWeighted, TwoPoint};
use depcase::sil::{DemandMode, SilAssessment, SilLevel};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const N: usize = 60_000;

#[test]
fn eq4_unconditional_failure_probability_by_simulation() {
    // Draw a pfd from the belief, then a demand outcome; the failure
    // frequency must match the belief's mean (paper Eq. 4).
    let belief = Beta::new(2.0, 198.0).unwrap(); // mean 0.01
    let mut rng = StdRng::seed_from_u64(1);
    let mut failures = 0u32;
    for _ in 0..N {
        let p = belief.sample(&mut rng);
        if rng.gen::<f64>() < p {
            failures += 1;
        }
    }
    let freq = f64::from(failures) / N as f64;
    assert!((freq - 0.01).abs() < 0.002, "freq = {freq}");
}

#[test]
fn worst_case_law_attains_bound_by_simulation() {
    let (y, x) = (1e-3, 0.05);
    let w = TwoPoint::worst_case(y, x).unwrap();
    let bound = WorstCaseBound::bound(x, y).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut failures = 0u32;
    for _ in 0..N {
        let p = w.sample(&mut rng);
        if rng.gen::<f64>() < p {
            failures += 1;
        }
    }
    let freq = f64::from(failures) / N as f64;
    assert!((freq - bound).abs() < 0.004, "freq = {freq}, bound = {bound}");
}

#[test]
fn band_probabilities_match_sampling() {
    let belief = LogNormal::from_mode_mean(0.003, 0.01).unwrap();
    let bp = SilAssessment::new(&belief, DemandMode::LowDemand).band_probabilities();
    let mut rng = StdRng::seed_from_u64(3);
    let xs = belief.sample_n(&mut rng, N);
    for level in SilLevel::ALL {
        let band = level.band(DemandMode::LowDemand);
        let mut frac =
            xs.iter().filter(|&&x| x >= band.lower && x < band.upper).count() as f64 / N as f64;
        if level == SilLevel::Sil4 {
            frac += xs.iter().filter(|&&x| x < band.lower).count() as f64 / N as f64;
        }
        assert!(
            (frac - bp.in_band(level)).abs() < 0.01,
            "{level}: sampled {frac}, analytic {}",
            bp.in_band(level)
        );
    }
}

#[test]
fn bayes_posterior_matches_rejection_sampling() {
    // Sample (pfd, survive-n) pairs from the prior and keep survivors:
    // the survivor distribution is the SurvivalWeighted posterior.
    let prior = Beta::new(1.0, 20.0).unwrap();
    let n_demands = 50u64;
    let post = SurvivalWeighted::new(prior, n_demands).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut survivors = Vec::new();
    while survivors.len() < 20_000 {
        let p = prior.sample(&mut rng);
        // Survival of n demands at pfd p.
        if rng.gen::<f64>() < (1.0 - p).powf(n_demands as f64) {
            survivors.push(p);
        }
    }
    let mc_mean: f64 = survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!((mc_mean - post.mean()).abs() < 0.002, "mc = {mc_mean}, analytic = {}", post.mean());
    // CDF agreement at a few points.
    for q in [0.01, 0.03, 0.08] {
        let frac = survivors.iter().filter(|&&p| p <= q).count() as f64 / survivors.len() as f64;
        assert!((frac - post.cdf(q)).abs() < 0.015, "q = {q}: mc {frac} vs {}", post.cdf(q));
    }
}

#[test]
fn multileg_independent_combination_by_simulation() {
    // Two independent legs with doubts 0.05 / 0.10: simulate joint
    // unsoundness.
    let mut rng = StdRng::seed_from_u64(5);
    let mut both = 0u32;
    for _ in 0..N {
        let a_bad = rng.gen::<f64>() < 0.05;
        let b_bad = rng.gen::<f64>() < 0.10;
        if a_bad && b_bad {
            both += 1;
        }
    }
    let freq = f64::from(both) / N as f64;
    assert!((freq - 0.005).abs() < 0.001, "freq = {freq}");
}
